//! Self-contained deterministic pseudo-randomness for the simulator.
//!
//! The workspace builds in fully offline environments, so instead of
//! depending on the `rand` crate this small module provides the only
//! pieces the simulator needs: a fast, seedable, portable generator with
//! uniform integer ranges, uniform floats in `[0, 1)` and Bernoulli
//! draws. The generator is xoshiro256++ (public domain, Blackman &
//! Vigna) seeded through SplitMix64, the same construction `rand`'s
//! `SmallRng` family uses — streams are stable across platforms and
//! releases, which the determinism tests rely on.
//!
//! # Examples
//!
//! ```
//! use tla_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let coin = rng.gen_bool(0.5);
//! let way = rng.gen_range(0..16usize);
//! assert!(way < 16);
//! let p = rng.gen_f64();
//! assert!((0.0..1.0).contains(&p));
//! let _ = coin;
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator (xoshiro256++).
///
/// Not cryptographically secure — it drives synthetic workloads and
/// randomized replacement policies, where speed and reproducibility are
/// what matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator whose full state is derived from `seed` via
    /// SplitMix64, so nearby seeds still produce uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Rebuilds a generator from a raw state captured by
    /// [`state`](SmallRng::state), e.g. when resuming a checkpoint.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }

    /// The raw xoshiro256++ state, for checkpointing. Feeding it back
    /// through [`from_state`](SmallRng::from_state) continues the exact
    /// stream.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Uniform draw from a range; supports `a..b` and `a..=b` over the
    /// integer types the simulator uses.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` (Lemire-style via widening multiply;
    /// the tiny modulo bias of the plain multiply-shift is removed by
    /// rejection).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening multiply maps the 64-bit output into [0, bound) almost
        // uniformly; reject the small biased fringe.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Range types accepted by [`SmallRng::gen_range`].
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}

impl_sample_range!(u64, usize, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000u32;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count() as f64;
        let rate = hits / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            let v = rng.gen_range(0..16usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 16 values drawn");
        for _ in 0..1000 {
            let v = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(3..4u32);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(8);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..500 {
            match rng.gen_range(0..=3usize) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = rng.gen_range(5..5u64);
    }

    #[test]
    fn known_vector_is_stable() {
        // Pins the stream so cross-release determinism breaks loudly.
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SmallRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }
}
