//! Experiment helpers shared by the bench harness: isolated runs, Table I
//! MPKI measurement, and policy suites over mix lists.
//!
//! Every helper that executes more than one [`MixRun`] fans the batch out
//! over [`tla_pool::scoped_map`] with [`SimConfig::effective_jobs`]
//! workers. Each run is self-contained and seeded, so results are
//! bit-identical to serial execution and outputs keep input order; the
//! job count only changes wall-clock time.

use crate::config::SimConfig;
use crate::policyspec::PolicySpec;
use crate::run::{MixRun, RunResult, ThreadResult};
use tla_pool::scoped_map;
use tla_telemetry::RunReport;
use tla_workloads::{Mix, SpecApp};

/// Runs `app` alone on a single core (for Table I and weighted speedups).
pub fn run_alone(cfg: &SimConfig, app: SpecApp) -> ThreadResult {
    MixRun::new(cfg, &[app]).run().threads.remove(0)
}

/// Runs several apps alone in parallel (the weighted-speedup / fairness
/// denominators), returning results in input order.
pub fn run_alone_many(cfg: &SimConfig, apps: &[SpecApp]) -> Vec<ThreadResult> {
    scoped_map(cfg.effective_jobs(), apps.to_vec(), |app| {
        run_alone(cfg, app)
    })
}

/// One row of Table I: isolated MPKI at each level.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The benchmark.
    pub app: SpecApp,
    /// Combined L1 (I+D) misses per 1000 instructions.
    pub l1_mpki: f64,
    /// L2 MPKI.
    pub l2_mpki: f64,
    /// LLC MPKI.
    pub llc_mpki: f64,
}

/// Measures the isolated L1/L2/LLC MPKI of every benchmark with the
/// prefetcher off, reproducing Table I ("the MPKI numbers are reported in
/// the absence of a prefetcher").
pub fn mpki_table(cfg: &SimConfig) -> Vec<Table1Row> {
    let cfg = cfg.clone().prefetch(false);
    scoped_map(cfg.effective_jobs(), SpecApp::ALL.to_vec(), |app| {
        let t = run_alone(&cfg, app);
        Table1Row {
            app,
            l1_mpki: t.l1_mpki(),
            l2_mpki: t.l2_mpki(),
            llc_mpki: t.llc_mpki(),
        }
    })
}

/// Results of one policy over a list of mixes.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The policy that was run.
    pub spec: PolicySpec,
    /// Per-mix results, in the order of the input mix list.
    pub runs: Vec<RunResult>,
}

impl SuiteResult {
    /// Per-mix throughput normalized to the matching baseline run.
    pub fn normalized_throughput(&self, baseline: &SuiteResult) -> Vec<f64> {
        self.runs
            .iter()
            .zip(&baseline.runs)
            .map(|(r, b)| normalized_throughput(r, b))
            .collect()
    }

    /// Geometric-mean normalized throughput over all mixes.
    pub fn geomean_throughput(&self, baseline: &SuiteResult) -> f64 {
        tla_types::stats::geomean(self.normalized_throughput(baseline))
            .expect("throughputs are positive")
    }

    /// Per-mix LLC-miss reduction relative to the baseline, in percent
    /// (positive = fewer misses).
    pub fn miss_reduction_pct(&self, baseline: &SuiteResult) -> Vec<f64> {
        self.runs
            .iter()
            .zip(&baseline.runs)
            .map(|(r, b)| {
                let bm = b.llc_misses();
                if bm == 0 {
                    0.0
                } else {
                    (bm as f64 - r.llc_misses() as f64) / bm as f64 * 100.0
                }
            })
            .collect()
    }
}

/// Throughput of `run` normalized to `baseline` (1.0 = equal).
pub fn normalized_throughput(run: &RunResult, baseline: &RunResult) -> f64 {
    let b = baseline.throughput();
    if b == 0.0 {
        0.0
    } else {
        run.throughput() / b
    }
}

/// Runs every `spec` over every mix in `mixes`. Results are indexed
/// `[spec][mix]`.
///
/// `llc_capacity_full_scale` optionally overrides the LLC size (expressed
/// at scale 1) for ratio sweeps.
pub fn run_mix_suite(
    cfg: &SimConfig,
    mixes: &[Mix],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
) -> Vec<SuiteResult> {
    // Flatten the (spec, mix) grid into one job list so the pool
    // load-balances across both axes, then slice the ordered results
    // back into per-spec suites.
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..mixes.len()).map(move |m| (s, m)))
        .collect();
    let mut runs = scoped_map(cfg.effective_jobs(), grid, |(s, m)| {
        let mut run = MixRun::new(cfg, &mixes[m].apps).spec(&specs[s]);
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        run.run()
    })
    .into_iter();
    specs
        .iter()
        .map(|spec| SuiteResult {
            spec: spec.clone(),
            runs: runs.by_ref().take(mixes.len()).collect(),
        })
        .collect()
}

/// Runs every policy in `specs` on one mix in parallel, in `specs` order
/// — the engine behind `tla-cli compare`.
///
/// With `window = Some(w)` each run also produces a machine-readable
/// [`RunReport`] with a `w`-instruction time series; with `None` the runs
/// are plain (no telemetry). Like every batch helper, the output is
/// bit-identical for any job count.
pub fn run_policy_reports(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
) -> Vec<(RunResult, Option<RunReport>)> {
    scoped_map(cfg.effective_jobs(), specs.to_vec(), |spec| {
        let mut run = MixRun::new(cfg, apps).spec(&spec);
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        match window {
            Some(w) => {
                let (result, report) = run.run_report(Some(w));
                (result, Some(report))
            }
            None => (run.run(), None),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_workloads::table2_mixes;

    fn quick() -> SimConfig {
        SimConfig::scaled_down().instructions(15_000)
    }

    #[test]
    fn run_alone_returns_quota() {
        let t = run_alone(&quick(), SpecApp::DealII);
        assert_eq!(t.instructions, 15_000);
        assert_eq!(t.app, SpecApp::DealII);
    }

    #[test]
    fn mpki_table_covers_all_apps() {
        let cfg = quick().instructions(5_000);
        let rows = mpki_table(&cfg);
        assert_eq!(rows.len(), 15);
        for r in &rows {
            assert!(r.l1_mpki >= r.l2_mpki - 1e-9, "{}: L1 >= L2", r.app);
            assert!(r.l2_mpki >= r.llc_mpki - 1e-9, "{}: L2 >= LLC", r.app);
        }
    }

    #[test]
    fn run_alone_many_matches_individual_runs() {
        let cfg = quick().instructions(5_000);
        let apps = [SpecApp::DealII, SpecApp::Mcf, SpecApp::Sjeng];
        let many = run_alone_many(&cfg, &apps);
        assert_eq!(many.len(), 3);
        for (app, t) in apps.iter().zip(&many) {
            let solo = run_alone(&cfg, *app);
            assert_eq!(t.app, *app);
            assert_eq!(t.stats, solo.stats);
            assert_eq!(t.cycles, solo.cycles);
        }
    }

    #[test]
    fn policy_reports_keep_spec_order_and_windows() {
        let cfg = quick().instructions(5_000);
        let apps = [SpecApp::Libquantum, SpecApp::Sjeng];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
        let out = run_policy_reports(&cfg, &apps, &specs, None, Some(2_000));
        assert_eq!(out.len(), 2);
        for ((result, report), spec) in out.iter().zip(&specs) {
            assert_eq!(result.spec_name, spec.name);
            let report = report.as_ref().expect("window requested");
            assert_eq!(report.policy, spec.name);
            assert!(!report.windows.is_empty());
        }
        let plain = run_policy_reports(&cfg, &apps, &specs, None, None);
        assert!(plain.iter().all(|(_, rep)| rep.is_none()));
        assert_eq!(plain[1].0.global, out[1].0.global);
    }

    #[test]
    fn suite_indexing_and_normalization() {
        let cfg = quick().instructions(5_000);
        let mixes = &table2_mixes()[..2];
        let specs = vec![PolicySpec::baseline(), PolicySpec::qbs()];
        let results = run_mix_suite(&cfg, mixes, &specs, None);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].runs.len(), 2);
        let base = &results[0];
        let norm = results[0].normalized_throughput(base);
        assert!(norm.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let g = results[1].geomean_throughput(base);
        assert!(g > 0.5 && g < 2.0);
        let red = results[1].miss_reduction_pct(base);
        assert_eq!(red.len(), 2);
    }
}
