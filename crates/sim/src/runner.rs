//! Experiment helpers shared by the bench harness: isolated runs, Table I
//! MPKI measurement, and policy suites over mix lists.
//!
//! Every helper that executes more than one [`MixRun`] fans the batch out
//! over [`tla_pool::scoped_map`] with [`SimConfig::effective_jobs`]
//! workers. Each run is self-contained and seeded, so results are
//! bit-identical to serial execution and outputs keep input order; the
//! job count only changes wall-clock time.

use crate::checkpoint::{Checkpoint, CheckpointInfo};
use crate::config::SimConfig;
use crate::policyspec::PolicySpec;
use crate::run::{MixRun, RunResult, ThreadResult};
use crate::warmcache::WarmCache;
use tla_io::IoMixConfig;
use tla_pool::scoped_map;
use tla_snapshot::SnapshotError;
use tla_telemetry::RunReport;
use tla_workloads::{Mix, SpecApp};

/// Runs `app` alone on a single core (for Table I and weighted speedups).
pub fn run_alone(cfg: &SimConfig, app: SpecApp) -> ThreadResult {
    MixRun::new(cfg, &[app]).run().threads.remove(0)
}

/// Runs several apps alone in parallel (the weighted-speedup / fairness
/// denominators), returning results in input order.
pub fn run_alone_many(cfg: &SimConfig, apps: &[SpecApp]) -> Vec<ThreadResult> {
    scoped_map(cfg.effective_jobs(), apps.to_vec(), |app| {
        run_alone(cfg, app)
    })
}

/// One row of Table I: isolated MPKI at each level.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The benchmark.
    pub app: SpecApp,
    /// Combined L1 (I+D) misses per 1000 instructions.
    pub l1_mpki: f64,
    /// L2 MPKI.
    pub l2_mpki: f64,
    /// LLC MPKI.
    pub llc_mpki: f64,
}

/// Measures the isolated L1/L2/LLC MPKI of every benchmark with the
/// prefetcher off, reproducing Table I ("the MPKI numbers are reported in
/// the absence of a prefetcher").
pub fn mpki_table(cfg: &SimConfig) -> Vec<Table1Row> {
    let cfg = cfg.clone().prefetch(false);
    scoped_map(cfg.effective_jobs(), SpecApp::ALL.to_vec(), |app| {
        let t = run_alone(&cfg, app);
        Table1Row {
            app,
            l1_mpki: t.l1_mpki(),
            l2_mpki: t.l2_mpki(),
            llc_mpki: t.llc_mpki(),
        }
    })
}

/// Results of one policy over a list of mixes.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The policy that was run.
    pub spec: PolicySpec,
    /// Per-mix results, in the order of the input mix list.
    pub runs: Vec<RunResult>,
}

impl SuiteResult {
    /// Per-mix throughput normalized to the matching baseline run.
    pub fn normalized_throughput(&self, baseline: &SuiteResult) -> Vec<f64> {
        self.runs
            .iter()
            .zip(&baseline.runs)
            .map(|(r, b)| normalized_throughput(r, b))
            .collect()
    }

    /// Geometric-mean normalized throughput over all mixes, or `None` when
    /// the mean is undefined — no runs, or some run's throughput is zero
    /// (a frozen/empty measurement would otherwise panic the summary; the
    /// caller flags the entry instead, see `tla_types::stats::fmt_ratio`).
    pub fn geomean_throughput(&self, baseline: &SuiteResult) -> Option<f64> {
        tla_types::stats::geomean(self.normalized_throughput(baseline))
    }

    /// Per-mix LLC-miss reduction relative to the baseline, in percent
    /// (positive = fewer misses).
    pub fn miss_reduction_pct(&self, baseline: &SuiteResult) -> Vec<f64> {
        self.runs
            .iter()
            .zip(&baseline.runs)
            .map(|(r, b)| {
                let bm = b.llc_misses();
                if bm == 0 {
                    0.0
                } else {
                    (bm as f64 - r.llc_misses() as f64) / bm as f64 * 100.0
                }
            })
            .collect()
    }
}

/// Throughput of `run` normalized to `baseline` (1.0 = equal).
pub fn normalized_throughput(run: &RunResult, baseline: &RunResult) -> f64 {
    let b = baseline.throughput();
    if b == 0.0 {
        0.0
    } else {
        run.throughput() / b
    }
}

/// Runs every `spec` over every mix in `mixes`. Results are indexed
/// `[spec][mix]`.
///
/// `llc_capacity_full_scale` optionally overrides the LLC size (expressed
/// at scale 1) for ratio sweeps.
pub fn run_mix_suite(
    cfg: &SimConfig,
    mixes: &[Mix],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
) -> Vec<SuiteResult> {
    // Flatten the (spec, mix) grid into one job list so the pool
    // load-balances across both axes, then slice the ordered results
    // back into per-spec suites.
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..mixes.len()).map(move |m| (s, m)))
        .collect();
    let mut runs = scoped_map(cfg.effective_jobs(), grid, |(s, m)| {
        let mut run = MixRun::new(cfg, &mixes[m].apps).spec(&specs[s]);
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        run.run()
    })
    .into_iter();
    specs
        .iter()
        .map(|spec| SuiteResult {
            spec: spec.clone(),
            runs: runs.by_ref().take(mixes.len()).collect(),
        })
        .collect()
}

/// Runs every policy in `specs` on one mix in parallel, in `specs` order
/// — the engine behind `tla-cli compare`.
///
/// With `window = Some(w)` each run also produces a machine-readable
/// [`RunReport`] with a `w`-instruction time series; with `None` the runs
/// are plain (no telemetry). Like every batch helper, the output is
/// bit-identical for any job count.
pub fn run_policy_reports(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
) -> Vec<(RunResult, Option<RunReport>)> {
    run_policy_reports_io(
        cfg,
        apps,
        specs,
        llc_capacity_full_scale,
        window,
        &IoMixConfig::none(),
    )
}

/// [`run_policy_reports`] with a device-I/O mix attached to every run —
/// the engine behind `tla-cli compare --io` and the `io-sweep` scenario
/// grid. A [trivial](IoMixConfig::is_trivial) `io` is exactly
/// [`run_policy_reports`], byte for byte.
pub fn run_policy_reports_io(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
    io: &IoMixConfig,
) -> Vec<(RunResult, Option<RunReport>)> {
    scoped_map(cfg.effective_jobs(), specs.to_vec(), |spec| {
        let mut run = MixRun::new(cfg, apps).spec(&spec).io(io.clone());
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        match window {
            Some(w) => {
                let (result, report) = run.run_report(Some(w));
                (result, Some(report))
            }
            None => (run.run(), None),
        }
    })
}

/// The engine behind `tla-cli analyze`: every policy on one mix with the
/// analytics layer attached (reuse-distance profiler sampling every
/// `sample_every`-th LLC set, inclusion-victim attribution), in `specs`
/// order. Each report carries its [`tla_telemetry::ReuseReport`] and measured
/// inclusion-victim rate; the caller pairs them with the MIN oracle to
/// fill in `opt_misses` / `gap_to_opt`.
///
/// Like every batch helper, the output is bit-identical for any job
/// count, and each [`RunResult`] is bit-identical to a plain run (the
/// analytics stream is observation-only).
pub fn run_policy_reports_analyzed(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
    sample_every: u32,
) -> Vec<(RunResult, RunReport)> {
    run_policy_reports_analyzed_io(
        cfg,
        apps,
        specs,
        llc_capacity_full_scale,
        window,
        sample_every,
        &IoMixConfig::none(),
    )
}

/// [`run_policy_reports_analyzed`] with a device-I/O mix attached to
/// every run, so `analyze --io` can put gap-to-opt and victim analytics
/// next to the I/O damage counters. A trivial `io` is exactly
/// [`run_policy_reports_analyzed`], byte for byte.
#[allow(clippy::too_many_arguments)]
pub fn run_policy_reports_analyzed_io(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
    sample_every: u32,
    io: &IoMixConfig,
) -> Vec<(RunResult, RunReport)> {
    scoped_map(cfg.effective_jobs(), specs.to_vec(), |spec| {
        let mut run = MixRun::new(cfg, apps).spec(&spec).io(io.clone());
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        run.run_report_analyzed(window, sample_every)
    })
}

/// Builds one warm baseline checkpoint for `apps` under `cfg`.
fn warm_once(
    cfg: &SimConfig,
    apps: &[SpecApp],
    llc_capacity_full_scale: Option<usize>,
    window: Option<Option<u64>>,
) -> Checkpoint {
    let mut run = MixRun::new(cfg, apps).spec(&PolicySpec::baseline());
    if let Some(bytes) = llc_capacity_full_scale {
        run = run.llc_capacity_full_scale(bytes);
    }
    match window {
        Some(w) => run.warm_checkpoint_instrumented(w),
        None => run.warm_checkpoint(),
    }
}

/// The [`CheckpointInfo`] the baseline warm-up of this configuration will
/// produce, with `total_instr` still zero — everything [`WarmCache::key`]
/// needs, computable before any simulation runs.
fn prewarm_info(
    cfg: &SimConfig,
    apps: &[SpecApp],
    llc_capacity_full_scale: Option<usize>,
    window: Option<Option<u64>>,
) -> CheckpointInfo {
    CheckpointInfo {
        apps: apps.to_vec(),
        scale: cfg.scale(),
        seed: cfg.seed_value(),
        warmup: cfg.warmup_quota(),
        instructions: cfg.instruction_quota(),
        prefetch: cfg.prefetch_enabled(),
        llc_capacity_full_scale,
        warm_spec: PolicySpec::baseline().name,
        total_instr: 0,
        instrumented: window.is_some(),
        window: window.flatten(),
        latencies: cfg.core_config().latencies,
    }
}

/// [`warm_once`] with an optional on-disk cache in front: a valid cached
/// image is returned as-is, otherwise the warm-up runs and (best-effort)
/// populates the cache. A store failure is not fatal — the freshly warmed
/// checkpoint is correct either way, the next invocation just warms again.
fn warm_once_cached(
    cfg: &SimConfig,
    apps: &[SpecApp],
    llc_capacity_full_scale: Option<usize>,
    window: Option<Option<u64>>,
    cache: Option<&WarmCache>,
) -> Checkpoint {
    if let Some(cache) = cache {
        let expected = prewarm_info(cfg, apps, llc_capacity_full_scale, window);
        if let Some(ck) = cache.lookup(&expected) {
            return ck;
        }
        let ck = warm_once(cfg, apps, llc_capacity_full_scale, window);
        let _ = cache.store(&ck);
        ck
    } else {
        warm_once(cfg, apps, llc_capacity_full_scale, window)
    }
}

/// Warm-start variant of [`run_policy_reports`]: runs the warm-up phase
/// *once* (under the inclusive baseline), checkpoints it, then fans the
/// per-policy measured phases out over the pool, each resuming the same
/// warm image.
///
/// With `N` policies this does `warmup + N * measure` work instead of
/// `N * (warmup + measure)` — the paper's warm-once methodology. Note
/// the semantics differ subtly from the straight-through helper: every
/// policy sees a *baseline-warmed* hierarchy rather than warming under
/// itself (and a thread fast enough to retire its whole quota during
/// warm-up keeps its baseline-phase result). With `warmup == 0` there is
/// nothing to share and this falls back to [`run_policy_reports`]
/// exactly.
///
/// # Errors
///
/// Fails only if a resume rejects the just-written checkpoint, which
/// indicates a bug or an impossible configuration.
pub fn run_policy_reports_warm_start(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
) -> Result<Vec<(RunResult, Option<RunReport>)>, SnapshotError> {
    run_policy_reports_warm_start_cached(cfg, apps, specs, llc_capacity_full_scale, window, None)
}

/// [`run_policy_reports_warm_start`] with an optional [`WarmCache`]: when a
/// cache directory is supplied and already holds the warm image for this
/// exact configuration, the warm-up phase is skipped entirely; otherwise
/// the warm-up runs once and its image is stored for next time. Results
/// are bit-identical with and without the cache (the image *is* the warm
/// state).
///
/// # Errors
///
/// Fails only if a resume rejects the warm checkpoint, which indicates a
/// bug or an impossible configuration (cache corruption is handled by
/// ignoring the bad file and re-warming).
pub fn run_policy_reports_warm_start_cached(
    cfg: &SimConfig,
    apps: &[SpecApp],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    window: Option<u64>,
    warm_cache: Option<&WarmCache>,
) -> Result<Vec<(RunResult, Option<RunReport>)>, SnapshotError> {
    if cfg.warmup_quota() == 0 {
        return Ok(run_policy_reports(
            cfg,
            apps,
            specs,
            llc_capacity_full_scale,
            window,
        ));
    }
    let ck = warm_once_cached(
        cfg,
        apps,
        llc_capacity_full_scale,
        window.map(Some),
        warm_cache,
    );
    scoped_map(cfg.effective_jobs(), specs.to_vec(), |spec| {
        let mut run = MixRun::new(cfg, apps).spec(&spec);
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        match window {
            Some(w) => run
                .resume_report(&ck, Some(w))
                .map(|(result, report)| (result, Some(report))),
            None => run.resume(&ck).map(|result| (result, None)),
        }
    })
    .into_iter()
    .collect()
}

/// Warm-start variant of [`run_mix_suite`]: warms each mix once (under
/// the inclusive baseline, in parallel), then fans the whole
/// `(spec, mix)` measurement grid out over the pool, each cell resuming
/// its mix's shared warm image.
///
/// Shares [`run_policy_reports_warm_start`]'s baseline-warming
/// methodology and its `warmup == 0` fallback to the straight-through
/// helper.
///
/// # Errors
///
/// Fails only if a resume rejects a just-written checkpoint.
pub fn run_mix_suite_warm_start(
    cfg: &SimConfig,
    mixes: &[Mix],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
) -> Result<Vec<SuiteResult>, SnapshotError> {
    run_mix_suite_warm_start_cached(cfg, mixes, specs, llc_capacity_full_scale, None)
}

/// [`run_mix_suite_warm_start`] with an optional [`WarmCache`]: each
/// mix's warm image is looked up in (and stored to) the cache directory,
/// so a suite re-run — e.g. consecutive bench invocations over the same
/// figure grid — skips every warm-up it has already done. Results are
/// bit-identical with and without the cache.
///
/// # Errors
///
/// Fails only if a resume rejects a warm checkpoint (cache corruption is
/// handled by ignoring the bad file and re-warming).
pub fn run_mix_suite_warm_start_cached(
    cfg: &SimConfig,
    mixes: &[Mix],
    specs: &[PolicySpec],
    llc_capacity_full_scale: Option<usize>,
    warm_cache: Option<&WarmCache>,
) -> Result<Vec<SuiteResult>, SnapshotError> {
    if cfg.warmup_quota() == 0 {
        return Ok(run_mix_suite(cfg, mixes, specs, llc_capacity_full_scale));
    }
    let checkpoints: Vec<Checkpoint> =
        scoped_map(cfg.effective_jobs(), (0..mixes.len()).collect(), |m| {
            warm_once_cached(
                cfg,
                &mixes[m].apps,
                llc_capacity_full_scale,
                None,
                warm_cache,
            )
        });
    let grid: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..mixes.len()).map(move |m| (s, m)))
        .collect();
    let runs: Vec<RunResult> = scoped_map(cfg.effective_jobs(), grid, |(s, m)| {
        let mut run = MixRun::new(cfg, &mixes[m].apps).spec(&specs[s]);
        if let Some(bytes) = llc_capacity_full_scale {
            run = run.llc_capacity_full_scale(bytes);
        }
        run.resume(&checkpoints[m])
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut runs = runs.into_iter();
    Ok(specs
        .iter()
        .map(|spec| SuiteResult {
            spec: spec.clone(),
            runs: runs.by_ref().take(mixes.len()).collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_workloads::table2_mixes;

    fn quick() -> SimConfig {
        SimConfig::scaled_down().instructions(15_000)
    }

    #[test]
    fn run_alone_returns_quota() {
        let t = run_alone(&quick(), SpecApp::DealII);
        assert_eq!(t.instructions, 15_000);
        assert_eq!(t.app, SpecApp::DealII);
    }

    #[test]
    fn mpki_table_covers_all_apps() {
        let cfg = quick().instructions(5_000);
        let rows = mpki_table(&cfg);
        assert_eq!(rows.len(), 15);
        for r in &rows {
            assert!(r.l1_mpki >= r.l2_mpki - 1e-9, "{}: L1 >= L2", r.app);
            assert!(r.l2_mpki >= r.llc_mpki - 1e-9, "{}: L2 >= LLC", r.app);
        }
    }

    #[test]
    fn run_alone_many_matches_individual_runs() {
        let cfg = quick().instructions(5_000);
        let apps = [SpecApp::DealII, SpecApp::Mcf, SpecApp::Sjeng];
        let many = run_alone_many(&cfg, &apps);
        assert_eq!(many.len(), 3);
        for (app, t) in apps.iter().zip(&many) {
            let solo = run_alone(&cfg, *app);
            assert_eq!(t.app, *app);
            assert_eq!(t.stats, solo.stats);
            assert_eq!(t.cycles, solo.cycles);
        }
    }

    #[test]
    fn policy_reports_keep_spec_order_and_windows() {
        let cfg = quick().instructions(5_000);
        let apps = [SpecApp::Libquantum, SpecApp::Sjeng];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
        let out = run_policy_reports(&cfg, &apps, &specs, None, Some(2_000));
        assert_eq!(out.len(), 2);
        for ((result, report), spec) in out.iter().zip(&specs) {
            assert_eq!(result.spec_name, spec.name);
            let report = report.as_ref().expect("window requested");
            assert_eq!(report.policy, spec.name);
            assert!(!report.windows.is_empty());
        }
        let plain = run_policy_reports(&cfg, &apps, &specs, None, None);
        assert!(plain.iter().all(|(_, rep)| rep.is_none()));
        assert_eq!(plain[1].0.global, out[1].0.global);
    }

    #[test]
    fn warm_start_reports_share_one_warmup() {
        let cfg = quick().warmup(20_000).instructions(5_000);
        let apps = [SpecApp::Mcf, SpecApp::Libquantum];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs(), PolicySpec::eci()];
        let out = run_policy_reports_warm_start(&cfg, &apps, &specs, None, Some(5_000)).unwrap();
        assert_eq!(out.len(), 3);
        for ((result, report), spec) in out.iter().zip(&specs) {
            assert_eq!(result.spec_name, spec.name);
            assert_eq!(report.as_ref().unwrap().policy, spec.name);
        }
        // The baseline entry warmed under itself, so it must be
        // bit-identical to the straight-through baseline run.
        let straight = run_policy_reports(&cfg, &apps, &specs[..1], None, Some(5_000));
        assert_eq!(out[0].0.global, straight[0].0.global);
        assert_eq!(
            out[0].1.as_ref().unwrap().to_json_string(),
            straight[0].1.as_ref().unwrap().to_json_string()
        );
        // And the fan-out is deterministic.
        let again = run_policy_reports_warm_start(&cfg, &apps, &specs, None, Some(5_000)).unwrap();
        assert_eq!(out[2].0.global, again[2].0.global);
    }

    #[test]
    fn warm_start_without_warmup_falls_back_exactly() {
        let cfg = quick().instructions(5_000);
        let apps = [SpecApp::Libquantum, SpecApp::Sjeng];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
        let warm = run_policy_reports_warm_start(&cfg, &apps, &specs, None, None).unwrap();
        let straight = run_policy_reports(&cfg, &apps, &specs, None, None);
        for ((a, _), (b, _)) in warm.iter().zip(&straight) {
            assert_eq!(a.global, b.global);
            assert_eq!(a.threads[0].stats, b.threads[0].stats);
        }
    }

    #[test]
    fn warm_start_suite_keeps_grid_shape() {
        let cfg = quick().warmup(10_000).instructions(5_000);
        let mixes = &table2_mixes()[..2];
        let specs = vec![PolicySpec::baseline(), PolicySpec::eci()];
        let results = run_mix_suite_warm_start(&cfg, mixes, &specs, None).unwrap();
        assert_eq!(results.len(), 2);
        for (suite, spec) in results.iter().zip(&specs) {
            assert_eq!(suite.spec.name, spec.name);
            assert_eq!(suite.runs.len(), 2);
            for run in &suite.runs {
                assert_eq!(run.spec_name, spec.name);
                assert!(run.throughput() > 0.0);
            }
        }
    }

    #[test]
    fn warm_cache_hits_are_bit_identical() {
        let dir = std::env::temp_dir().join(format!("tla-runner-warmcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = WarmCache::open(&dir).unwrap();
        let cfg = quick().warmup(20_000).instructions(5_000);
        let apps = [SpecApp::Mcf, SpecApp::Libquantum];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs()];

        let uncached = run_policy_reports_warm_start(&cfg, &apps, &specs, None, None).unwrap();
        // First cached call warms and populates the directory...
        let first =
            run_policy_reports_warm_start_cached(&cfg, &apps, &specs, None, None, Some(&cache))
                .unwrap();
        let stored = cache.entries().unwrap();
        assert_eq!(stored.len(), 1, "one warm image per configuration");
        let expected = super::prewarm_info(&cfg, &apps, None, None);
        assert!(
            stored[0]
                .path
                .to_string_lossy()
                .contains(&WarmCache::key(&expected)),
            "file is named by the configuration key"
        );
        // ... second call resumes the stored image without re-warming.
        let second =
            run_policy_reports_warm_start_cached(&cfg, &apps, &specs, None, None, Some(&cache))
                .unwrap();
        for ((u, _), ((f, _), (s, _))) in uncached.iter().zip(first.iter().zip(&second)) {
            assert_eq!(u.global, f.global);
            assert_eq!(f.global, s.global);
            assert_eq!(f.threads[0].stats, s.threads[0].stats);
        }

        // A corrupt cache file is ignored, not fatal.
        std::fs::write(&stored[0].path, b"garbage").unwrap();
        let after =
            run_policy_reports_warm_start_cached(&cfg, &apps, &specs, None, None, Some(&cache))
                .unwrap();
        assert_eq!(after[1].0.global, second[1].0.global);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analyzed_reports_keep_order_and_carry_analytics() {
        let cfg = quick().instructions(5_000);
        let apps = [SpecApp::Mcf, SpecApp::Libquantum];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
        let out = run_policy_reports_analyzed(&cfg, &apps, &specs, None, Some(2_000), 4);
        assert_eq!(out.len(), 2);
        for ((result, report), spec) in out.iter().zip(&specs) {
            assert_eq!(result.spec_name, spec.name);
            assert_eq!(report.policy, spec.name);
            let reuse = report.reuse.as_ref().expect("analytics attached");
            assert_eq!(reuse.sample_every, 4);
            let rate = report.inclusion_victim_rate.expect("victim rate attached");
            assert!((0.0..=1.0).contains(&rate));
        }
        // Observation-only: bit-identical to the plain suite.
        let plain = run_policy_reports(&cfg, &apps, &specs, None, None);
        for ((a, _), (p, _)) in out.iter().zip(&plain) {
            assert_eq!(a.global, p.global);
        }
    }

    #[test]
    fn suite_indexing_and_normalization() {
        let cfg = quick().instructions(5_000);
        let mixes = &table2_mixes()[..2];
        let specs = vec![PolicySpec::baseline(), PolicySpec::qbs()];
        let results = run_mix_suite(&cfg, mixes, &specs, None);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].runs.len(), 2);
        let base = &results[0];
        let norm = results[0].normalized_throughput(base);
        assert!(norm.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let g = results[1].geomean_throughput(base).unwrap();
        assert!(g > 0.5 && g < 2.0);
        let red = results[1].miss_reduction_pct(base);
        assert_eq!(red.len(), 2);
    }

    #[test]
    fn geomean_throughput_zero_ratio_is_none_not_panic() {
        // Regression: a suite containing a run with zero throughput (no
        // committed instructions — e.g. a frozen measurement window) made
        // `geomean_throughput` panic through `geomean(..).unwrap()`. The
        // undefined mean now propagates as `None` for the caller to flag.
        let zero_run = RunResult {
            threads: Vec::new(),
            global: Default::default(),
            io: None,
            spec_name: "frozen".into(),
        };
        let suite = SuiteResult {
            spec: PolicySpec::baseline(),
            runs: vec![zero_run],
        };
        assert_eq!(suite.normalized_throughput(&suite), vec![0.0]);
        assert_eq!(suite.geomean_throughput(&suite), None);
        assert_eq!(
            tla_types::stats::fmt_ratio(suite.geomean_throughput(&suite)),
            "n/a"
        );
    }
}
