//! The CMP simulator: multiprogrammed runs, metrics and experiment
//! harness.
//!
//! This crate glues the substrates together exactly as §IV describes:
//! one [`tla_cpu::CoreModel`] per core driven by a
//! [`tla_workloads::SyntheticTrace`], all sharing one
//! [`tla_core::CacheHierarchy`]. Cores are interleaved in timestamp order
//! (the core with the smallest local clock issues next), per-thread
//! statistics freeze when the thread commits its instruction quota, and
//! faster threads keep running to compete for cache space, as in §IV-B.
//!
//! # Examples
//!
//! ```
//! use tla_sim::{MixRun, PolicySpec, SimConfig};
//! use tla_workloads::SpecApp;
//!
//! let cfg = SimConfig::scaled_down().instructions(10_000);
//! let mix = [SpecApp::Sjeng, SpecApp::Libquantum];
//! let result = MixRun::new(&cfg, &mix).spec(&PolicySpec::qbs()).run();
//! assert_eq!(result.threads.len(), 2);
//! assert!(result.throughput() > 0.0);
//! ```

mod checkpoint;
mod config;
mod oracle;
mod policyspec;
mod report;
mod run;
mod runner;
mod sched;
mod warmcache;

pub use checkpoint::{Checkpoint, CheckpointInfo};
pub use config::SimConfig;
pub use oracle::{
    belady, belady_bruteforce, belady_sharded, mix_reference_stream, optimal_llc, OracleResult,
};
pub use policyspec::PolicySpec;
pub use report::{Table, TableError};
pub use run::{EngineMode, MixRun, RunResult, RunTelemetry, ThreadResult};
pub use runner::{
    mpki_table, normalized_throughput, run_alone, run_alone_many, run_mix_suite,
    run_mix_suite_warm_start, run_mix_suite_warm_start_cached, run_policy_reports,
    run_policy_reports_analyzed, run_policy_reports_analyzed_io, run_policy_reports_io,
    run_policy_reports_warm_start, run_policy_reports_warm_start_cached, SuiteResult, Table1Row,
};
pub use tla_snapshot::SnapshotError;
pub use tla_telemetry::{RunReport, Window};
pub use warmcache::{WarmCache, WarmCacheEntry};
