//! On-disk cache of warm checkpoints, keyed by their configuration.
//!
//! The warm-up phase dominates wall-clock time for the paper's warm-once
//! methodology, and it is fully deterministic: the same mix, scale, seed,
//! quotas, prefetch setting, LLC override and warming policy always produce
//! the same warm image. A [`WarmCache`] exploits that by persisting each
//! warm checkpoint to a directory under a key derived from exactly those
//! axes, so repeated `compare` invocations (across processes and days) skip
//! straight to the measured phase.
//!
//! The key is the FNV-1a hash of the checkpoint's serialized `meta` section
//! with `total_instr` forced to zero — i.e. of every field that *determines*
//! the warm state but none that are *produced* by it — so it is computable
//! before warming. Keying on the serialized bytes also folds in the TLAS
//! format version: a format bump naturally invalidates stale images instead
//! of feeding them to a reader that may misparse them.
//!
//! Lookups never trust the file name alone: the stored image's own meta is
//! compared field-for-field against the expected configuration, and a file
//! that is unreadable, corrupt or mismatched is simply ignored (the caller
//! re-warms and overwrites it). The cache never evicts; `tla-cli snapshot
//! cache-info` lists a directory's contents without touching them.

use crate::checkpoint::{self, Checkpoint, CheckpointInfo};
use std::io;
use std::path::{Path, PathBuf};
use tla_snapshot::SnapshotWriter;

/// A directory of warm checkpoints, one `<key>.tlas` file per distinct
/// warming configuration.
#[derive(Debug, Clone)]
pub struct WarmCache {
    dir: PathBuf,
}

/// One file found by [`WarmCache::entries`].
#[derive(Debug, Clone)]
pub struct WarmCacheEntry {
    /// Full path of the `.tlas` file.
    pub path: PathBuf,
    /// File size in bytes.
    pub size_bytes: u64,
    /// The image's meta section, or `None` if the file does not parse as a
    /// checkpoint (a foreign or corrupt file; it is left alone).
    pub info: Option<CheckpointInfo>,
}

impl WarmCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<WarmCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(WarmCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache key for a warming configuration: the FNV-1a hash (as 16
    /// hex digits) of the meta section `info` would serialize to with
    /// `total_instr` zeroed.
    pub fn key(info: &CheckpointInfo) -> String {
        let normalized = CheckpointInfo {
            total_instr: 0,
            ..info.clone()
        };
        let mut w = SnapshotWriter::new();
        checkpoint::write_meta(&mut w, &normalized);
        let bytes = w.finish();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.tlas"))
    }

    /// Returns the cached warm image for `expected` (a pre-warm
    /// [`CheckpointInfo`], `total_instr` ignored) if one is present and its
    /// own meta matches `expected` on every warm-determining axis. Missing,
    /// unreadable or mismatched files return `None`.
    pub fn lookup(&self, expected: &CheckpointInfo) -> Option<Checkpoint> {
        let ck = Checkpoint::load(self.path_for(&Self::key(expected))).ok()?;
        let found = ck.info().ok()?;
        let matches = CheckpointInfo {
            total_instr: 0,
            ..found
        } == CheckpointInfo {
            total_instr: 0,
            ..expected.clone()
        };
        matches.then_some(ck)
    }

    /// Stores `ck` under its own meta's key, overwriting any previous
    /// image, and returns the file path.
    ///
    /// # Errors
    ///
    /// Fails if the meta section is unreadable or the file cannot be
    /// written.
    pub fn store(&self, ck: &Checkpoint) -> io::Result<PathBuf> {
        let info = ck
            .info()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = self.path_for(&Self::key(&info));
        // Write-then-rename so a concurrent reader never sees a torn file.
        // The tmp name must be unique per *writer*, not per key: two
        // processes (or threads) warming the same configuration used to
        // share `<key>.tlas.tmp`, interleave their writes, and rename a
        // torn image into place. Pid + process-wide counter closes both
        // the cross-process and the in-process race; the rename target is
        // still the shared `<key>.tlas`, and whichever rename lands last
        // wins with a complete image.
        let tmp = Self::tmp_path(&path);
        std::fs::write(&tmp, ck.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// A writer-unique sibling of `path` for the write-then-rename in
    /// [`WarmCache::store`]: `<key>.tlas.<pid>.<seq>.tmp`, where `seq` is a
    /// process-wide counter. Distinct per call even within one process.
    fn tmp_path(path: &Path) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".{}.{seq}.tmp", std::process::id()));
        path.with_file_name(name)
    }

    /// Lists every `.tlas` file in the cache directory, sorted by file
    /// name, without modifying anything.
    ///
    /// # Errors
    ///
    /// Fails only if the directory itself cannot be read.
    pub fn entries(&self) -> io::Result<Vec<WarmCacheEntry>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("tlas") {
                continue;
            }
            let size_bytes = entry.metadata()?.len();
            let info = Checkpoint::load(&path).ok().and_then(|ck| ck.info().ok());
            out.push(WarmCacheEntry {
                path,
                size_bytes,
                info,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_workloads::SpecApp;

    fn info() -> CheckpointInfo {
        CheckpointInfo {
            apps: vec![SpecApp::Libquantum, SpecApp::Sjeng],
            scale: 64,
            seed: 1,
            warmup: 10_000,
            instructions: 5_000,
            prefetch: true,
            llc_capacity_full_scale: None,
            warm_spec: "baseline".into(),
            total_instr: 0,
            instrumented: false,
            window: None,
            latencies: tla_cpu::Latencies::default(),
        }
    }

    #[test]
    fn key_ignores_total_instr_only() {
        let a = info();
        let warmed = CheckpointInfo {
            total_instr: 123_456,
            ..a.clone()
        };
        assert_eq!(WarmCache::key(&a), WarmCache::key(&warmed));
        let other_seed = CheckpointInfo {
            seed: 2,
            ..a.clone()
        };
        assert_ne!(WarmCache::key(&a), WarmCache::key(&other_seed));
        let other_mix = CheckpointInfo {
            apps: vec![SpecApp::Mcf],
            ..a
        };
        assert_ne!(WarmCache::key(&info()), WarmCache::key(&other_mix));
        // The ablation_latency fix: latency config is a warm-determining
        // axis, so it must change the key too.
        let other_latency = CheckpointInfo {
            latencies: tla_cpu::Latencies {
                memory: 300,
                ..tla_cpu::Latencies::default()
            },
            ..info()
        };
        assert_ne!(WarmCache::key(&info()), WarmCache::key(&other_latency));
    }

    #[test]
    fn key_is_stable_hex() {
        let k = WarmCache::key(&info());
        assert_eq!(k.len(), 16);
        assert!(k.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(k, WarmCache::key(&info()), "key is deterministic");
    }

    /// A minimal valid checkpoint: a meta section and nothing else (enough
    /// for `store`/`lookup`, which only parse meta).
    fn tiny_checkpoint(i: &CheckpointInfo) -> Checkpoint {
        let mut w = SnapshotWriter::new();
        w.begin_section("meta");
        checkpoint::write_meta(&mut w, i);
        w.end_section();
        Checkpoint::from_bytes(w.finish()).expect("meta-only checkpoint is valid")
    }

    #[test]
    fn tmp_paths_are_unique_per_writer() {
        let target = Path::new("/cache/dir/deadbeef.tlas");
        let a = WarmCache::tmp_path(target);
        let b = WarmCache::tmp_path(target);
        // Same key, same process: successive writers still get distinct
        // tmp files (the counter half of pid+counter), in the same dir.
        assert_ne!(a, b);
        assert_eq!(a.parent(), target.parent());
        let name = a.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("deadbeef.tlas."));
        assert!(name.ends_with(".tmp"));
        assert!(name.contains(&std::process::id().to_string()));
    }

    #[test]
    fn repeated_stores_leave_one_valid_image_and_no_tmp_litter() {
        let dir = std::env::temp_dir().join(format!("tla-warmcache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = WarmCache::open(&dir).unwrap();
        let ck = tiny_checkpoint(&info());
        // Two stores of the same key go through *distinct* tmp names; the
        // second must not corrupt what the first renamed into place.
        let p1 = cache.store(&ck).unwrap();
        let p2 = cache.store(&ck).unwrap();
        assert_eq!(p1, p2);
        let back = cache.lookup(&info()).expect("stored image must hit");
        assert_eq!(back.as_bytes(), ck.as_bytes(), "image is whole, not torn");
        // Nothing but the final .tlas file remains — every tmp was renamed
        // or would be visible here as litter.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 1, "unexpected files: {files:?}");
        assert!(files[0].ends_with(".tlas"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_lists_nothing_and_misses() {
        let dir = std::env::temp_dir().join(format!("tla-warmcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = WarmCache::open(&dir).unwrap();
        assert!(cache.entries().unwrap().is_empty());
        assert!(cache.lookup(&info()).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
