//! Core interleaving: pick the core with the smallest local clock.
//!
//! The run loop steps one core per iteration, always the one whose local
//! cycle clock is furthest behind, so shared-LLC access order is
//! timestamp-accurate (§IV-B). A linear `min_by_key` scan costs
//! O(n_cores) per committed instruction — quadratic in total work for the
//! 8-core Figure 11 sweeps — so the scheduler keeps the clocks in a
//! binary min-heap instead: O(log n) per step and exactly the same pick
//! order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tla_types::Cycle;

/// Index min-heap over per-core clocks.
///
/// Pops the core with the smallest `(clock, index)` pair, which matches
/// the tie-break of `(0..n).min_by_key(|i| clock[i])` exactly: among
/// equal clocks the lowest core index runs first. Every core keeps
/// exactly one heap entry; [`CoreScheduler::pick`] removes it and
/// [`CoreScheduler::reinsert`] puts the updated clock back, so no stale
/// entries ever accumulate.
#[derive(Debug, Clone)]
pub(crate) struct CoreScheduler {
    heap: BinaryHeap<Reverse<(Cycle, usize)>>,
}

impl CoreScheduler {
    /// A scheduler over cores with the given initial clocks.
    pub fn new(clocks: impl IntoIterator<Item = Cycle>) -> Self {
        CoreScheduler {
            heap: clocks
                .into_iter()
                .enumerate()
                .map(|(i, c)| Reverse((c, i)))
                .collect(),
        }
    }

    /// Removes and returns the index of the core that must step next
    /// (smallest clock, ties to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics if every core's entry has been picked without reinsertion.
    pub fn pick(&mut self) -> usize {
        let Reverse((_, i)) = self.heap.pop().expect("scheduler has a core");
        i
    }

    /// Returns core `i` to the schedule with its updated clock.
    pub fn reinsert(&mut self, i: usize, clock: Cycle) {
        self.heap.push(Reverse((clock, i)));
    }

    /// The smallest `(clock, index)` pair currently scheduled, without
    /// removing it — the run-extraction horizon: after a [`pick`], the
    /// picked core may keep committing back-to-back while its updated
    /// `(clock, index)` stays lexicographically below this pair, because
    /// every other core's entry is at least this large and unchanged.
    ///
    /// `None` when the heap is empty (single-core runs after the pick).
    ///
    /// [`pick`]: CoreScheduler::pick
    pub fn peek(&self) -> Option<(Cycle, usize)> {
        self.heap.peek().map(|&Reverse(pair)| pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact pick the run loop used before the heap existed.
    fn scan_pick(clocks: &[Cycle]) -> usize {
        (0..clocks.len())
            .min_by_key(|&i| clocks[i])
            .expect("at least one core")
    }

    #[test]
    fn matches_linear_scan_including_ties() {
        // Deterministic pseudo-random clock advances (no external RNG):
        // exercise long tie runs and uneven progress over many steps.
        let n = 8;
        let mut clocks: Vec<Cycle> = vec![0; n];
        let mut sched = CoreScheduler::new(clocks.iter().copied());
        let mut state: u64 = 0x1234_5678_9ABC_DEF0;
        for step in 0..10_000 {
            let expected = scan_pick(&clocks);
            let picked = sched.pick();
            assert_eq!(picked, expected, "step {step}: clocks {clocks:?}");
            // xorshift64 advance; frequent zero increments create ties.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            clocks[picked] += state % 4;
            sched.reinsert(picked, clocks[picked]);
        }
    }

    #[test]
    fn ties_break_toward_lowest_index() {
        let mut sched = CoreScheduler::new([5, 5, 5, 5]);
        assert_eq!(sched.pick(), 0);
        sched.reinsert(0, 5);
        // Core 0 re-enters at the same clock: it still wins the tie.
        assert_eq!(sched.pick(), 0);
        sched.reinsert(0, 6);
        assert_eq!(sched.pick(), 1);
        sched.reinsert(1, 9);
        assert_eq!(sched.pick(), 2);
        sched.reinsert(2, 9);
        assert_eq!(sched.pick(), 3);
        sched.reinsert(3, 9);
        // 0 at 6 now leads 1..3 at 9.
        assert_eq!(sched.pick(), 0);
    }

    #[test]
    fn single_core_always_picks_zero() {
        let mut sched = CoreScheduler::new([0]);
        for c in 1..100 {
            assert_eq!(sched.pick(), 0);
            sched.reinsert(0, c);
        }
    }

    #[test]
    fn peek_returns_current_minimum_without_removal() {
        let mut sched = CoreScheduler::new([7, 3, 5]);
        assert_eq!(sched.peek(), Some((3, 1)));
        assert_eq!(sched.pick(), 1);
        // After the pick the horizon is the next-smallest entry.
        assert_eq!(sched.peek(), Some((5, 2)));
        assert_eq!(sched.peek(), Some((5, 2)), "peek must not consume");
        sched.reinsert(1, 9);
        assert_eq!(sched.peek(), Some((5, 2)));
        // A drained single-core scheduler has no horizon.
        let mut solo = CoreScheduler::new([0]);
        let _ = solo.pick();
        assert_eq!(solo.peek(), None);
    }

    /// The batched engine's run extraction: pop a core, keep committing on
    /// it while its updated `(clock, index)` stays below [`peek`]'s
    /// horizon, then reinsert. The commit order must equal the serial
    /// pick-one-reinsert loop's order exactly, ties included.
    ///
    /// [`peek`]: CoreScheduler::peek
    #[test]
    fn run_extraction_matches_serial_commit_order() {
        let n = 4;
        // Clock advance as a pure function of (core, per-core commit
        // count), so both schedules see identical advances. Zero advances
        // are frequent, exercising tie territory.
        let adv = |i: usize, k: u64| {
            let mut s = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k;
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % 4
        };
        let total = 20_000;

        // Serial reference order.
        let mut clocks: Vec<Cycle> = vec![0; n];
        let mut count = vec![0u64; n];
        let mut serial = Vec::with_capacity(total);
        for _ in 0..total {
            let i = scan_pick(&clocks);
            clocks[i] += adv(i, count[i]);
            count[i] += 1;
            serial.push(i);
        }

        // Run-extraction order.
        let mut clocks: Vec<Cycle> = vec![0; n];
        let mut count = vec![0u64; n];
        let mut extracted = Vec::with_capacity(total);
        let mut sched = CoreScheduler::new(clocks.iter().copied());
        while extracted.len() < total {
            let i = sched.pick();
            let horizon = sched.peek();
            loop {
                clocks[i] += adv(i, count[i]);
                count[i] += 1;
                extracted.push(i);
                if extracted.len() == total {
                    break;
                }
                match horizon {
                    Some(h) if (clocks[i], i) < h => {}
                    Some(_) => break,
                    None => {}
                }
            }
            sched.reinsert(i, clocks[i]);
        }
        assert_eq!(serial, extracted);
    }
}
