//! Offline Belady MIN oracle: per-configuration optimal LLC hit counts.
//!
//! The TLA policies close part of the gap between inclusive and
//! non-inclusive hierarchies; this module measures how much room is left
//! above *any* replacement policy. [`belady`] replays a finite reference
//! stream against an idealized set-associative cache with future
//! knowledge (Belady's MIN: on a miss, evict the resident line whose
//! next use lies farthest in the future) and reports the optimal hit and
//! miss counts. `gap_to_opt` in reports is then
//! `(measured_misses - opt_misses) / opt_misses`.
//!
//! The oracle is demand-fetch MIN, not OPT-with-bypass: every referenced
//! line is installed, exactly like the simulated LLC. It sees the
//! [`mix_reference_stream`] — the interleaved L1-access stream with
//! consecutive instruction fetches to the same line deduplicated — so
//! its bound is "one shared cache of LLC geometry with perfect
//! replacement serving every reference". The real hierarchy filters
//! most references through the core caches and interleaves cores by
//! cycle rather than round-robin, so the bound is an approximation:
//! tight enough to rank policies against, not a per-access replay.
//!
//! Like the PR 3 hot path, the forward pass is allocation-free: state
//! lives in flat `sets x ways` arrays and the per-access work is a short
//! way scan. The backward pass allocates one `next_use` index per
//! reference and a line-address map, both sized up front.

use crate::config::SimConfig;
use std::collections::HashMap;
use tla_cache::probe::{self, WayMask};
use tla_core::HierarchyConfig;
use tla_types::LineAddr;
use tla_workloads::{SpecApp, TraceSource};

/// Sentinel next-use index: the line is never referenced again.
const NEVER: u64 = u64::MAX;

/// Hit/miss counts of an optimal-replacement replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleResult {
    /// References replayed in the measured phase (after the warm prefix).
    pub accesses: u64,
    /// Measured-phase hits under MIN.
    pub hits: u64,
    /// Measured-phase misses under MIN.
    pub misses: u64,
}

impl OracleResult {
    /// Measured-phase hit rate in `[0, 1]` (0 when nothing was measured).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Replays `refs` under Belady's MIN on a `sets x ways` cache and counts
/// hits and misses, skipping the first `warm_len` references (the warm-up
/// prefix participates in cache state but not in the counts — the same
/// freeze semantics the simulator uses).
///
/// Two passes: a backward pass precomputes each reference's next-use
/// index, then an allocation-free forward pass keeps per-way tags and
/// next-use indices in flat arrays and evicts the way with the farthest
/// next use (first such way on a tie, which only never-again lines can
/// produce).
///
/// # Panics
///
/// Panics if `sets` is not a power of two (set indexing is a mask, as in
/// the simulated caches) or `ways` is zero.
pub fn belady(refs: &[LineAddr], warm_len: usize, sets: usize, ways: usize) -> OracleResult {
    assert!(sets.is_power_of_two(), "sets must be a power of two");
    assert!(ways > 0, "ways must be positive");
    let mask = sets as u64 - 1;

    // Backward pass: next_use[i] = index of the next reference to the
    // same line after i, or NEVER.
    let mut next_use = vec![NEVER; refs.len()];
    let mut last: HashMap<u64, u64> = HashMap::with_capacity(1024);
    for i in (0..refs.len()).rev() {
        next_use[i] = last.insert(refs[i].raw(), i as u64).unwrap_or(NEVER);
    }

    // Forward pass over flat per-way state.
    let mut valid = vec![false; sets * ways];
    let mut tags = vec![0u64; sets * ways];
    let mut nexts = vec![NEVER; sets * ways];
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (i, r) in refs.iter().enumerate() {
        let a = r.raw();
        let base = ((a & mask) as usize) * ways;
        let set_valid = &mut valid[base..base + ways];
        let set_tags = &mut tags[base..base + ways];
        let set_nexts = &mut nexts[base..base + ways];
        let measured = i >= warm_len;
        let hit = (0..ways).find(|&w| set_valid[w] && set_tags[w] == a);
        match hit {
            Some(w) => {
                if measured {
                    hits += 1;
                }
                set_nexts[w] = next_use[i];
            }
            None => {
                if measured {
                    misses += 1;
                }
                let slot = match (0..ways).find(|&w| !set_valid[w]) {
                    Some(w) => w,
                    None => {
                        // Evict the line with the farthest next use
                        // (strict >, so ties keep the first way).
                        let mut far = 0;
                        for w in 1..ways {
                            if set_nexts[w] > set_nexts[far] {
                                far = w;
                            }
                        }
                        far
                    }
                };
                set_valid[slot] = true;
                set_tags[slot] = a;
                set_nexts[slot] = next_use[i];
            }
        }
    }
    OracleResult {
        accesses: refs.len().saturating_sub(warm_len) as u64,
        hits,
        misses,
    }
}

/// Set-sharded MIN replay: the same counts as [`belady`], computed from
/// per-set run queues processed back-to-back, optionally on `jobs` worker
/// threads.
///
/// LLC sets are fully independent under MIN: a reference only competes
/// with residents of its own set, and a line's next use is always in the
/// same set. The replay therefore partitions `refs` by set index into
/// per-set queues — keeping each reference's *global* stream position,
/// which the warm cut and the farthest-next-use comparisons are defined
/// over — then replays each queue in one cache-hot burst: the set's tag
/// array stays register/L1-resident across the whole queue, every probe
/// goes through the dispatched SIMD/scalar kernel
/// ([`probe::probe_first`]), and evictions reduce a complemented next-use
/// array with [`probe::min_index`] (first minimum of `!next` = first
/// maximum of `next`, matching [`belady`]'s strict-`>` first-way
/// tie-break). Per-set hit/miss counts merge additively in set order, so
/// the totals are bit-identical to [`belady`] for *every* `jobs` value —
/// only wall-clock changes. `jobs <= 1` runs inline on the caller.
///
/// # Panics
///
/// Panics like [`belady`].
pub fn belady_sharded(
    refs: &[LineAddr],
    warm_len: usize,
    sets: usize,
    ways: usize,
    jobs: usize,
) -> OracleResult {
    assert!(sets.is_power_of_two(), "sets must be a power of two");
    assert!(ways > 0, "ways must be positive");
    let mask = sets as u64 - 1;

    // Partition into per-set run queues of (global index, line address).
    let mut queues: Vec<Vec<(u64, u64)>> = vec![Vec::new(); sets];
    for (i, r) in refs.iter().enumerate() {
        let a = r.raw();
        queues[(a & mask) as usize].push((i as u64, a));
    }

    let warm = warm_len as u64;
    let per_set = tla_pool::scoped_map(jobs, queues, |queue| replay_set_queue(&queue, warm, ways));
    let (hits, misses) = per_set
        .iter()
        .fold((0, 0), |(h, m), &(sh, sm)| (h + sh, m + sm));
    OracleResult {
        accesses: refs.len().saturating_sub(warm_len) as u64,
        hits,
        misses,
    }
}

/// Replays one set's reference queue under MIN and returns its measured
/// `(hits, misses)`. `queue` holds (global stream index, line address)
/// pairs in stream order; a reference is measured when its global index
/// is at or past `warm_len`.
fn replay_set_queue(queue: &[(u64, u64)], warm_len: u64, ways: usize) -> (u64, u64) {
    // Backward pass, set-local: the next use of a line is necessarily in
    // the same set's queue, so the global next-use indices come out
    // identical to the whole-stream pass.
    let mut next_use = vec![NEVER; queue.len()];
    let mut last: HashMap<u64, u64> = HashMap::with_capacity(queue.len().min(1024));
    for k in (0..queue.len()).rev() {
        next_use[k] = last.insert(queue[k].1, queue[k].0).unwrap_or(NEVER);
    }

    // Forward replay over this set's dense tag array. `far_keys` holds the
    // complement of each resident way's next use, so the eviction scan is
    // a min-reduce; invalid ways are never consulted (fills claim them
    // first).
    let mut tags = vec![LineAddr::new(0); ways];
    let mut valid = WayMask::EMPTY;
    let mut far_keys = vec![0u64; ways];
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (k, &(gi, a)) in queue.iter().enumerate() {
        let needle = LineAddr::new(a);
        let measured = gi >= warm_len;
        match probe::probe_first(&tags, needle, &valid) {
            Some(w) => {
                if measured {
                    hits += 1;
                }
                far_keys[w] = !next_use[k];
            }
            None => {
                if measured {
                    misses += 1;
                }
                let slot = match WayMask::all(ways).and_not(&valid).first() {
                    Some(w) => w,
                    None => probe::min_index(&far_keys).expect("ways is positive"),
                };
                valid.set(slot);
                tags[slot] = needle;
                far_keys[slot] = !next_use[k];
            }
        }
    }
    (hits, misses)
}

/// Reference implementation of [`belady`]: no precomputation, on every
/// eviction the next use of each resident line is found by a forward
/// scan of the remaining references — O(n^2) and only suitable for
/// tests, where it pins the two-pass oracle's counts.
///
/// # Panics
///
/// Panics like [`belady`].
pub fn belady_bruteforce(
    refs: &[LineAddr],
    warm_len: usize,
    sets: usize,
    ways: usize,
) -> OracleResult {
    assert!(sets.is_power_of_two(), "sets must be a power of two");
    assert!(ways > 0, "ways must be positive");
    let mask = sets as u64 - 1;
    let mut cache: Vec<Vec<u64>> = vec![Vec::with_capacity(ways); sets];
    let mut hits = 0u64;
    let mut misses = 0u64;
    for (i, r) in refs.iter().enumerate() {
        let a = r.raw();
        let set = (a & mask) as usize;
        let lines = &mut cache[set];
        let measured = i >= warm_len;
        if lines.contains(&a) {
            if measured {
                hits += 1;
            }
        } else {
            if measured {
                misses += 1;
            }
            if lines.len() < ways {
                lines.push(a);
            } else {
                let next_of = |t: u64| {
                    refs[i + 1..]
                        .iter()
                        .position(|r| r.raw() == t)
                        .map_or(NEVER, |d| (i + 1 + d) as u64)
                };
                let mut far = 0;
                let mut far_next = next_of(lines[0]);
                for (w, &t) in lines.iter().enumerate().skip(1) {
                    let next = next_of(t);
                    if next > far_next {
                        far = w;
                        far_next = next;
                    }
                }
                lines[far] = a;
            }
        }
    }
    OracleResult {
        accesses: refs.len().saturating_sub(warm_len) as u64,
        hits,
        misses,
    }
}

/// The reference stream a mix presents to the memory hierarchy, plus the
/// index where the warm-up prefix ends.
///
/// Cores are interleaved round-robin, one instruction each, for
/// `warmup + quota` instructions per core. Each instruction contributes
/// its instruction-fetch line when it differs from the core's previous
/// one (the same dedup the simulator's fetch path applies) followed by
/// its data line, if any. The cut index marks the first measured-phase
/// reference (0 when `warmup` is zero).
pub fn mix_reference_stream(cfg: &SimConfig, apps: &[SpecApp]) -> (Vec<LineAddr>, usize) {
    assert!(!apps.is_empty(), "a mix needs at least one app");
    let mut traces: Vec<_> = apps
        .iter()
        .enumerate()
        .map(|(i, app)| app.trace(cfg.scale(), i as u64, cfg.seed_value()))
        .collect();
    let warmup = cfg.warmup_quota();
    let total = warmup + cfg.instruction_quota();
    let mut last_code: Vec<Option<LineAddr>> = vec![None; apps.len()];
    let mut refs = Vec::new();
    let mut warm_len = 0;
    for n in 0..total {
        for (i, trace) in traces.iter_mut().enumerate() {
            let instr = trace.next_instruction();
            if last_code[i] != Some(instr.code_line) {
                last_code[i] = Some(instr.code_line);
                refs.push(instr.code_line);
            }
            if let Some(m) = instr.mem {
                refs.push(m.addr);
            }
        }
        if n + 1 == warmup {
            warm_len = refs.len();
        }
    }
    (refs, warm_len)
}

/// The MIN oracle's measured-phase result for a mix under `cfg`'s LLC
/// geometry (honoring an `llc_capacity_full_scale` override, like
/// [`crate::MixRun::llc_capacity_full_scale`]). This is the `opt_misses`
/// denominator behind `gap_to_opt`.
///
/// The replay is the set-sharded one ([`belady_sharded`]) on
/// [`SimConfig::effective_shard_jobs`] worker threads (serial unless
/// `shard_jobs`/`TLA_SHARD_JOBS` opts in); the counts are bit-identical
/// for every job count.
pub fn optimal_llc(
    cfg: &SimConfig,
    apps: &[SpecApp],
    llc_capacity_full_scale: Option<usize>,
) -> OracleResult {
    let scale = cfg.scale() as usize;
    let mut hcfg = HierarchyConfig::scaled(apps.len(), scale);
    if let Some(bytes) = llc_capacity_full_scale {
        hcfg = hcfg.llc_capacity(bytes / scale);
    }
    let llc = hcfg.llc();
    let (refs, warm_len) = mix_reference_stream(cfg, apps);
    belady_sharded(
        &refs,
        warm_len,
        llc.sets(),
        llc.ways(),
        cfg.effective_shard_jobs(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(raw: &[u64]) -> Vec<LineAddr> {
        raw.iter().map(|&a| LineAddr::new(a)).collect()
    }

    #[test]
    fn belady_on_classic_sequence() {
        // Fully-associative (1 set), 3 ways, the textbook example:
        // a b c d a b e a b c d e, all mapping to set 0.
        let refs = addrs(&[0, 8, 16, 24, 0, 8, 32, 0, 8, 16, 24, 32]);
        let r = belady(&refs, 0, 1, 3);
        assert_eq!(r.accesses, 12);
        // MIN with 3 frames: cold a b c, d evicts c, e evicts d, then c
        // and d miss again and the final e hits — 7 faults, 5 hits.
        assert_eq!(r.misses, 7, "{r:?}");
        assert_eq!(r.hits, 5);
        assert_eq!(belady_bruteforce(&refs, 0, 1, 3), r);
    }

    #[test]
    fn belady_matches_bruteforce_on_random_streams() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways, len) in [(1, 4, 200), (4, 2, 300), (8, 4, 500), (16, 1, 400)] {
            let refs: Vec<LineAddr> = (0..len)
                .map(|_| LineAddr::new(next() % (sets as u64 * ways as u64 * 3)))
                .collect();
            for warm in [0, len / 3] {
                let fast = belady(&refs, warm, sets, ways);
                let slow = belady_bruteforce(&refs, warm, sets, ways);
                assert_eq!(fast, slow, "sets={sets} ways={ways} len={len} warm={warm}");
            }
        }
    }

    #[test]
    fn sharded_replay_matches_serial_for_any_job_count() {
        let mut state = 0xfeed_beef_dead_c0deu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways, len) in [(1, 4, 300), (4, 2, 400), (16, 8, 1_000), (64, 4, 2_000)] {
            let refs: Vec<LineAddr> = (0..len)
                .map(|_| LineAddr::new(next() % (sets as u64 * ways as u64 * 3)))
                .collect();
            for warm in [0, len / 3] {
                let serial = belady(&refs, warm, sets, ways);
                for jobs in [1, 2, 7] {
                    assert_eq!(
                        belady_sharded(&refs, warm, sets, ways, jobs),
                        serial,
                        "sets={sets} ways={ways} len={len} warm={warm} jobs={jobs}"
                    );
                }
            }
        }
        // Empty stream degenerate case.
        assert_eq!(belady_sharded(&[], 0, 8, 2, 4), belady(&[], 0, 8, 2));
    }

    #[test]
    fn optimal_llc_is_shard_job_invariant() {
        let cfg = SimConfig::scaled_down().instructions(10_000);
        let apps = [SpecApp::Mcf, SpecApp::Sjeng];
        let serial = optimal_llc(&cfg, &apps, None);
        assert!(serial.accesses > 0);
        for jobs in [2, 7] {
            let sharded = optimal_llc(&cfg.clone().shard_jobs(jobs), &apps, None);
            assert_eq!(sharded, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn warm_prefix_is_excluded_from_counts() {
        let refs = addrs(&[0, 8, 0, 8, 0, 8]);
        let all = belady(&refs, 0, 1, 2);
        assert_eq!(all.accesses, 6);
        assert_eq!(all.misses, 2); // two cold fills
        let warm = belady(&refs, 2, 1, 2);
        assert_eq!(warm.accesses, 4);
        assert_eq!(warm.misses, 0, "cold fills fall in the warm prefix");
        assert_eq!(warm.hits, 4);
    }

    #[test]
    fn oracle_never_misses_more_than_lru_would() {
        // A cyclic scan over ways+1 lines is LRU's worst case (0% hits);
        // MIN keeps ways-1 of them resident.
        let mut refs = Vec::new();
        for _ in 0..50 {
            for a in 0..5u64 {
                refs.push(LineAddr::new(a * 8)); // all in set 0 of an 8-set cache
            }
        }
        let r = belady(&refs, 0, 8, 4);
        assert!(
            r.hit_rate() > 0.7,
            "MIN must rescue most of a cyclic scan: {r:?}"
        );
    }

    #[test]
    fn mix_reference_stream_is_deterministic_and_cut_correctly() {
        let cfg = SimConfig::scaled_down().warmup(1_000).instructions(2_000);
        let apps = [SpecApp::Sjeng, SpecApp::Libquantum];
        let (a, cut_a) = mix_reference_stream(&cfg, &apps);
        let (b, cut_b) = mix_reference_stream(&cfg, &apps);
        assert_eq!(a, b);
        assert_eq!(cut_a, cut_b);
        assert!(cut_a > 0 && cut_a < a.len());
        // Without warm-up the cut is at the start.
        let cold = SimConfig::scaled_down().instructions(1_000);
        let (_, cut) = mix_reference_stream(&cold, &apps);
        assert_eq!(cut, 0);
    }

    #[test]
    fn optimal_llc_lower_bounds_a_single_core_run() {
        use crate::{MixRun, PolicySpec};
        // Single core, prefetch off, no warm-up: the oracle's stream is
        // exactly the hierarchy's access sequence, and an inclusive
        // hierarchy's contents are a subset of its LLC frames — so the
        // whole hierarchy acts as one demand-fetch cache of LLC geometry
        // and MIN bounds its misses from below. (With the prefetcher on,
        // prefetch hits can beat a demand-fetch oracle; with multiple
        // cores the interleavings diverge — both make this a heuristic
        // rather than a bound, which is why reports label it `gap_to_opt`
        // against an approximation.)
        let cfg = SimConfig::scaled_down()
            .instructions(30_000)
            .prefetch(false);
        let apps = [SpecApp::Mcf];
        let opt = optimal_llc(&cfg, &apps, None);
        assert!(opt.accesses > 0 && opt.misses > 0);
        let run = MixRun::new(&cfg, &apps).spec(&PolicySpec::baseline()).run();
        assert!(
            opt.misses <= run.llc_misses(),
            "opt {} > measured {}",
            opt.misses,
            run.llc_misses()
        );
    }
}
