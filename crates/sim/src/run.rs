//! One multiprogrammed simulation run.

use crate::checkpoint::{self, Checkpoint, CheckpointInfo};
use crate::config::SimConfig;
use crate::policyspec::PolicySpec;
use crate::sched::CoreScheduler;
use tla_core::{
    CacheHierarchy, GlobalStats, HierarchyConfig, InclusionPolicy, IoInjectConfig, PerCoreStats,
    TlaPolicy, VictimCacheConfig,
};
use tla_cpu::CoreModel;
use tla_io::IoMixConfig;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_telemetry::{
    ConfigEcho, CountingSink, EventKind, IoReport, MultiSink, PerSetHistogram, ReuseProfiler,
    ReuseReport, RunReport, SetHistogramReport, SharedSink, TelemetrySink, ThreadReport, Window,
    WindowedSeries, DEFAULT_REUSE_BUCKETS,
};
use tla_types::{stats, AccessKind, CoreId, Cycle, IoAgentStats, IoStats, LineAddr};
use tla_workloads::{BatchedTrace, SpecApp, SyntheticTrace, TraceSource};

/// Which execution loop drives the engine.
///
/// All loops commit the same instructions in the same global order and
/// are byte-identical in every output (results, reports, checkpoints);
/// they differ only in wall-clock. The serial loop is kept as the
/// equivalence reference — `TLA_ENGINE=serial` selects it process-wide,
/// and the equivalence tests pin the loops against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Run extraction: pop a core once and commit a whole run of its
    /// instructions back-to-back (buffered batch generation, hierarchy
    /// state hot) until its clock passes the scheduler horizon.
    Batched,
    /// The original loop: one heap pop, one instruction, one push.
    Serial,
    /// The epoch pipeline: simulated time is chopped into bounded epochs;
    /// each epoch first pre-generates every core's (and device agent's)
    /// instruction stream for the whole epoch on a worker pool
    /// ([`tla_pool::scoped_map`], capped by
    /// [`SimConfig::engine_jobs`](crate::SimConfig::engine_jobs) /
    /// `TLA_ENGINE_JOBS`), then commits the epoch through the batched
    /// run-extraction loop. Generation is timing-independent and the
    /// commit order is untouched, so output stays byte-identical to the
    /// other modes at every job count (see DESIGN §4l).
    Parallel,
}

impl EngineMode {
    /// Parses a `TLA_ENGINE` value.
    ///
    /// # Errors
    ///
    /// Unrecognized values are an error listing the valid modes (they
    /// were historically mapped to [`EngineMode::Batched`] silently,
    /// which turned typos like `TLA_ENGINE=seriall` into wrong-engine
    /// measurements).
    pub fn parse(value: &str) -> Result<EngineMode, String> {
        if value.eq_ignore_ascii_case("batched") {
            Ok(EngineMode::Batched)
        } else if value.eq_ignore_ascii_case("serial") {
            Ok(EngineMode::Serial)
        } else if value.eq_ignore_ascii_case("parallel") {
            Ok(EngineMode::Parallel)
        } else {
            Err(format!(
                "unrecognized TLA_ENGINE value {value:?} (valid modes: batched, serial, parallel)"
            ))
        }
    }

    /// The process default: batched, unless `TLA_ENGINE` selects another
    /// mode (unset or empty means batched).
    ///
    /// # Errors
    ///
    /// Propagates [`EngineMode::parse`]'s error for unrecognized values.
    pub fn from_env() -> Result<EngineMode, String> {
        match std::env::var("TLA_ENGINE") {
            Ok(v) if !v.is_empty() => EngineMode::parse(&v),
            _ => Ok(EngineMode::Batched),
        }
    }

    /// The mode's canonical lowercase name (the `TLA_ENGINE` spelling).
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Batched => "batched",
            EngineMode::Serial => "serial",
            EngineMode::Parallel => "parallel",
        }
    }
}

/// Frozen results of one thread (statistics collected over exactly the
/// configured instruction quota, as in §IV-B).
#[derive(Debug, Clone)]
pub struct ThreadResult {
    /// The benchmark this thread ran.
    pub app: SpecApp,
    /// Instructions committed before the freeze.
    pub instructions: u64,
    /// Cycles elapsed when the quota retired.
    pub cycles: Cycle,
    /// Hierarchy counters attributed to this thread at the freeze point.
    pub stats: PerCoreStats,
}

impl ThreadResult {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Combined L1 misses per 1000 instructions.
    pub fn l1_mpki(&self) -> f64 {
        stats::mpki(self.stats.l1_misses(), self.instructions)
    }

    /// L2 misses per 1000 instructions.
    pub fn l2_mpki(&self) -> f64 {
        stats::mpki(self.stats.l2_misses, self.instructions)
    }

    /// LLC (demand) misses per 1000 instructions.
    pub fn llc_mpki(&self) -> f64 {
        stats::mpki(self.stats.llc_misses, self.instructions)
    }
}

/// The outcome of one [`MixRun`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-thread results in core order.
    pub threads: Vec<ThreadResult>,
    /// Whole-hierarchy message counters over the entire run (including the
    /// post-freeze tail of faster threads).
    pub global: GlobalStats,
    /// Device-injection counters (whole run) when I/O agents were
    /// configured: `(global totals, per-agent breakdown in spec order)`.
    /// `None` whenever the mix ran without I/O, so plain runs stay
    /// bit-identical to pre-I/O builds.
    pub io: Option<(IoStats, Vec<IoAgentStats>)>,
    /// The policy configuration that produced this result.
    pub spec_name: String,
}

impl RunResult {
    /// Throughput: the sum of per-thread IPCs (the paper's throughput
    /// metric, footnote 5).
    pub fn throughput(&self) -> f64 {
        self.threads.iter().map(ThreadResult::ipc).sum()
    }

    /// Weighted speedup given each thread's isolated IPC:
    /// `sum(IPC_shared / IPC_alone)`.
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipc` has the wrong length.
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(alone_ipc.len(), self.threads.len());
        self.threads
            .iter()
            .zip(alone_ipc)
            .map(|(t, &a)| if a > 0.0 { t.ipc() / a } else { 0.0 })
            .sum()
    }

    /// Harmonic-mean fairness metric: `N / sum(IPC_alone / IPC_shared)`.
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipc` has the wrong length.
    pub fn hmean_fairness(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(alone_ipc.len(), self.threads.len());
        let inv: f64 = self
            .threads
            .iter()
            .zip(alone_ipc)
            .map(|(t, &a)| {
                let ipc = t.ipc();
                if ipc > 0.0 {
                    a / ipc
                } else {
                    f64::INFINITY
                }
            })
            .sum();
        self.threads.len() as f64 / inv
    }

    /// Total demand LLC misses across threads (within their quotas).
    pub fn llc_misses(&self) -> u64 {
        self.threads.iter().map(|t| t.stats.llc_misses).sum()
    }

    /// Total inclusion victims suffered across threads.
    pub fn inclusion_victims(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| t.stats.inclusion_victims())
            .sum()
    }
}

/// Builder for one simulation run of a workload mix under one policy.
///
/// # Examples
///
/// ```
/// use tla_sim::{MixRun, SimConfig};
/// use tla_core::TlaPolicy;
/// use tla_workloads::SpecApp;
///
/// let cfg = SimConfig::scaled_down().instructions(5_000);
/// let r = MixRun::new(&cfg, &[SpecApp::DealII, SpecApp::Mcf])
///     .policy(TlaPolicy::eci())
///     .run();
/// assert_eq!(r.threads[0].app, SpecApp::DealII);
/// ```
#[derive(Debug, Clone)]
pub struct MixRun<'a> {
    cfg: &'a SimConfig,
    apps: Vec<SpecApp>,
    spec: PolicySpec,
    llc_capacity_full_scale: Option<usize>,
    profile_llc: bool,
    engine: Option<EngineMode>,
    io: IoMixConfig,
}

impl<'a> MixRun<'a> {
    /// Prepares a run of `apps` (one per core) under the inclusive
    /// baseline.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn new(cfg: &'a SimConfig, apps: &[SpecApp]) -> Self {
        assert!(!apps.is_empty(), "a mix needs at least one app");
        MixRun {
            cfg,
            apps: apps.to_vec(),
            spec: PolicySpec::baseline(),
            llc_capacity_full_scale: None,
            profile_llc: false,
            engine: None,
            io: IoMixConfig::none(),
        }
    }

    /// Attaches a device-I/O mix: agents injecting DMA traffic straight
    /// into the LLC (DDIO-style) alongside the cores, plus the
    /// injection-way limit / partition knobs. A [trivial](IoMixConfig::is_trivial)
    /// config leaves the run bit-identical to one built without this
    /// call.
    #[must_use]
    pub fn io(mut self, io: IoMixConfig) -> Self {
        self.io = io;
        self
    }

    /// Pins the execution loop for this run, overriding the
    /// `TLA_ENGINE` process default. Output is byte-identical either
    /// way; the explicit override exists so equivalence tests can run
    /// both loops in one process without touching the environment.
    #[must_use]
    pub fn engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine = Some(mode);
        self
    }

    /// Sets the whole policy configuration at once.
    #[must_use]
    pub fn spec(mut self, spec: &PolicySpec) -> Self {
        self.spec = spec.clone();
        self
    }

    /// Sets just the TLA policy (keeping the inclusive base).
    #[must_use]
    pub fn policy(mut self, tla: TlaPolicy) -> Self {
        self.spec.name = tla.label();
        self.spec.tla = tla;
        self
    }

    /// Sets just the inclusion mode.
    #[must_use]
    pub fn inclusion(mut self, inclusion: InclusionPolicy) -> Self {
        self.spec.inclusion = inclusion;
        self
    }

    /// Overrides the LLC capacity, expressed at full (scale 1) size — e.g.
    /// `8 * 1024 * 1024` for the paper's 8 MB point; the configured scale
    /// divisor is applied automatically.
    #[must_use]
    pub fn llc_capacity_full_scale(mut self, bytes: usize) -> Self {
        self.llc_capacity_full_scale = Some(bytes);
        self
    }

    /// Executes the run to completion.
    pub fn run(self) -> RunResult {
        self.execute(None, None).0
    }

    /// Executes the run with a caller-provided telemetry sink installed:
    /// every hierarchy event is delivered to `sink`, stamped with the
    /// committing instruction (1-based total across cores). Hand in a
    /// [`SharedSink`] clone to read the collector back afterwards.
    pub fn run_with_sink(self, sink: impl TelemetrySink + 'static) -> RunResult {
        self.execute(None, Some(Box::new(sink))).0
    }

    /// Executes the run with telemetry collection: event totals, per-set
    /// eviction/inclusion-victim histograms and — when `window` is set — a
    /// windowed time series closed every `window` committed instructions
    /// (summed across cores).
    ///
    /// Collection spans the whole run including warm-up (the time series
    /// is precisely what makes the warm-up transient visible); the
    /// [`RunResult`] keeps its usual measured-phase semantics.
    pub fn run_instrumented(self, window: Option<u64>) -> (RunResult, RunTelemetry) {
        let (result, telemetry) = self.execute(Some(window), None);
        (result, telemetry.expect("telemetry was requested"))
    }

    /// The hierarchy configuration this run would build.
    fn hierarchy_config(&self) -> HierarchyConfig {
        let scale = self.cfg.scale() as usize;
        let mut hcfg: HierarchyConfig = HierarchyConfig::scaled(self.apps.len(), scale)
            .inclusion_policy(self.spec.inclusion)
            .tla(self.spec.tla)
            .seed(self.cfg.seed_value());
        if let Some(entries) = self.spec.victim_cache {
            hcfg = hcfg.victim_cache(VictimCacheConfig { entries });
        }
        if let Some(policy) = self.spec.llc_replacement {
            hcfg = hcfg.llc_policy(policy);
        }
        if let Some(bytes) = self.llc_capacity_full_scale {
            hcfg = hcfg.llc_capacity(bytes / scale);
        }
        if !self.cfg.prefetch_enabled() {
            hcfg = hcfg.prefetcher(None);
        }
        if !self.io.is_trivial() {
            hcfg = hcfg.io(IoInjectConfig {
                agents: self.io.agents.len(),
                inject_ways: self.io.inject_ways,
                partition: self.io.partition,
            });
        }
        hcfg
    }

    fn execute(
        self,
        telemetry: Option<Option<u64>>,
        extra_sink: Option<Box<dyn TelemetrySink>>,
    ) -> (RunResult, Option<RunTelemetry>) {
        let collect = telemetry.is_some();
        let spec_name = self.spec.name.clone();
        let mut engine = Engine::new(&self, telemetry, extra_sink);
        engine.run_to_completion();
        engine.finish(collect, spec_name)
    }

    /// Label of this run's mix, e.g. `"lib+sje"`.
    pub fn mix_label(&self) -> String {
        let names: Vec<&str> = self.apps.iter().map(|a| a.short_name()).collect();
        names.join("+")
    }

    /// Executes the run with telemetry and packages everything into a
    /// machine-readable [`RunReport`] (config echo, final stats, time
    /// series, histograms) ready for JSON output.
    pub fn run_report(self, window: Option<u64>) -> (RunResult, RunReport) {
        let mix = self.mix_label();
        let config = self.config_echo();
        let spec_name = self.spec.name.clone();
        let apps = self.apps.clone();
        let io_labels = self.io_labels();
        let (result, telemetry) = self.run_instrumented(window);
        let report = RunReport {
            mix,
            policy: spec_name,
            config,
            threads: apps
                .iter()
                .zip(&result.threads)
                .map(|(app, t)| ThreadReport {
                    app: app.short_name().to_string(),
                    instructions: t.instructions,
                    cycles: t.cycles,
                    stats: t.stats,
                })
                .collect(),
            global: result.global,
            event_totals: telemetry.event_totals,
            window_size: telemetry.window_size,
            windows: telemetry.windows,
            set_histogram: Some(telemetry.set_histogram),
            opt_misses: None,
            gap_to_opt: None,
            inclusion_victim_rate: None,
            reuse: None,
            io: io_report(&io_labels, &result),
        };
        (result, report)
    }

    /// [`run_report`](MixRun::run_report) with the analytics layer
    /// attached: the hierarchy emits per-access LLC telemetry into an
    /// online reuse-distance profiler sampling every `sample_every`-th
    /// LLC set, and the report carries the resulting [`ReuseReport`]
    /// plus the measured inclusion-victim rate (the fraction of L2
    /// misses the attribution hooks charged to LLC-caused kills).
    ///
    /// The per-access event stream is observation-only, so the
    /// [`RunResult`] is bit-identical to a plain [`run`](MixRun::run).
    ///
    /// A zero `sample_every` is clamped to 1 by the profiler (see
    /// [`ReuseProfiler::new`]).
    pub fn run_report_analyzed(
        mut self,
        window: Option<u64>,
        sample_every: u32,
    ) -> (RunResult, RunReport) {
        let mix = self.mix_label();
        let config = self.config_echo();
        let spec_name = self.spec.name.clone();
        let apps = self.apps.clone();
        let io_labels = self.io_labels();
        let llc_sets = self.hierarchy_config().llc().sets();
        let profiler = SharedSink::new(ReuseProfiler::new(
            llc_sets,
            sample_every,
            DEFAULT_REUSE_BUCKETS,
        ));
        self.profile_llc = true;
        let (result, telemetry) = self.execute(Some(window), Some(Box::new(profiler.clone())));
        let telemetry = telemetry.expect("telemetry was requested");
        let mut report = build_report(mix, spec_name, config, &apps, &result, telemetry);
        report.reuse = Some(profiler.with(|p| ReuseReport::from(p)));
        report.inclusion_victim_rate = Some(report.measured_victim_rate());
        report.io = io_report(&io_labels, &result);
        (result, report)
    }

    /// Echo of every knob that shaped this run, for report provenance.
    fn config_echo(&self) -> ConfigEcho {
        let mut echo = ConfigEcho::new()
            .with("cores", self.apps.len())
            .with("scale", self.cfg.scale())
            .with("instructions", self.cfg.instruction_quota())
            .with("warmup", self.cfg.warmup_quota())
            .with("seed", self.cfg.seed_value())
            .with("prefetch", self.cfg.prefetch_enabled())
            .with("inclusion", format!("{:?}", self.spec.inclusion))
            .with("tla_policy", self.spec.tla.label());
        if let Some(entries) = self.spec.victim_cache {
            echo.set("victim_cache_entries", entries);
        }
        if let Some(policy) = self.spec.llc_replacement {
            echo.set("llc_replacement", format!("{policy:?}"));
        }
        if let Some(bytes) = self.llc_capacity_full_scale {
            echo.set("llc_capacity_full_scale", bytes);
        }
        if !self.io.is_trivial() {
            echo.set("io", self.io.label());
        }
        echo
    }

    /// Agent labels in spec order, for the report's per-agent breakdown.
    fn io_labels(&self) -> Vec<String> {
        self.io.agents.iter().map(|a| a.label()).collect()
    }

    /// Runs the warm-up phase only and freezes the complete simulator
    /// state into a [`Checkpoint`].
    ///
    /// Resuming the checkpoint (under this or any other policy spec)
    /// continues the run bit-exactly from the freeze point. With
    /// `warmup == 0` the checkpoint captures the pristine initial state.
    pub fn warm_checkpoint(self) -> Checkpoint {
        self.make_checkpoint(None)
    }

    /// Like [`warm_checkpoint`](MixRun::warm_checkpoint), but with
    /// telemetry collectors attached and serialized, so the resumed run
    /// can produce a [`RunReport`] identical to a straight-through
    /// [`run_report`](MixRun::run_report) with the same `window`.
    pub fn warm_checkpoint_instrumented(self, window: Option<u64>) -> Checkpoint {
        self.make_checkpoint(Some(window))
    }

    fn make_checkpoint(self, telemetry: Option<Option<u64>>) -> Checkpoint {
        assert!(
            self.io.is_trivial(),
            "checkpoints do not cover device I/O agents; run I/O mixes straight through"
        );
        let info = CheckpointInfo {
            apps: self.apps.clone(),
            scale: self.cfg.scale(),
            seed: self.cfg.seed_value(),
            warmup: self.cfg.warmup_quota(),
            instructions: self.cfg.instruction_quota(),
            prefetch: self.cfg.prefetch_enabled(),
            llc_capacity_full_scale: self.llc_capacity_full_scale,
            warm_spec: self.spec.name.clone(),
            total_instr: 0,
            instrumented: telemetry.is_some(),
            window: telemetry.flatten(),
            latencies: self.cfg.core_config().latencies,
        };
        let mut engine = Engine::new(&self, telemetry, None);
        engine.run_to_warm();
        let info = CheckpointInfo {
            total_instr: engine.total_instr,
            ..info
        };
        let mut w = SnapshotWriter::new();
        w.begin_section("meta");
        checkpoint::write_meta(&mut w, &info);
        w.end_section();
        w.begin_section("sim");
        engine.write_state(&mut w);
        w.end_section();
        if info.instrumented {
            w.begin_section("telemetry");
            engine.write_telemetry_state(&mut w);
            w.end_section();
        }
        Checkpoint::from_raw(w.finish())
    }

    /// Resumes `checkpoint` under this run's policy spec and executes the
    /// measured phase to completion.
    ///
    /// Everything but the policy spec must match the warming run: same
    /// mix, scale, seed, quotas, prefetch setting and LLC override.
    ///
    /// # Errors
    ///
    /// Fails with [`SnapshotError::Mismatch`] when this run's
    /// configuration differs from the checkpoint's on any pinned axis,
    /// or with a decode error when the bytes are corrupt.
    pub fn resume(self, checkpoint: &Checkpoint) -> Result<RunResult, SnapshotError> {
        Ok(self.resume_inner(checkpoint, None)?.0)
    }

    /// Resumes `checkpoint` and packages the result as a [`RunReport`],
    /// exactly like [`run_report`](MixRun::run_report) would have.
    ///
    /// Requires an instrumented checkpoint whose window matches `window`
    /// — the collectors span the whole run, so they must have been
    /// recording since instruction one.
    ///
    /// # Errors
    ///
    /// Fails like [`resume`](MixRun::resume), and additionally when the
    /// checkpoint carries no telemetry or was recorded with a different
    /// window size.
    pub fn resume_report(
        self,
        checkpoint: &Checkpoint,
        window: Option<u64>,
    ) -> Result<(RunResult, RunReport), SnapshotError> {
        let mix = self.mix_label();
        let config = self.config_echo();
        let spec_name = self.spec.name.clone();
        let apps = self.apps.clone();
        let (result, telemetry) = self.resume_inner(checkpoint, Some(window))?;
        let telemetry = telemetry.expect("telemetry was requested");
        let report = build_report(mix, spec_name, config, &apps, &result, telemetry);
        Ok((result, report))
    }

    /// `want`: `None` resumes plain; `Some(window)` demands telemetry
    /// recorded with exactly that window.
    fn resume_inner(
        self,
        checkpoint: &Checkpoint,
        want: Option<Option<u64>>,
    ) -> Result<(RunResult, Option<RunTelemetry>), SnapshotError> {
        let info = checkpoint.info()?;
        self.check_resume_compatible(&info)?;
        if let Some(window) = want {
            if !info.instrumented {
                return Err(SnapshotError::Mismatch(
                    "a report was requested but the checkpoint was saved without telemetry \
                     (re-save it instrumented)"
                        .into(),
                ));
            }
            if info.window != window {
                return Err(SnapshotError::Mismatch(format!(
                    "checkpoint telemetry uses window {:?}, this resume requested {:?}",
                    info.window, window
                )));
            }
        }
        // An instrumented checkpoint is resumed with matching collectors
        // even for a plain resume: the serialized telemetry state must be
        // consumed, and telemetry is observation-only, so the RunResult
        // is unaffected.
        let engine_telemetry = info.instrumented.then_some(info.window);
        let collect = want.is_some();
        let spec_name = self.spec.name.clone();
        let mut engine = Engine::new(&self, engine_telemetry, None);
        let mut r = SnapshotReader::new(checkpoint.as_bytes())?;
        r.begin_section("meta")?;
        // Re-parsed only to advance the reader past the section.
        let _ = checkpoint::read_meta(&mut r)?;
        r.end_section()?;
        r.begin_section("sim")?;
        engine.read_state(&mut r)?;
        r.end_section()?;
        if info.instrumented {
            r.begin_section("telemetry")?;
            engine.read_telemetry_state(&mut r)?;
            r.end_section()?;
        }
        engine.run_to_completion();
        Ok(engine.finish(collect, spec_name))
    }

    /// Verifies every pinned configuration axis against the checkpoint.
    fn check_resume_compatible(&self, info: &CheckpointInfo) -> Result<(), SnapshotError> {
        if !self.io.is_trivial() {
            return Err(SnapshotError::Mismatch(
                "checkpoints do not cover device I/O agents; run I/O mixes straight through".into(),
            ));
        }
        let mismatch = |what: &str, ck: String, here: String| {
            Err(SnapshotError::Mismatch(format!(
                "checkpoint was warmed with {what} {ck}, this run is configured for {here}"
            )))
        };
        if info.apps != self.apps {
            return mismatch("mix", info.mix_label(), self.mix_label());
        }
        if info.scale != self.cfg.scale() {
            return mismatch(
                "scale",
                info.scale.to_string(),
                self.cfg.scale().to_string(),
            );
        }
        if info.seed != self.cfg.seed_value() {
            return mismatch(
                "seed",
                info.seed.to_string(),
                self.cfg.seed_value().to_string(),
            );
        }
        if info.warmup != self.cfg.warmup_quota() {
            return mismatch(
                "warm-up quota",
                info.warmup.to_string(),
                self.cfg.warmup_quota().to_string(),
            );
        }
        if info.instructions != self.cfg.instruction_quota() {
            return mismatch(
                "instruction quota",
                info.instructions.to_string(),
                self.cfg.instruction_quota().to_string(),
            );
        }
        if info.prefetch != self.cfg.prefetch_enabled() {
            return mismatch(
                "prefetch",
                info.prefetch.to_string(),
                self.cfg.prefetch_enabled().to_string(),
            );
        }
        if info.llc_capacity_full_scale != self.llc_capacity_full_scale {
            return mismatch(
                "LLC capacity override",
                format!("{:?}", info.llc_capacity_full_scale),
                format!("{:?}", self.llc_capacity_full_scale),
            );
        }
        if info.latencies != self.cfg.core_config().latencies {
            return mismatch(
                "latencies",
                format!("{:?}", info.latencies),
                format!("{:?}", self.cfg.core_config().latencies),
            );
        }
        Ok(())
    }
}

/// Packages a finished run plus its telemetry as a [`RunReport`].
fn build_report(
    mix: String,
    policy: String,
    config: ConfigEcho,
    apps: &[SpecApp],
    result: &RunResult,
    telemetry: RunTelemetry,
) -> RunReport {
    RunReport {
        mix,
        policy,
        config,
        threads: apps
            .iter()
            .zip(&result.threads)
            .map(|(app, t)| ThreadReport {
                app: app.short_name().to_string(),
                instructions: t.instructions,
                cycles: t.cycles,
                stats: t.stats,
            })
            .collect(),
        global: result.global,
        event_totals: telemetry.event_totals,
        window_size: telemetry.window_size,
        windows: telemetry.windows,
        set_histogram: Some(telemetry.set_histogram),
        opt_misses: None,
        gap_to_opt: None,
        inclusion_victim_rate: None,
        reuse: None,
        io: None,
    }
}

/// Zips the result's per-agent I/O counters with their spec labels.
/// `None` (and therefore no `"io"` report key) whenever the run had no
/// I/O configured.
fn io_report(labels: &[String], result: &RunResult) -> Option<IoReport> {
    result.io.as_ref().map(|(stats, agents)| IoReport {
        stats: *stats,
        agents: labels.iter().cloned().zip(agents.iter().copied()).collect(),
    })
}

/// The complete state of one in-flight run: the hierarchy, the cores,
/// trace cursors, warm-up bookkeeping and (optionally) the telemetry
/// collectors.
///
/// [`MixRun::execute`] drives it straight to completion; the checkpoint
/// layer instead stops it at the warm-up boundary, serializes it, and
/// later thaws it — possibly under a different policy — to finish the
/// measured phase.
/// One device agent in flight: its deterministic line stream and its
/// own clock. Agents sit in the scheduler heap after the cores (heap
/// index `n_cores + agent`), injecting one line every `period` cycles.
struct IoAgentRuntime {
    trace: BatchedTrace<SyntheticTrace>,
    clock: Cycle,
    period: u64,
}

/// Memory round trips per parallel-engine epoch.
///
/// The epoch length is a *pacing* knob, not a correctness bound (the
/// commit phase re-derives every ordering decision from the scheduler
/// heap; see [`Engine::run_parallel`]): it trades barrier frequency
/// against the pre-generation buffer each epoch pins. Sixty-four
/// round trips of the slowest configured level (~10k cycles at the
/// default 150-cycle memory latency) keeps the per-core buffer in the
/// tens of kilobytes while amortizing the fork/join cost over tens of
/// thousands of committed instructions.
const EPOCH_MEMORY_ROUNDTRIPS: Cycle = 64;

struct Engine {
    hier: CacheHierarchy,
    cores: Vec<CoreModel>,
    traces: Vec<BatchedTrace<SyntheticTrace>>,
    io_agents: Vec<IoAgentRuntime>,
    mode: EngineMode,
    /// Worker cap for the parallel engine's pre-generation phase.
    engine_jobs: usize,
    /// Parallel-engine epoch length in cycles (always ≥ 1).
    epoch_cycles: Cycle,
    /// Core retire width: the upper bound on instructions per cycle,
    /// used to size epoch pre-generation.
    width: usize,
    last_code_line: Vec<Option<LineAddr>>,
    frozen: Vec<Option<ThreadResult>>,
    /// Per-thread snapshot taken when the thread crosses the warm-up
    /// boundary: (cycles, stats). Consumed at the freeze.
    warm_mark: Vec<Option<(u64, PerCoreStats)>>,
    remaining: usize,
    total_instr: u64,
    sched: CoreScheduler,
    warmup: u64,
    quota: u64,
    apps: Vec<SpecApp>,
    counts: SharedSink<CountingSink>,
    histogram: SharedSink<PerSetHistogram>,
    series: Option<WindowedSeries>,
}

impl Engine {
    fn new(
        run: &MixRun<'_>,
        telemetry: Option<Option<u64>>,
        extra_sink: Option<Box<dyn TelemetrySink>>,
    ) -> Engine {
        let n_cores = run.apps.len();
        let scale = run.cfg.scale();
        let hcfg = run.hierarchy_config();
        let mut hier = CacheHierarchy::new(&hcfg);
        hier.set_access_profiling(run.profile_llc);

        // Telemetry collectors. The counting sink and histogram hang off
        // the hierarchy's event stream; the windowed series is driven from
        // the step loop off the cumulative counters.
        let counts = SharedSink::new(CountingSink::default());
        let histogram = SharedSink::new(PerSetHistogram::new(hier.llc_sets()));
        let series = telemetry.and_then(|w| w).map(WindowedSeries::new);
        if telemetry.is_some() || extra_sink.is_some() {
            let mut multi = MultiSink::new();
            if telemetry.is_some() {
                multi = multi.with(counts.clone()).with(histogram.clone());
            }
            if let Some(extra) = extra_sink {
                multi = multi.with(extra);
            }
            hier.set_sink(multi);
        }

        let cores: Vec<CoreModel> = (0..n_cores)
            .map(|_| CoreModel::new(*run.cfg.core_config()))
            .collect();
        let traces: Vec<BatchedTrace<SyntheticTrace>> = run
            .apps
            .iter()
            .enumerate()
            .map(|(i, app)| BatchedTrace::new(app.trace(scale, i as u64, run.cfg.seed_value())))
            .collect();
        let warmup = run.cfg.warmup_quota();
        let quota = warmup + run.cfg.instruction_quota();
        let warm_mark = vec![
            if warmup == 0 {
                Some((0, PerCoreStats::default()))
            } else {
                None
            };
            n_cores
        ];
        // Device agents start one period in, so at cycle 0 the cores win
        // and an empty agent list leaves the heap exactly as before.
        let io_agents: Vec<IoAgentRuntime> = run
            .io
            .agents
            .iter()
            .enumerate()
            .map(|(i, spec)| IoAgentRuntime {
                trace: BatchedTrace::new(spec.stream(i, scale, run.cfg.seed_value())),
                clock: spec.period,
                period: spec.period,
            })
            .collect();
        let latencies = run.cfg.core_config().latencies;
        let epoch_cycles = latencies
            .memory
            .max(latencies.llc)
            .max(1)
            .saturating_mul(EPOCH_MEMORY_ROUNDTRIPS);
        let sched = CoreScheduler::new(
            cores
                .iter()
                .map(CoreModel::now)
                .chain(io_agents.iter().map(|a| a.clock)),
        );
        Engine {
            hier,
            cores,
            traces,
            io_agents,
            mode: run
                .engine
                .map(Ok)
                .unwrap_or_else(EngineMode::from_env)
                .unwrap_or_else(|e| panic!("{e}")),
            engine_jobs: run.cfg.effective_engine_jobs(),
            epoch_cycles,
            width: run.cfg.core_config().width,
            last_code_line: vec![None; n_cores],
            frozen: vec![None; n_cores],
            warm_mark,
            remaining: n_cores,
            total_instr: 0,
            sched,
            warmup,
            quota,
            apps: run.apps.clone(),
            counts,
            histogram,
            series,
        }
    }

    /// Commits one instruction on the core with the smallest local clock,
    /// so shared-LLC access order is timestamp-accurate (the heap picks
    /// exactly like the old linear scan, ties to the lowest core index).
    /// Heap entries past the cores are device agents; cores win clock
    /// ties because they sit at lower indices.
    fn step(&mut self) {
        let i = self.sched.pick();
        self.step_index(i);
        self.sched.reinsert(i, self.clock_of(i));
    }

    /// The local clock behind heap entry `i` (core or device agent).
    fn clock_of(&self, i: usize) -> Cycle {
        if i < self.cores.len() {
            self.cores[i].now()
        } else {
            self.io_agents[i - self.cores.len()].clock
        }
    }

    /// Dispatches heap entry `i` to the matching step body.
    fn step_index(&mut self, i: usize) {
        if i < self.cores.len() {
            self.step_on(i);
        } else {
            self.io_step(i - self.cores.len());
        }
    }

    /// Injects device agent `a`'s next line into the LLC and advances
    /// its clock one period. Injections commit no instruction: the
    /// global instruction clock (and so every event stamp and window
    /// boundary) moves only when a core steps, and agents never warm or
    /// freeze — when the last core freezes, the run ends mid-stream.
    fn io_step(&mut self, a: usize) {
        let instr = self.io_agents[a].trace.next_instruction();
        if let Some(m) = instr.mem {
            self.hier.io_inject(a, m.addr, m.kind.is_write());
        }
        self.io_agents[a].clock += self.io_agents[a].period;
    }

    /// Commits one instruction on core `i` — the whole per-instruction
    /// body except the scheduler bookkeeping, shared by the serial loop
    /// ([`step`](Engine::step)) and the batched run-extraction loop.
    fn step_on(&mut self, i: usize) {
        let core_id = CoreId::new(i);
        let instr = self.traces[i].next_instruction();

        // This iteration commits instruction number `total_instr + 1`;
        // advance the clock first — and unconditionally — so every
        // event the accesses below emit is stamped with the
        // instruction that caused it, sink or no sink.
        self.total_instr += 1;
        self.hier.set_now(self.total_instr);

        let ifetch = if self.last_code_line[i] != Some(instr.code_line) {
            self.last_code_line[i] = Some(instr.code_line);
            Some(
                self.hier
                    .access(core_id, instr.code_line, AccessKind::IFetch),
            )
        } else {
            None
        };
        let mem = instr
            .mem
            .map(|m| (m.kind, self.hier.access(core_id, m.addr, m.kind)));
        self.cores[i].step(ifetch, mem);

        if let Some(series) = self.series.as_mut() {
            // Snapshotting the counters is only useful at a window
            // boundary; between boundaries the whole series cost is
            // this one compare.
            if self.total_instr >= series.next_boundary() {
                series.observe(
                    self.total_instr,
                    self.hier.all_per_core_stats(),
                    self.hier.global_stats(),
                );
            }
        }

        if self.warm_mark[i].is_none() && self.cores[i].retired() >= self.warmup {
            self.warm_mark[i] = Some((self.cores[i].cycles(), *self.hier.per_core_stats(core_id)));
        }
        if self.frozen[i].is_none() && self.cores[i].retired() >= self.quota {
            let (warm_cycles, warm_stats) =
                self.warm_mark[i].take().expect("warm mark precedes freeze");
            self.frozen[i] = Some(ThreadResult {
                app: self.apps[i],
                instructions: self.cores[i].retired() - self.warmup,
                cycles: self.cores[i].cycles() - warm_cycles,
                stats: self.hier.per_core_stats(core_id).since(&warm_stats),
            });
            self.remaining -= 1;
        }
    }

    /// Whether every live thread has crossed the warm-up boundary.
    ///
    /// A fast thread can freeze (retire its whole quota) before a slow one
    /// has even warmed, so "warm" means marked *or* already frozen.
    fn is_warm(&self) -> bool {
        self.warm_mark
            .iter()
            .zip(&self.frozen)
            .all(|(w, f)| w.is_some() || f.is_some())
    }

    fn run_to_warm(&mut self) {
        match self.mode {
            EngineMode::Batched => self.run_batched(true),
            EngineMode::Parallel => self.run_parallel(true),
            EngineMode::Serial => {
                while self.remaining > 0 && !self.is_warm() {
                    self.step();
                }
            }
        }
    }

    fn run_to_completion(&mut self) {
        match self.mode {
            EngineMode::Batched => self.run_batched(false),
            EngineMode::Parallel => self.run_parallel(false),
            EngineMode::Serial => {
                while self.remaining > 0 {
                    self.step();
                }
            }
        }
    }

    /// The batched engine loop: run extraction over the core scheduler.
    ///
    /// Pops the lagging core once and keeps committing on it back-to-back
    /// while its updated `(clock, index)` stays lexicographically below the
    /// rest of the heap ([`CoreScheduler::peek`]'s horizon, captured once —
    /// the other entries cannot change while their cores are not stepping).
    /// Over that span the serial loop would re-pick the same core every
    /// iteration, so the commit order — and therefore every `total_instr`
    /// event stamp, cache access, and stats update — is identical to
    /// [`step`](Engine::step)-ing in a loop. The win is locality: each
    /// run keeps one core's trace buffer, core model, and L1/L2 state hot
    /// instead of round-robining through all of them.
    ///
    /// Warm/freeze checks stay per-instruction (inside
    /// [`step_on`](Engine::step_on) and the loop guards), so stopping
    /// points are also bit-exact.
    fn run_batched(&mut self, until_warm: bool) {
        loop {
            if self.remaining == 0 || (until_warm && self.is_warm()) {
                return;
            }
            let i = self.sched.pick();
            let horizon = self.sched.peek();
            loop {
                self.step_index(i);
                if self.remaining == 0 || (until_warm && self.is_warm()) {
                    self.sched.reinsert(i, self.clock_of(i));
                    return;
                }
                match horizon {
                    Some(h) if (self.clock_of(i), i) < h => {}
                    Some(_) => break,
                    None => {}
                }
            }
            self.sched.reinsert(i, self.clock_of(i));
        }
    }

    /// The parallel engine loop: a pipeline of bounded epochs, each one
    /// a parallel *pre-generation* phase followed by a serial *commit*
    /// phase.
    ///
    /// Per epoch, the cycle horizon is the lagging entry's clock plus
    /// [`EPOCH_MEMORY_ROUNDTRIPS`] slow-level round trips. Pre-generation
    /// fans the trace streams out over [`tla_pool::scoped_map`]: each
    /// worker advances disjoint cores' generators far enough to cover the
    /// epoch ([`BatchedTrace::prefill`]). Generation is a pure function of
    /// each stream's own state — it never observes simulated time or any
    /// shared structure — so running it early, concurrently, or not at
    /// all cannot change a single generated instruction. The commit phase
    /// is exactly [`run_batched`](Engine::run_batched) with every run
    /// additionally clipped at the epoch horizon: commits still always
    /// pick the globally minimal `(clock, index)` heap entry, and an
    /// entry at or past the horizon can never be that minimum while any
    /// entry is below it, so chopping time into epochs pauses the commit
    /// order but never permutes it. Every observable — stats, event
    /// stamps, window boundaries, checkpoint bytes — is therefore
    /// byte-identical to the serial and batched engines for any epoch
    /// length and any worker count.
    fn run_parallel(&mut self, until_warm: bool) {
        loop {
            if self.remaining == 0 || (until_warm && self.is_warm()) {
                return;
            }
            let Some((start, _)) = self.sched.peek() else {
                return;
            };
            let epoch_end = start.saturating_add(self.epoch_cycles);
            self.prefill_epoch(epoch_end);
            if self.commit_epoch(epoch_end, until_warm) {
                return;
            }
        }
    }

    /// Pre-generates every stream that can commit inside the epoch.
    ///
    /// The per-core need is the worst case the commit phase can consume:
    /// the retire width bounds instructions per cycle, plus one refill
    /// batch of slack so the run that *crosses* the horizon still finds
    /// its instructions buffered. A shortfall would only cost speed, not
    /// correctness — [`BatchedTrace`] falls back to inline generation —
    /// but the bound makes one never happen.
    fn prefill_epoch(&mut self, epoch_end: Cycle) {
        let width = self.width as u64;
        let core_clocks: Vec<Cycle> = self.cores.iter().map(CoreModel::now).collect();
        let mut items: Vec<(&mut BatchedTrace<SyntheticTrace>, usize)> = self
            .traces
            .iter_mut()
            .zip(&core_clocks)
            .filter(|&(_, &clock)| clock < epoch_end)
            .map(|(trace, &clock)| {
                let need = (epoch_end - clock).saturating_mul(width) as usize
                    + tla_workloads::DEFAULT_BATCH;
                (trace, need)
            })
            .collect();
        // Device agents inject one line per period, so their need is the
        // period count to the horizon (plus the crossing injection).
        for agent in &mut self.io_agents {
            if agent.clock < epoch_end {
                let need = ((epoch_end - agent.clock) / agent.period + 2) as usize;
                items.push((&mut agent.trace, need));
            }
        }
        tla_pool::scoped_map(self.engine_jobs, items, |(trace, need)| {
            trace.prefill(need);
        });
    }

    /// Commits until every heap entry has reached the epoch horizon (or
    /// the run finished — the `true` return). Identical to
    /// [`run_batched`](Engine::run_batched) except each extracted run is
    /// also clipped at `epoch_end`.
    fn commit_epoch(&mut self, epoch_end: Cycle, until_warm: bool) -> bool {
        loop {
            if self.remaining == 0 || (until_warm && self.is_warm()) {
                return true;
            }
            match self.sched.peek() {
                Some((clock, _)) if clock < epoch_end => {}
                _ => return false,
            }
            let i = self.sched.pick();
            let horizon = self.sched.peek();
            loop {
                self.step_index(i);
                if self.remaining == 0 || (until_warm && self.is_warm()) {
                    self.sched.reinsert(i, self.clock_of(i));
                    return true;
                }
                if self.clock_of(i) >= epoch_end {
                    break;
                }
                match horizon {
                    Some(h) if (self.clock_of(i), i) < h => {}
                    Some(_) => break,
                    None => {}
                }
            }
            self.sched.reinsert(i, self.clock_of(i));
        }
    }

    fn finish(mut self, collect: bool, spec_name: String) -> (RunResult, Option<RunTelemetry>) {
        let collected = collect.then(|| {
            if let Some(series) = self.series.as_mut() {
                series.finish(
                    self.total_instr,
                    self.hier.all_per_core_stats(),
                    self.hier.global_stats(),
                );
            }
            self.hier.take_sink();
            RunTelemetry {
                window_size: self.series.as_ref().map(WindowedSeries::window_size),
                windows: self
                    .series
                    .take()
                    .map(WindowedSeries::take)
                    .unwrap_or_default(),
                set_histogram: self.histogram.with(|h| SetHistogramReport::from(h)),
                event_totals: self.counts.with(CountingSink::nonzero),
            }
        });

        let io = self
            .hier
            .io_stats()
            .map(|s| (*s, self.hier.io_agent_stats().unwrap_or(&[]).to_vec()));
        let result = RunResult {
            threads: self
                .frozen
                .into_iter()
                .map(|t| t.expect("all frozen"))
                .collect(),
            global: *self.hier.global_stats(),
            io,
            spec_name,
        };
        (result, collected)
    }

    /// Serializes the telemetry collectors (only meaningful when the
    /// engine was built instrumented).
    fn write_telemetry_state(&self, w: &mut SnapshotWriter) {
        self.counts.with(|c| c.write_state(w));
        self.histogram.with(|h| h.write_state(w));
        w.write_bool(self.series.is_some());
        if let Some(series) = self.series.as_ref() {
            series.write_state(w);
        }
    }

    fn read_telemetry_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.counts.with_mut(|c| c.read_state(r))?;
        self.histogram.with_mut(|h| h.read_state(r))?;
        let has_series = r.read_bool()?;
        match (has_series, self.series.as_mut()) {
            (true, Some(series)) => series.read_state(r)?,
            (false, None) => {}
            (true, None) => {
                return Err(SnapshotError::Mismatch(
                    "checkpoint telemetry has a time series, this run requested none".into(),
                ))
            }
            (false, Some(_)) => {
                return Err(SnapshotError::Mismatch(
                    "checkpoint telemetry has no time series, this run requested one".into(),
                ))
            }
        }
        Ok(())
    }
}

fn read_per_core_stats(r: &mut SnapshotReader<'_>) -> Result<PerCoreStats, SnapshotError> {
    let mut stats = PerCoreStats::default();
    stats.read_state(r)?;
    Ok(stats)
}

/// Checkpoint coverage: hierarchy, cores, trace cursors, instruction-
/// fetch dedup state, freeze/warm-mark bookkeeping and the global
/// instruction clock. The scheduler heap is rebuilt from the per-core
/// clocks; `remaining` is derived from the frozen count.
impl Snapshot for Engine {
    fn write_state(&self, w: &mut SnapshotWriter) {
        self.hier.write_state(w);
        for core in &self.cores {
            core.write_state(w);
        }
        for trace in &self.traces {
            trace.write_state(w);
        }
        for line in &self.last_code_line {
            w.write_bool(line.is_some());
            if let Some(line) = line {
                w.write_u64(line.raw());
            }
        }
        for thread in &self.frozen {
            w.write_bool(thread.is_some());
            if let Some(t) = thread {
                w.write_u64(t.instructions);
                w.write_u64(t.cycles);
                t.stats.write_state(w);
            }
        }
        for mark in &self.warm_mark {
            w.write_bool(mark.is_some());
            if let Some((cycles, stats)) = mark {
                w.write_u64(*cycles);
                stats.write_state(w);
            }
        }
        w.write_u64(self.total_instr);
        // Device agents contribute zero bytes when absent, keeping the
        // wire format identical to pre-I/O engines. (Checkpointing
        // currently refuses I/O mixes; the coverage is kept complete so
        // nothing silently truncates if that changes.)
        for a in &self.io_agents {
            a.trace.write_state(w);
            w.write_u64(a.clock);
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.hier.read_state(r)?;
        for core in &mut self.cores {
            core.read_state(r)?;
        }
        for trace in &mut self.traces {
            trace.read_state(r)?;
        }
        for line in &mut self.last_code_line {
            *line = if r.read_bool()? {
                Some(LineAddr::new(r.read_u64()?))
            } else {
                None
            };
        }
        for i in 0..self.frozen.len() {
            self.frozen[i] = if r.read_bool()? {
                Some(ThreadResult {
                    app: self.apps[i],
                    instructions: r.read_u64()?,
                    cycles: r.read_u64()?,
                    stats: read_per_core_stats(r)?,
                })
            } else {
                None
            };
        }
        for mark in &mut self.warm_mark {
            *mark = if r.read_bool()? {
                let cycles = r.read_u64()?;
                let stats = read_per_core_stats(r)?;
                Some((cycles, stats))
            } else {
                None
            };
        }
        self.total_instr = r.read_u64()?;
        for a in &mut self.io_agents {
            a.trace.read_state(r)?;
            a.clock = r.read_u64()?;
        }
        self.remaining = self.frozen.iter().filter(|f| f.is_none()).count();
        self.sched = CoreScheduler::new(
            self.cores
                .iter()
                .map(CoreModel::now)
                .chain(self.io_agents.iter().map(|a| a.clock)),
        );
        Ok(())
    }
}

/// Telemetry collected by [`MixRun::run_instrumented`].
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Window size in instructions, when a time series was requested.
    pub window_size: Option<u64>,
    /// Windowed counter deltas, oldest first (empty without a window).
    pub windows: Vec<Window>,
    /// Per-LLC-set eviction / inclusion-victim histograms.
    pub set_histogram: SetHistogramReport,
    /// Total events per kind over the whole run (kinds that fired).
    pub event_totals: Vec<(EventKind, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_io::IoAgentSpec;

    fn quick() -> SimConfig {
        SimConfig::scaled_down().instructions(20_000)
    }

    #[test]
    fn io_agents_are_deterministic_and_pollute() {
        let cfg = quick().instructions(60_000);
        let mix = [SpecApp::Sjeng];
        let plain = MixRun::new(&cfg, &mix).run();
        let io = IoMixConfig::none().agent(IoAgentSpec::dma().period(2));
        let a = MixRun::new(&cfg, &mix).io(io.clone()).run();
        let b = MixRun::new(&cfg, &mix).io(io).run();
        assert_eq!(a.threads[0].stats, b.threads[0].stats);
        assert_eq!(a.threads[0].cycles, b.threads[0].cycles);
        assert_eq!(a.global, b.global);
        assert_eq!(a.io, b.io);
        let (stats, agents) = a.io.as_ref().expect("io stats present");
        assert!(stats.injections > 0, "the dma agent never injected");
        assert_eq!(agents.len(), 1);
        assert_eq!(agents[0].injections, stats.injections);
        // Leaky DMA is pure pollution: the app must miss more than alone.
        assert!(
            a.threads[0].stats.llc_misses > plain.threads[0].stats.llc_misses,
            "dma pressure did not raise app LLC misses ({} vs {})",
            a.threads[0].stats.llc_misses,
            plain.threads[0].stats.llc_misses
        );
        assert!(plain.io.is_none());
    }

    #[test]
    fn io_serial_and_batched_engines_match() {
        let cfg = quick().warmup(5_000);
        let mix = [SpecApp::Sjeng, SpecApp::Mcf];
        let io = IoMixConfig::none()
            .agent(IoAgentSpec::nic().period(3).lines(256))
            .agent(IoAgentSpec::dma().period(7))
            .inject_ways(2);
        let b = MixRun::new(&cfg, &mix)
            .io(io.clone())
            .engine_mode(EngineMode::Batched)
            .run();
        let s = MixRun::new(&cfg, &mix)
            .io(io)
            .engine_mode(EngineMode::Serial)
            .run();
        for (tb, ts) in b.threads.iter().zip(&s.threads) {
            assert_eq!(tb.cycles, ts.cycles);
            assert_eq!(tb.stats, ts.stats);
        }
        assert_eq!(b.global, s.global);
        assert_eq!(b.io, s.io);
    }

    #[test]
    fn trivial_io_config_is_bit_identical_to_none() {
        let cfg = quick();
        let mix = [SpecApp::Sjeng, SpecApp::Libquantum];
        let (pr, prep) = MixRun::new(&cfg, &mix).run_report(Some(5_000));
        // Zero agents + an unpartitioned way limit is trivial by
        // definition: no hierarchy I/O state, no report key, same bytes.
        let (tr, trep) = MixRun::new(&cfg, &mix)
            .io(IoMixConfig::none().inject_ways(4))
            .run_report(Some(5_000));
        assert!(pr.io.is_none() && tr.io.is_none());
        assert_eq!(prep.to_json_string(), trep.to_json_string());
    }

    #[test]
    fn injection_way_limit_recovers_app_performance() {
        let cfg = quick().instructions(60_000);
        let mix = [SpecApp::Sjeng];
        let agent = IoAgentSpec::dma().period(2);
        let unlimited = MixRun::new(&cfg, &mix)
            .io(IoMixConfig::none().agent(agent))
            .run();
        let limited = MixRun::new(&cfg, &mix)
            .io(IoMixConfig::none().agent(agent).inject_ways(2))
            .run();
        assert!(
            limited.threads[0].stats.llc_misses < unlimited.threads[0].stats.llc_misses,
            "a 2-way injection limit should confine DMA pollution ({} vs {})",
            limited.threads[0].stats.llc_misses,
            unlimited.threads[0].stats.llc_misses
        );
    }

    #[test]
    fn io_mix_refuses_resume() {
        let cfg = quick().warmup(1_000);
        let ck = MixRun::new(&cfg, &[SpecApp::Sjeng]).warm_checkpoint();
        let err = MixRun::new(&cfg, &[SpecApp::Sjeng])
            .io(IoMixConfig::none().agent(IoAgentSpec::dma()))
            .resume(&ck)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)));
    }

    #[test]
    #[should_panic(expected = "checkpoints do not cover device I/O agents")]
    fn io_mix_refuses_warm_checkpoint() {
        let cfg = quick().warmup(1_000);
        let _ = MixRun::new(&cfg, &[SpecApp::Sjeng])
            .io(IoMixConfig::none().agent(IoAgentSpec::dma()))
            .warm_checkpoint();
    }

    #[test]
    fn single_core_run_completes() {
        let cfg = quick();
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng]).run();
        assert_eq!(r.threads.len(), 1);
        let t = &r.threads[0];
        assert_eq!(t.instructions, 20_000);
        assert!(t.ipc() > 0.0 && t.ipc() <= 4.0);
        assert!(t.cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = quick();
        let a = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum]).run();
        let b = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum]).run();
        assert_eq!(a.threads[0].cycles, b.threads[0].cycles);
        assert_eq!(a.threads[1].stats, b.threads[1].stats);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn thrasher_has_lower_ipc_than_ccf_app() {
        let cfg = quick();
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum]).run();
        let sje = r.threads[0].ipc();
        let lib = r.threads[1].ipc();
        assert!(sje > lib, "sjeng {sje} should outrun libquantum {lib}");
    }

    #[test]
    fn throughput_sums_ipcs() {
        let cfg = quick();
        let r = MixRun::new(&cfg, &[SpecApp::DealII, SpecApp::DealII]).run();
        let sum = r.threads[0].ipc() + r.threads[1].ipc();
        assert!((r.throughput() - sum).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_and_fairness_bounds() {
        let cfg = quick();
        let alone = MixRun::new(&cfg, &[SpecApp::Sjeng]).run().threads[0].ipc();
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Sjeng]).run();
        let ws = r.weighted_speedup(&[alone, alone]);
        assert!(ws > 0.0 && ws <= 2.2, "ws = {ws}");
        let hf = r.hmean_fairness(&[alone, alone]);
        assert!(hf > 0.0 && hf <= 1.2, "hf = {hf}");
    }

    #[test]
    fn llc_capacity_override_shrinks_cache() {
        // Needs enough instructions for calculix's LLC-sized loop to wrap
        // (capacity misses only appear after the first lap).
        let cfg = quick().instructions(300_000);
        // 1 MB (full-scale) LLC vs 8 MB: the smaller LLC must miss more for
        // an LLC-fitting app.
        let small = MixRun::new(&cfg, &[SpecApp::Calculix])
            .llc_capacity_full_scale(1024 * 1024)
            .run();
        let big = MixRun::new(&cfg, &[SpecApp::Calculix])
            .llc_capacity_full_scale(8 * 1024 * 1024)
            .run();
        assert!(small.llc_misses() > big.llc_misses());
    }

    #[test]
    fn policy_spec_plumbs_through() {
        // Long enough for mcf's streaming to fill the LLC and force
        // evictions (QBS only acts once victims must be chosen).
        let cfg = quick().instructions(150_000);
        let r = MixRun::new(&cfg, &[SpecApp::Povray, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run();
        assert_eq!(r.spec_name, "QBS");
        assert!(r.global.qbs_queries > 0);
        let r = MixRun::new(&cfg, &[SpecApp::Povray, SpecApp::Mcf])
            .spec(&PolicySpec::non_inclusive())
            .run();
        assert_eq!(r.global.back_invalidates, 0);
        assert_eq!(r.inclusion_victims(), 0);
    }

    #[test]
    fn prefetch_toggle_changes_traffic() {
        let on = MixRun::new(&quick(), &[SpecApp::Libquantum]).run();
        let cfg_off = quick().prefetch(false);
        let off = MixRun::new(&cfg_off, &[SpecApp::Libquantum]).run();
        assert!(on.global.prefetches > 0);
        assert_eq!(off.global.prefetches, 0);
        // Streaming benefits from the stream prefetcher.
        assert!(on.threads[0].ipc() > off.threads[0].ipc());
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        // dealII's working set fits its L1: with warm-up the measured LLC
        // MPKI is ~0; without it the cold fills dominate.
        let cold = MixRun::new(&quick(), &[SpecApp::DealII]).run();
        let cfg = quick().warmup(60_000);
        let warm = MixRun::new(&cfg, &[SpecApp::DealII]).run();
        assert!(warm.threads[0].llc_mpki() < cold.threads[0].llc_mpki());
        assert_eq!(warm.threads[0].instructions, 20_000);
    }

    #[test]
    fn warmup_preserves_determinism() {
        let cfg = quick().warmup(30_000);
        let a = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Wrf]).run();
        let b = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Wrf]).run();
        assert_eq!(a.threads[0].stats, b.threads[0].stats);
        assert_eq!(a.threads[1].cycles, b.threads[1].cycles);
    }

    #[test]
    fn batched_engine_emits_monotonic_event_stream() {
        use tla_telemetry::OrderCheckSink;
        // Run extraction reorders nothing: the global `instr` stamps on the
        // event stream stay non-decreasing (the sink panics otherwise).
        let cfg = quick().warmup(5_000);
        let shared = SharedSink::new(OrderCheckSink::new());
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .engine_mode(EngineMode::Batched)
            .run_with_sink(shared.clone());
        assert_eq!(r.threads.len(), 2);
        assert!(shared.with(|s| s.seen()) > 0, "no events reached the sink");
    }

    #[test]
    fn batched_engine_matches_serial_engine_exactly() {
        // A 3-core mix with warm-up exercises run extraction across freeze
        // and warm boundaries; every observable must be bit-identical.
        let cfg = quick().warmup(10_000);
        let mix = [SpecApp::Sjeng, SpecApp::Mcf, SpecApp::Libquantum];
        let b = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Batched)
            .run();
        let s = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Serial)
            .run();
        for (tb, ts) in b.threads.iter().zip(&s.threads) {
            assert_eq!(tb.instructions, ts.instructions);
            assert_eq!(tb.cycles, ts.cycles);
            assert_eq!(tb.stats, ts.stats);
        }
        assert_eq!(b.global, s.global);

        // Checkpoints too: the batched trace buffer must leave no trace in
        // the wire bytes.
        let cb = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Batched)
            .warm_checkpoint();
        let cs = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Serial)
            .warm_checkpoint();
        assert_eq!(
            cb.as_bytes(),
            cs.as_bytes(),
            "engine mode leaked into checkpoint bytes"
        );

        // Cross-resume: each engine finishes the other's checkpoint.
        let rb = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Batched)
            .resume(&cs)
            .unwrap();
        let rs = MixRun::new(&cfg, &mix)
            .engine_mode(EngineMode::Serial)
            .resume(&cb)
            .unwrap();
        assert_eq!(rb.global, rs.global);
        assert_eq!(rb.threads[1].stats, rs.threads[1].stats);
    }

    #[test]
    fn engine_mode_parses_all_modes_and_rejects_typos() {
        assert_eq!(EngineMode::parse("batched"), Ok(EngineMode::Batched));
        assert_eq!(EngineMode::parse("SERIAL"), Ok(EngineMode::Serial));
        assert_eq!(EngineMode::parse("Parallel"), Ok(EngineMode::Parallel));
        // Regression: typos used to fall through to Batched silently, so a
        // misspelled TLA_ENGINE measured the wrong engine without a word.
        let err = EngineMode::parse("seriall").unwrap_err();
        assert!(err.contains("\"seriall\""), "error lacks the value: {err}");
        assert!(
            err.contains("batched, serial, parallel"),
            "error lacks the valid modes: {err}"
        );
        assert_eq!(EngineMode::Parallel.label(), "parallel");
        assert_eq!(EngineMode::Batched.label(), "batched");
        assert_eq!(EngineMode::Serial.label(), "serial");
    }

    #[test]
    fn parallel_engine_matches_serial_engine_exactly() {
        // The whole determinism claim in one test: a 3-core mix with
        // warm-up, run under the epoch pipeline at several worker counts,
        // must reproduce the serial loop bit-for-bit — results,
        // checkpoint bytes, and cross-engine resumes.
        let base = quick().warmup(10_000);
        let mix = [SpecApp::Sjeng, SpecApp::Mcf, SpecApp::Libquantum];
        let s = MixRun::new(&base, &mix)
            .engine_mode(EngineMode::Serial)
            .run();
        let cs = MixRun::new(&base, &mix)
            .engine_mode(EngineMode::Serial)
            .warm_checkpoint();
        for jobs in [1, 2, 4] {
            let cfg = base.clone().engine_jobs(jobs);
            let p = MixRun::new(&cfg, &mix)
                .engine_mode(EngineMode::Parallel)
                .run();
            for (tp, ts) in p.threads.iter().zip(&s.threads) {
                assert_eq!(tp.instructions, ts.instructions, "jobs={jobs}");
                assert_eq!(tp.cycles, ts.cycles, "jobs={jobs}");
                assert_eq!(tp.stats, ts.stats, "jobs={jobs}");
            }
            assert_eq!(p.global, s.global, "jobs={jobs}");

            let cp = MixRun::new(&cfg, &mix)
                .engine_mode(EngineMode::Parallel)
                .warm_checkpoint();
            assert_eq!(
                cp.as_bytes(),
                cs.as_bytes(),
                "jobs={jobs}: pre-generated chunks leaked into checkpoint bytes"
            );

            // Cross-resume both ways: the parallel engine finishes the
            // serial warm image and vice versa.
            let rp = MixRun::new(&cfg, &mix)
                .engine_mode(EngineMode::Parallel)
                .resume(&cs)
                .unwrap();
            let rs = MixRun::new(&base, &mix)
                .engine_mode(EngineMode::Serial)
                .resume(&cp)
                .unwrap();
            assert_eq!(rp.global, rs.global, "jobs={jobs}");
            assert_eq!(rp.threads[1].stats, rs.threads[1].stats, "jobs={jobs}");
        }
    }

    #[test]
    fn io_parallel_engine_matches_batched() {
        // Device agents ride the same epochs: their injections interleave
        // identically whatever the engine.
        let cfg = quick().warmup(5_000).engine_jobs(3);
        let mix = [SpecApp::Sjeng, SpecApp::Mcf];
        let io = IoMixConfig::none()
            .agent(IoAgentSpec::nic().period(3).lines(256))
            .agent(IoAgentSpec::dma().period(7))
            .inject_ways(2);
        let p = MixRun::new(&cfg, &mix)
            .io(io.clone())
            .engine_mode(EngineMode::Parallel)
            .run();
        let b = MixRun::new(&cfg, &mix)
            .io(io)
            .engine_mode(EngineMode::Batched)
            .run();
        for (tp, tb) in p.threads.iter().zip(&b.threads) {
            assert_eq!(tp.cycles, tb.cycles);
            assert_eq!(tp.stats, tb.stats);
        }
        assert_eq!(p.global, b.global);
        assert_eq!(p.io, b.io);
    }

    #[test]
    fn parallel_engine_emits_monotonic_event_stream() {
        use tla_telemetry::OrderCheckSink;
        let cfg = quick().warmup(5_000).engine_jobs(2);
        let shared = SharedSink::new(OrderCheckSink::new());
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .engine_mode(EngineMode::Parallel)
            .run_with_sink(shared.clone());
        assert_eq!(r.threads.len(), 2);
        assert!(shared.with(|s| s.seen()) > 0, "no events reached the sink");
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn empty_mix_panics() {
        let cfg = quick();
        let _ = MixRun::new(&cfg, &[]);
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        // Telemetry must be observation-only: counters identical with the
        // sink installed and without.
        let cfg = quick();
        let plain = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run();
        let (instr, telemetry) = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run_instrumented(Some(5_000));
        assert_eq!(plain.global, instr.global);
        assert_eq!(plain.threads[0].stats, instr.threads[0].stats);
        assert_eq!(plain.threads[1].cycles, instr.threads[1].cycles);
        assert!(
            telemetry.windows.len() >= 2,
            "got {}",
            telemetry.windows.len()
        );
        assert_eq!(telemetry.window_size, Some(5_000));

        // Event timestamps match the committing instruction: the clock is
        // 1-based and advances *before* the accesses, so the first
        // window's events start at instruction 1, not 0 (the historical
        // skew stamped every event one instruction early).
        let log = SharedSink::new(tla_telemetry::EventLog::new(1 << 17));
        let with_sink = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run_with_sink(log.clone());
        assert_eq!(with_sink.global, plain.global);
        log.with(|l| {
            assert_eq!(l.dropped(), 0, "log capacity too small for this quota");
            assert!(!l.is_empty(), "the QBS mix must emit events");
            let stamps: Vec<u64> = l.events().map(|e| e.instr).collect();
            assert!(
                stamps[0] >= 1,
                "first event stamped {} — clock skew is back",
                stamps[0]
            );
            assert!(
                stamps.windows(2).all(|p| p[0] <= p[1]),
                "event timestamps must be non-decreasing"
            );
            let first_window_end = telemetry.windows[0].end_instr;
            assert!(
                stamps[0] <= first_window_end,
                "first event {} past the first window boundary {first_window_end}",
                stamps[0]
            );
        });
    }

    #[test]
    fn run_report_carries_windows_and_histograms() {
        // Long enough for libquantum's streaming to fill the scaled-down
        // LLC and force evictions into the histogram.
        let cfg = quick().instructions(300_000);
        let run =
            MixRun::new(&cfg, &[SpecApp::Libquantum, SpecApp::Sjeng]).spec(&PolicySpec::qbs());
        assert_eq!(run.mix_label(), "lib+sje");
        let (result, report) = run.run_report(Some(50_000));
        assert_eq!(report.mix, "lib+sje");
        assert_eq!(report.policy, "QBS");
        assert_eq!(report.threads.len(), 2);
        assert_eq!(report.global, result.global);
        assert_eq!(report.config.get("cores").and_then(|v| v.as_u64()), Some(2));
        assert!(report.windows.len() >= 2, "got {}", report.windows.len());
        // Windows are deltas: their instruction spans tile the run.
        for pair in report.windows.windows(2) {
            assert_eq!(pair[0].end_instr, pair[1].start_instr);
        }
        let hist = report.set_histogram.as_ref().unwrap();
        assert!(hist.evictions.iter().map(|&e| e as u64).sum::<u64>() > 0);
        // The report survives a JSON round trip byte-for-byte.
        let text = report.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn analyzed_report_carries_reuse_and_victim_rate() {
        let cfg = quick().instructions(100_000);
        let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
        let (result, report) = MixRun::new(&cfg, &mix)
            .spec(&PolicySpec::qbs())
            .run_report_analyzed(Some(20_000), 4);
        // The analytics sinks are observation-only: the run result is
        // bit-identical to a plain run.
        let plain = MixRun::new(&cfg, &mix).spec(&PolicySpec::qbs()).run();
        assert_eq!(result.global, plain.global);
        assert_eq!(result.threads[0].stats, plain.threads[0].stats);

        let reuse = report.reuse.as_ref().expect("analyzed report has reuse");
        assert_eq!(reuse.sample_every, 4);
        assert!(
            reuse.global.total() + reuse.global.cold() > 0,
            "libquantum must drive LLC accesses into the sampled sets"
        );
        assert!(!reuse.per_set.is_empty());
        let rate = report.inclusion_victim_rate.expect("rate attached");
        assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        // The attached rate is exactly the per-thread counters' quotient.
        assert_eq!(rate, report.measured_victim_rate());
        // The analyzed report still round-trips byte-for-byte.
        let text = report.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
    }

    fn warm_cfg() -> SimConfig {
        SimConfig::scaled_down().warmup(30_000).instructions(20_000)
    }

    #[test]
    fn checkpoint_resume_matches_straight_run() {
        // Warm and measure under the same spec: the resumed run must be
        // bit-identical to the straight-through run.
        let cfg = warm_cfg();
        let mix = [SpecApp::Sjeng, SpecApp::Mcf];
        let straight = MixRun::new(&cfg, &mix).spec(&PolicySpec::qbs()).run();
        let ck = MixRun::new(&cfg, &mix)
            .spec(&PolicySpec::qbs())
            .warm_checkpoint();
        let resumed = MixRun::new(&cfg, &mix)
            .spec(&PolicySpec::qbs())
            .resume(&ck)
            .unwrap();
        assert_eq!(resumed.global, straight.global);
        for (a, b) in resumed.threads.iter().zip(&straight.threads) {
            assert_eq!(a.app, b.app);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(resumed.spec_name, "QBS");
    }

    #[test]
    fn instrumented_checkpoint_reports_byte_identically() {
        let cfg = warm_cfg();
        let mix = [SpecApp::Libquantum, SpecApp::Sjeng];
        let (_, straight) = MixRun::new(&cfg, &mix)
            .spec(&PolicySpec::eci())
            .run_report(Some(10_000));
        let ck = MixRun::new(&cfg, &mix)
            .spec(&PolicySpec::eci())
            .warm_checkpoint_instrumented(Some(10_000));
        let info = ck.info().unwrap();
        assert!(info.instrumented);
        assert_eq!(info.window, Some(10_000));
        assert_eq!(info.warm_spec, "ECI");
        assert_eq!(info.mix_label(), "lib+sje");
        let (_, resumed) = MixRun::new(&cfg, &mix)
            .spec(&PolicySpec::eci())
            .resume_report(&ck, Some(10_000))
            .unwrap();
        assert_eq!(resumed.to_json_string(), straight.to_json_string());
    }

    #[test]
    fn plain_resume_from_instrumented_checkpoint_matches() {
        // Telemetry is observation-only, so a plain resume of an
        // instrumented checkpoint still reproduces the plain run.
        let cfg = warm_cfg();
        let mix = [SpecApp::Sjeng, SpecApp::Wrf];
        let plain = MixRun::new(&cfg, &mix).run();
        let ck = MixRun::new(&cfg, &mix).warm_checkpoint_instrumented(Some(5_000));
        let resumed = MixRun::new(&cfg, &mix).resume(&ck).unwrap();
        assert_eq!(resumed.global, plain.global);
        assert_eq!(resumed.threads[0].stats, plain.threads[0].stats);
        assert_eq!(resumed.threads[1].cycles, plain.threads[1].cycles);
    }

    #[test]
    fn checkpoint_fans_out_across_policies() {
        // One baseline-warmed image, measured under every policy: the
        // whole point of the subsystem. Each resume must be deterministic
        // and carry its own spec name.
        let cfg = warm_cfg();
        let mix = [SpecApp::Mcf, SpecApp::Libquantum];
        let ck = MixRun::new(&cfg, &mix).warm_checkpoint();
        for spec in [
            PolicySpec::baseline(),
            PolicySpec::tlh_l1(),
            PolicySpec::eci(),
            PolicySpec::qbs(),
        ] {
            let a = MixRun::new(&cfg, &mix).spec(&spec).resume(&ck).unwrap();
            let b = MixRun::new(&cfg, &mix).spec(&spec).resume(&ck).unwrap();
            assert_eq!(a.spec_name, spec.name);
            assert_eq!(
                a.global, b.global,
                "{}: resume not deterministic",
                spec.name
            );
            assert_eq!(a.threads[0].stats, b.threads[0].stats);
        }
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let cfg = warm_cfg();
        let mix = [SpecApp::Sjeng, SpecApp::Mcf];
        let ck = MixRun::new(&cfg, &mix).warm_checkpoint();

        let expect_mismatch = |err: SnapshotError, needle: &str| match err {
            SnapshotError::Mismatch(msg) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected Mismatch, got {other:?}"),
        };

        let other_mix = [SpecApp::Sjeng, SpecApp::Wrf];
        expect_mismatch(
            MixRun::new(&cfg, &other_mix).resume(&ck).unwrap_err(),
            "mix",
        );
        let other_seed = warm_cfg().seed(99);
        expect_mismatch(
            MixRun::new(&other_seed, &mix).resume(&ck).unwrap_err(),
            "seed",
        );
        let other_quota = warm_cfg().instructions(10_000);
        expect_mismatch(
            MixRun::new(&other_quota, &mix).resume(&ck).unwrap_err(),
            "instruction quota",
        );
        let other_warm = warm_cfg().warmup(10_000);
        expect_mismatch(
            MixRun::new(&other_warm, &mix).resume(&ck).unwrap_err(),
            "warm-up",
        );
        let no_prefetch = warm_cfg().prefetch(false);
        expect_mismatch(
            MixRun::new(&no_prefetch, &mix).resume(&ck).unwrap_err(),
            "prefetch",
        );
        expect_mismatch(
            MixRun::new(&cfg, &mix)
                .llc_capacity_full_scale(1024 * 1024)
                .resume(&ck)
                .unwrap_err(),
            "LLC capacity",
        );
        let other_latency = warm_cfg().core_model(tla_cpu::CoreModelConfig {
            latencies: tla_cpu::Latencies {
                memory: 300,
                ..Default::default()
            },
            ..*cfg.core_config()
        });
        expect_mismatch(
            MixRun::new(&other_latency, &mix).resume(&ck).unwrap_err(),
            "latencies",
        );
        // A plain checkpoint cannot back a report.
        expect_mismatch(
            MixRun::new(&cfg, &mix)
                .resume_report(&ck, Some(5_000))
                .unwrap_err(),
            "telemetry",
        );
    }

    #[test]
    fn checkpoint_survives_serialization_and_rejects_corruption() {
        let cfg = warm_cfg();
        let mix = [SpecApp::Sjeng];
        let ck = MixRun::new(&cfg, &mix).warm_checkpoint();
        let bytes = ck.as_bytes().to_vec();

        // Round trip through raw bytes.
        let back = Checkpoint::from_bytes(bytes.clone()).unwrap();
        assert_eq!(back.info().unwrap(), ck.info().unwrap());
        let direct = MixRun::new(&cfg, &mix).resume(&ck).unwrap();
        let via_bytes = MixRun::new(&cfg, &mix).resume(&back).unwrap();
        assert_eq!(direct.global, via_bytes.global);

        // A flipped payload byte must be caught by the checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(corrupt).unwrap_err(),
            SnapshotError::BadChecksum
        ));

        // Truncation.
        let cut = bytes[..bytes.len() / 2].to_vec();
        assert!(Checkpoint::from_bytes(cut).is_err());
    }
}
