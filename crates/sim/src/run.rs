//! One multiprogrammed simulation run.

use crate::config::SimConfig;
use crate::policyspec::PolicySpec;
use crate::sched::CoreScheduler;
use tla_core::{
    CacheHierarchy, GlobalStats, HierarchyConfig, InclusionPolicy, PerCoreStats, TlaPolicy,
    VictimCacheConfig,
};
use tla_cpu::CoreModel;
use tla_telemetry::{
    ConfigEcho, CountingSink, EventKind, MultiSink, PerSetHistogram, RunReport, SetHistogramReport,
    SharedSink, TelemetrySink, ThreadReport, Window, WindowedSeries,
};
use tla_types::{stats, AccessKind, CoreId, Cycle, LineAddr};
use tla_workloads::{SpecApp, SyntheticTrace, TraceSource};

/// Frozen results of one thread (statistics collected over exactly the
/// configured instruction quota, as in §IV-B).
#[derive(Debug, Clone)]
pub struct ThreadResult {
    /// The benchmark this thread ran.
    pub app: SpecApp,
    /// Instructions committed before the freeze.
    pub instructions: u64,
    /// Cycles elapsed when the quota retired.
    pub cycles: Cycle,
    /// Hierarchy counters attributed to this thread at the freeze point.
    pub stats: PerCoreStats,
}

impl ThreadResult {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Combined L1 misses per 1000 instructions.
    pub fn l1_mpki(&self) -> f64 {
        stats::mpki(self.stats.l1_misses(), self.instructions)
    }

    /// L2 misses per 1000 instructions.
    pub fn l2_mpki(&self) -> f64 {
        stats::mpki(self.stats.l2_misses, self.instructions)
    }

    /// LLC (demand) misses per 1000 instructions.
    pub fn llc_mpki(&self) -> f64 {
        stats::mpki(self.stats.llc_misses, self.instructions)
    }
}

/// The outcome of one [`MixRun`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-thread results in core order.
    pub threads: Vec<ThreadResult>,
    /// Whole-hierarchy message counters over the entire run (including the
    /// post-freeze tail of faster threads).
    pub global: GlobalStats,
    /// The policy configuration that produced this result.
    pub spec_name: String,
}

impl RunResult {
    /// Throughput: the sum of per-thread IPCs (the paper's throughput
    /// metric, footnote 5).
    pub fn throughput(&self) -> f64 {
        self.threads.iter().map(ThreadResult::ipc).sum()
    }

    /// Weighted speedup given each thread's isolated IPC:
    /// `sum(IPC_shared / IPC_alone)`.
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipc` has the wrong length.
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(alone_ipc.len(), self.threads.len());
        self.threads
            .iter()
            .zip(alone_ipc)
            .map(|(t, &a)| if a > 0.0 { t.ipc() / a } else { 0.0 })
            .sum()
    }

    /// Harmonic-mean fairness metric: `N / sum(IPC_alone / IPC_shared)`.
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipc` has the wrong length.
    pub fn hmean_fairness(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(alone_ipc.len(), self.threads.len());
        let inv: f64 = self
            .threads
            .iter()
            .zip(alone_ipc)
            .map(|(t, &a)| {
                let ipc = t.ipc();
                if ipc > 0.0 {
                    a / ipc
                } else {
                    f64::INFINITY
                }
            })
            .sum();
        self.threads.len() as f64 / inv
    }

    /// Total demand LLC misses across threads (within their quotas).
    pub fn llc_misses(&self) -> u64 {
        self.threads.iter().map(|t| t.stats.llc_misses).sum()
    }

    /// Total inclusion victims suffered across threads.
    pub fn inclusion_victims(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| t.stats.inclusion_victims())
            .sum()
    }
}

/// Builder for one simulation run of a workload mix under one policy.
///
/// # Examples
///
/// ```
/// use tla_sim::{MixRun, SimConfig};
/// use tla_core::TlaPolicy;
/// use tla_workloads::SpecApp;
///
/// let cfg = SimConfig::scaled_down().instructions(5_000);
/// let r = MixRun::new(&cfg, &[SpecApp::DealII, SpecApp::Mcf])
///     .policy(TlaPolicy::eci())
///     .run();
/// assert_eq!(r.threads[0].app, SpecApp::DealII);
/// ```
#[derive(Debug, Clone)]
pub struct MixRun<'a> {
    cfg: &'a SimConfig,
    apps: Vec<SpecApp>,
    spec: PolicySpec,
    llc_capacity_full_scale: Option<usize>,
}

impl<'a> MixRun<'a> {
    /// Prepares a run of `apps` (one per core) under the inclusive
    /// baseline.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn new(cfg: &'a SimConfig, apps: &[SpecApp]) -> Self {
        assert!(!apps.is_empty(), "a mix needs at least one app");
        MixRun {
            cfg,
            apps: apps.to_vec(),
            spec: PolicySpec::baseline(),
            llc_capacity_full_scale: None,
        }
    }

    /// Sets the whole policy configuration at once.
    #[must_use]
    pub fn spec(mut self, spec: &PolicySpec) -> Self {
        self.spec = spec.clone();
        self
    }

    /// Sets just the TLA policy (keeping the inclusive base).
    #[must_use]
    pub fn policy(mut self, tla: TlaPolicy) -> Self {
        self.spec.name = tla.label();
        self.spec.tla = tla;
        self
    }

    /// Sets just the inclusion mode.
    #[must_use]
    pub fn inclusion(mut self, inclusion: InclusionPolicy) -> Self {
        self.spec.inclusion = inclusion;
        self
    }

    /// Overrides the LLC capacity, expressed at full (scale 1) size — e.g.
    /// `8 * 1024 * 1024` for the paper's 8 MB point; the configured scale
    /// divisor is applied automatically.
    #[must_use]
    pub fn llc_capacity_full_scale(mut self, bytes: usize) -> Self {
        self.llc_capacity_full_scale = Some(bytes);
        self
    }

    /// Executes the run to completion.
    pub fn run(self) -> RunResult {
        self.execute(None, None).0
    }

    /// Executes the run with a caller-provided telemetry sink installed:
    /// every hierarchy event is delivered to `sink`, stamped with the
    /// committing instruction (1-based total across cores). Hand in a
    /// [`SharedSink`] clone to read the collector back afterwards.
    pub fn run_with_sink(self, sink: impl TelemetrySink + 'static) -> RunResult {
        self.execute(None, Some(Box::new(sink))).0
    }

    /// Executes the run with telemetry collection: event totals, per-set
    /// eviction/inclusion-victim histograms and — when `window` is set — a
    /// windowed time series closed every `window` committed instructions
    /// (summed across cores).
    ///
    /// Collection spans the whole run including warm-up (the time series
    /// is precisely what makes the warm-up transient visible); the
    /// [`RunResult`] keeps its usual measured-phase semantics.
    pub fn run_instrumented(self, window: Option<u64>) -> (RunResult, RunTelemetry) {
        let (result, telemetry) = self.execute(Some(window), None);
        (result, telemetry.expect("telemetry was requested"))
    }

    fn execute(
        self,
        telemetry: Option<Option<u64>>,
        extra_sink: Option<Box<dyn TelemetrySink>>,
    ) -> (RunResult, Option<RunTelemetry>) {
        let n_cores = self.apps.len();
        let scale = self.cfg.scale();
        let mut hcfg: HierarchyConfig = HierarchyConfig::scaled(n_cores, scale as usize)
            .inclusion_policy(self.spec.inclusion)
            .tla(self.spec.tla)
            .seed(self.cfg.seed_value());
        if let Some(entries) = self.spec.victim_cache {
            hcfg = hcfg.victim_cache(VictimCacheConfig { entries });
        }
        if let Some(policy) = self.spec.llc_replacement {
            hcfg = hcfg.llc_policy(policy);
        }
        if let Some(bytes) = self.llc_capacity_full_scale {
            hcfg = hcfg.llc_capacity(bytes / scale as usize);
        }
        if !self.cfg.prefetch_enabled() {
            hcfg = hcfg.prefetcher(None);
        }

        let mut hier = CacheHierarchy::new(&hcfg);

        // Telemetry collectors. The counting sink and histogram hang off
        // the hierarchy's event stream; the windowed series is driven from
        // the loop below off the cumulative counters.
        let counts = SharedSink::new(CountingSink::default());
        let histogram = SharedSink::new(PerSetHistogram::new(hier.llc_sets()));
        let mut series = telemetry.and_then(|w| w).map(WindowedSeries::new);
        if telemetry.is_some() || extra_sink.is_some() {
            let mut multi = MultiSink::new();
            if telemetry.is_some() {
                multi = multi.with(counts.clone()).with(histogram.clone());
            }
            if let Some(extra) = extra_sink {
                multi = multi.with(extra);
            }
            hier.set_sink(multi);
        }

        let mut cores: Vec<CoreModel> = (0..n_cores)
            .map(|_| CoreModel::new(*self.cfg.core_config()))
            .collect();
        let mut traces: Vec<SyntheticTrace> = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, app)| app.trace(scale, i as u64, self.cfg.seed_value()))
            .collect();
        let mut last_code_line: Vec<Option<LineAddr>> = vec![None; n_cores];
        let mut frozen: Vec<Option<ThreadResult>> = vec![None; n_cores];
        let warmup = self.cfg.warmup_quota();
        let quota = warmup + self.cfg.instruction_quota();
        // Per-thread snapshot taken when the thread crosses the warm-up
        // boundary: (cycles, stats).
        let mut warm_mark: Vec<Option<(u64, PerCoreStats)>> = vec![
            if warmup == 0 {
                Some((0, PerCoreStats::default()))
            } else {
                None
            };
            n_cores
        ];
        let mut remaining = n_cores;
        let mut total_instr: u64 = 0;
        let mut sched = CoreScheduler::new(cores.iter().map(CoreModel::now));

        while remaining > 0 {
            // Step the core with the smallest local clock so shared-LLC
            // access order is timestamp-accurate (the heap picks exactly
            // like the old linear scan, ties to the lowest core index).
            let i = sched.pick();
            let core_id = CoreId::new(i);
            let instr = traces[i].next_instruction();

            // This iteration commits instruction number `total_instr + 1`;
            // advance the clock first — and unconditionally — so every
            // event the accesses below emit is stamped with the
            // instruction that caused it, sink or no sink.
            total_instr += 1;
            hier.set_now(total_instr);

            let ifetch = if last_code_line[i] != Some(instr.code_line) {
                last_code_line[i] = Some(instr.code_line);
                Some(hier.access(core_id, instr.code_line, AccessKind::IFetch))
            } else {
                None
            };
            let mem = instr
                .mem
                .map(|m| (m.kind, hier.access(core_id, m.addr, m.kind)));
            cores[i].step(ifetch, mem);
            sched.reinsert(i, cores[i].now());

            if let Some(series) = series.as_mut() {
                // Snapshotting the counters is only useful at a window
                // boundary; between boundaries the whole series cost is
                // this one compare.
                if total_instr >= series.next_boundary() {
                    series.observe(total_instr, hier.all_per_core_stats(), hier.global_stats());
                }
            }

            if warm_mark[i].is_none() && cores[i].retired() >= warmup {
                warm_mark[i] = Some((cores[i].cycles(), *hier.per_core_stats(core_id)));
            }
            if frozen[i].is_none() && cores[i].retired() >= quota {
                let (warm_cycles, warm_stats) =
                    warm_mark[i].take().expect("warm mark precedes freeze");
                frozen[i] = Some(ThreadResult {
                    app: self.apps[i],
                    instructions: cores[i].retired() - warmup,
                    cycles: cores[i].cycles() - warm_cycles,
                    stats: hier.per_core_stats(core_id).since(&warm_stats),
                });
                remaining -= 1;
            }
        }

        let collected = telemetry.map(|_| {
            if let Some(series) = series.as_mut() {
                series.finish(total_instr, hier.all_per_core_stats(), hier.global_stats());
            }
            hier.take_sink();
            RunTelemetry {
                window_size: series.as_ref().map(WindowedSeries::window_size),
                windows: series.map(WindowedSeries::take).unwrap_or_default(),
                set_histogram: histogram.with(|h| SetHistogramReport::from(h)),
                event_totals: counts.with(CountingSink::nonzero),
            }
        });

        let result = RunResult {
            threads: frozen.into_iter().map(|t| t.expect("all frozen")).collect(),
            global: *hier.global_stats(),
            spec_name: self.spec.name.clone(),
        };
        (result, collected)
    }

    /// Label of this run's mix, e.g. `"lib+sje"`.
    pub fn mix_label(&self) -> String {
        let names: Vec<&str> = self.apps.iter().map(|a| a.short_name()).collect();
        names.join("+")
    }

    /// Executes the run with telemetry and packages everything into a
    /// machine-readable [`RunReport`] (config echo, final stats, time
    /// series, histograms) ready for JSON output.
    pub fn run_report(self, window: Option<u64>) -> (RunResult, RunReport) {
        let mix = self.mix_label();
        let config = self.config_echo();
        let spec_name = self.spec.name.clone();
        let apps = self.apps.clone();
        let (result, telemetry) = self.run_instrumented(window);
        let report = RunReport {
            mix,
            policy: spec_name,
            config,
            threads: apps
                .iter()
                .zip(&result.threads)
                .map(|(app, t)| ThreadReport {
                    app: app.short_name().to_string(),
                    instructions: t.instructions,
                    cycles: t.cycles,
                    stats: t.stats,
                })
                .collect(),
            global: result.global,
            event_totals: telemetry.event_totals,
            window_size: telemetry.window_size,
            windows: telemetry.windows,
            set_histogram: Some(telemetry.set_histogram),
        };
        (result, report)
    }

    /// Echo of every knob that shaped this run, for report provenance.
    fn config_echo(&self) -> ConfigEcho {
        let mut echo = ConfigEcho::new()
            .with("cores", self.apps.len())
            .with("scale", self.cfg.scale())
            .with("instructions", self.cfg.instruction_quota())
            .with("warmup", self.cfg.warmup_quota())
            .with("seed", self.cfg.seed_value())
            .with("prefetch", self.cfg.prefetch_enabled())
            .with("inclusion", format!("{:?}", self.spec.inclusion))
            .with("tla_policy", self.spec.tla.label());
        if let Some(entries) = self.spec.victim_cache {
            echo.set("victim_cache_entries", entries);
        }
        if let Some(policy) = self.spec.llc_replacement {
            echo.set("llc_replacement", format!("{policy:?}"));
        }
        if let Some(bytes) = self.llc_capacity_full_scale {
            echo.set("llc_capacity_full_scale", bytes);
        }
        echo
    }
}

/// Telemetry collected by [`MixRun::run_instrumented`].
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Window size in instructions, when a time series was requested.
    pub window_size: Option<u64>,
    /// Windowed counter deltas, oldest first (empty without a window).
    pub windows: Vec<Window>,
    /// Per-LLC-set eviction / inclusion-victim histograms.
    pub set_histogram: SetHistogramReport,
    /// Total events per kind over the whole run (kinds that fired).
    pub event_totals: Vec<(EventKind, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimConfig {
        SimConfig::scaled_down().instructions(20_000)
    }

    #[test]
    fn single_core_run_completes() {
        let cfg = quick();
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng]).run();
        assert_eq!(r.threads.len(), 1);
        let t = &r.threads[0];
        assert_eq!(t.instructions, 20_000);
        assert!(t.ipc() > 0.0 && t.ipc() <= 4.0);
        assert!(t.cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = quick();
        let a = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum]).run();
        let b = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum]).run();
        assert_eq!(a.threads[0].cycles, b.threads[0].cycles);
        assert_eq!(a.threads[1].stats, b.threads[1].stats);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn thrasher_has_lower_ipc_than_ccf_app() {
        let cfg = quick();
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum]).run();
        let sje = r.threads[0].ipc();
        let lib = r.threads[1].ipc();
        assert!(sje > lib, "sjeng {sje} should outrun libquantum {lib}");
    }

    #[test]
    fn throughput_sums_ipcs() {
        let cfg = quick();
        let r = MixRun::new(&cfg, &[SpecApp::DealII, SpecApp::DealII]).run();
        let sum = r.threads[0].ipc() + r.threads[1].ipc();
        assert!((r.throughput() - sum).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_and_fairness_bounds() {
        let cfg = quick();
        let alone = MixRun::new(&cfg, &[SpecApp::Sjeng]).run().threads[0].ipc();
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Sjeng]).run();
        let ws = r.weighted_speedup(&[alone, alone]);
        assert!(ws > 0.0 && ws <= 2.2, "ws = {ws}");
        let hf = r.hmean_fairness(&[alone, alone]);
        assert!(hf > 0.0 && hf <= 1.2, "hf = {hf}");
    }

    #[test]
    fn llc_capacity_override_shrinks_cache() {
        // Needs enough instructions for calculix's LLC-sized loop to wrap
        // (capacity misses only appear after the first lap).
        let cfg = quick().instructions(300_000);
        // 1 MB (full-scale) LLC vs 8 MB: the smaller LLC must miss more for
        // an LLC-fitting app.
        let small = MixRun::new(&cfg, &[SpecApp::Calculix])
            .llc_capacity_full_scale(1024 * 1024)
            .run();
        let big = MixRun::new(&cfg, &[SpecApp::Calculix])
            .llc_capacity_full_scale(8 * 1024 * 1024)
            .run();
        assert!(small.llc_misses() > big.llc_misses());
    }

    #[test]
    fn policy_spec_plumbs_through() {
        // Long enough for mcf's streaming to fill the LLC and force
        // evictions (QBS only acts once victims must be chosen).
        let cfg = quick().instructions(150_000);
        let r = MixRun::new(&cfg, &[SpecApp::Povray, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run();
        assert_eq!(r.spec_name, "QBS");
        assert!(r.global.qbs_queries > 0);
        let r = MixRun::new(&cfg, &[SpecApp::Povray, SpecApp::Mcf])
            .spec(&PolicySpec::non_inclusive())
            .run();
        assert_eq!(r.global.back_invalidates, 0);
        assert_eq!(r.inclusion_victims(), 0);
    }

    #[test]
    fn prefetch_toggle_changes_traffic() {
        let on = MixRun::new(&quick(), &[SpecApp::Libquantum]).run();
        let cfg_off = quick().prefetch(false);
        let off = MixRun::new(&cfg_off, &[SpecApp::Libquantum]).run();
        assert!(on.global.prefetches > 0);
        assert_eq!(off.global.prefetches, 0);
        // Streaming benefits from the stream prefetcher.
        assert!(on.threads[0].ipc() > off.threads[0].ipc());
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        // dealII's working set fits its L1: with warm-up the measured LLC
        // MPKI is ~0; without it the cold fills dominate.
        let cold = MixRun::new(&quick(), &[SpecApp::DealII]).run();
        let cfg = quick().warmup(60_000);
        let warm = MixRun::new(&cfg, &[SpecApp::DealII]).run();
        assert!(warm.threads[0].llc_mpki() < cold.threads[0].llc_mpki());
        assert_eq!(warm.threads[0].instructions, 20_000);
    }

    #[test]
    fn warmup_preserves_determinism() {
        let cfg = quick().warmup(30_000);
        let a = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Wrf]).run();
        let b = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Wrf]).run();
        assert_eq!(a.threads[0].stats, b.threads[0].stats);
        assert_eq!(a.threads[1].cycles, b.threads[1].cycles);
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn empty_mix_panics() {
        let cfg = quick();
        let _ = MixRun::new(&cfg, &[]);
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        // Telemetry must be observation-only: counters identical with the
        // sink installed and without.
        let cfg = quick();
        let plain = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run();
        let (instr, telemetry) = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run_instrumented(Some(5_000));
        assert_eq!(plain.global, instr.global);
        assert_eq!(plain.threads[0].stats, instr.threads[0].stats);
        assert_eq!(plain.threads[1].cycles, instr.threads[1].cycles);
        assert!(
            telemetry.windows.len() >= 2,
            "got {}",
            telemetry.windows.len()
        );
        assert_eq!(telemetry.window_size, Some(5_000));

        // Event timestamps match the committing instruction: the clock is
        // 1-based and advances *before* the accesses, so the first
        // window's events start at instruction 1, not 0 (the historical
        // skew stamped every event one instruction early).
        let log = SharedSink::new(tla_telemetry::EventLog::new(1 << 17));
        let with_sink = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Mcf])
            .spec(&PolicySpec::qbs())
            .run_with_sink(log.clone());
        assert_eq!(with_sink.global, plain.global);
        log.with(|l| {
            assert_eq!(l.dropped(), 0, "log capacity too small for this quota");
            assert!(!l.is_empty(), "the QBS mix must emit events");
            let stamps: Vec<u64> = l.events().map(|e| e.instr).collect();
            assert!(
                stamps[0] >= 1,
                "first event stamped {} — clock skew is back",
                stamps[0]
            );
            assert!(
                stamps.windows(2).all(|p| p[0] <= p[1]),
                "event timestamps must be non-decreasing"
            );
            let first_window_end = telemetry.windows[0].end_instr;
            assert!(
                stamps[0] <= first_window_end,
                "first event {} past the first window boundary {first_window_end}",
                stamps[0]
            );
        });
    }

    #[test]
    fn run_report_carries_windows_and_histograms() {
        // Long enough for libquantum's streaming to fill the scaled-down
        // LLC and force evictions into the histogram.
        let cfg = quick().instructions(300_000);
        let run =
            MixRun::new(&cfg, &[SpecApp::Libquantum, SpecApp::Sjeng]).spec(&PolicySpec::qbs());
        assert_eq!(run.mix_label(), "lib+sje");
        let (result, report) = run.run_report(Some(50_000));
        assert_eq!(report.mix, "lib+sje");
        assert_eq!(report.policy, "QBS");
        assert_eq!(report.threads.len(), 2);
        assert_eq!(report.global, result.global);
        assert_eq!(report.config.get("cores").and_then(|v| v.as_u64()), Some(2));
        assert!(report.windows.len() >= 2, "got {}", report.windows.len());
        // Windows are deltas: their instruction spans tile the run.
        for pair in report.windows.windows(2) {
            assert_eq!(pair[0].end_instr, pair[1].start_instr);
        }
        let hist = report.set_histogram.as_ref().unwrap();
        assert!(hist.evictions.iter().map(|&e| e as u64).sum::<u64>() > 0);
        // The report survives a JSON round trip byte-for-byte.
        let text = report.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
    }
}
