//! Minimal fixed-width table rendering for experiment reports.

use std::fmt;

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use tla_sim::Table;
///
/// let mut t = Table::new(&["mix", "QBS"]);
/// t.add_row(vec!["MIX_10".into(), "1.24".into()]);
/// let s = t.to_string();
/// assert!(s.contains("MIX_10"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width; CLI paths
    /// should prefer [`Table::try_add_row`].
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.try_add_row(cells)
            .expect("row width must match header");
    }

    /// Appends one row, rejecting (and returning) rows whose width does
    /// not match the header width.
    pub fn try_add_row(&mut self, cells: Vec<String>) -> Result<(), TableError> {
        if cells.len() != self.headers.len() {
            return Err(TableError::WidthMismatch {
                expected: self.headers.len(),
                got: cells.len(),
                cells,
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A rejected [`Table`] mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The row had the wrong number of cells; the offending row is
    /// returned so the caller can log or repair it.
    WidthMismatch {
        /// Header width.
        expected: usize,
        /// Offered row width.
        got: usize,
        /// The rejected cells.
        cells: Vec<String>,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::WidthMismatch { expected, got, .. } => {
                write!(f, "table row has {got} cells, header has {expected}")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.add_row(vec!["a".into(), "1.00".into()]);
        t.add_row(vec!["longer".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn try_add_row_rejects_without_panicking() {
        let mut t = Table::new(&["a", "b"]);
        assert!(t.try_add_row(vec!["1".into(), "2".into()]).is_ok());
        let err = t.try_add_row(vec!["only-one".into()]).unwrap_err();
        let TableError::WidthMismatch {
            expected,
            got,
            cells,
        } = &err;
        assert_eq!((*expected, *got), (2, 1));
        assert_eq!(cells, &vec!["only-one".to_string()]);
        assert!(err.to_string().contains("1 cells"));
        assert_eq!(t.len(), 1);
    }
}
