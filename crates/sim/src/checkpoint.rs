//! Warm-state checkpoints: freeze a run at the warm-up boundary, resume
//! it later — bit-exactly — under the same or a different policy.
//!
//! A [`Checkpoint`] is a self-describing TLAS byte stream (see
//! `tla-snapshot`) with three sections:
//!
//! * `meta` — the run configuration the snapshot was taken under: mix,
//!   scale, seed, quotas, prefetch setting, LLC override, plus provenance
//!   (the warming policy's name, the global instruction count at the
//!   freeze, and whether telemetry collectors were attached).
//! * `sim` — the complete simulator state: hierarchy, cores, trace
//!   cursors, warm-up bookkeeping.
//! * `telemetry` — present only for instrumented checkpoints: event
//!   counters, per-set histogram and the windowed time series.
//!
//! Resuming validates `meta` against the receiving [`MixRun`] and refuses
//! anything but the policy spec to differ: the whole point of warm-start
//! fan-out is replaying *one* warm image under several policies, so the
//! policy is deliberately the only free axis.
//!
//! [`MixRun`]: crate::MixRun

use std::path::Path;
use tla_cpu::Latencies;
use tla_snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use tla_workloads::SpecApp;

/// A serialized warm simulation state (the `.tlas` file payload).
///
/// Produced by [`MixRun::warm_checkpoint`] /
/// [`MixRun::warm_checkpoint_instrumented`], consumed by
/// [`MixRun::resume`] / [`MixRun::resume_report`].
///
/// [`MixRun::warm_checkpoint`]: crate::MixRun::warm_checkpoint
/// [`MixRun::warm_checkpoint_instrumented`]: crate::MixRun::warm_checkpoint_instrumented
/// [`MixRun::resume`]: crate::MixRun::resume
/// [`MixRun::resume_report`]: crate::MixRun::resume_report
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    bytes: Vec<u8>,
}

impl Checkpoint {
    /// Wraps bytes the simulator just serialized (already validated by
    /// construction).
    pub(crate) fn from_raw(bytes: Vec<u8>) -> Checkpoint {
        Checkpoint { bytes }
    }

    /// Adopts untrusted bytes, validating the header, checksum and meta
    /// section before accepting them.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Checkpoint, SnapshotError> {
        let ck = Checkpoint { bytes };
        ck.info()?;
        Ok(ck)
    }

    /// The raw TLAS byte stream.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Writes the checkpoint to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, &self.bytes)
    }

    /// Reads and validates a checkpoint from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, SnapshotError> {
        Checkpoint::from_bytes(std::fs::read(path)?)
    }

    /// Parses the meta section: what this checkpoint was warmed on.
    ///
    /// # Errors
    ///
    /// Fails if the bytes are not a valid TLAS stream or the meta section
    /// is malformed.
    pub fn info(&self) -> Result<CheckpointInfo, SnapshotError> {
        let mut r = SnapshotReader::new(&self.bytes)?;
        r.begin_section("meta")?;
        let info = read_meta(&mut r)?;
        r.end_section()?;
        Ok(info)
    }
}

/// The run configuration a [`Checkpoint`] was taken under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The workload mix, one app per core.
    pub apps: Vec<SpecApp>,
    /// Capacity scale divisor of the warming config.
    pub scale: u64,
    /// RNG / trace seed.
    pub seed: u64,
    /// Warm-up quota (instructions per thread before measurement).
    pub warmup: u64,
    /// Measured-phase quota (instructions per thread).
    pub instructions: u64,
    /// Whether the stream prefetcher was enabled.
    pub prefetch: bool,
    /// Full-scale LLC capacity override, if any.
    pub llc_capacity_full_scale: Option<usize>,
    /// Name of the policy spec the warm-up ran under.
    pub warm_spec: String,
    /// Global instruction count (across cores) at the freeze point.
    pub total_instr: u64,
    /// Whether telemetry collectors were attached (and serialized).
    pub instrumented: bool,
    /// Time-series window size of the instrumented run, if any.
    pub window: Option<u64>,
    /// Core-model latency configuration the warm-up ran under. Cycle
    /// counts — and therefore the scheduler interleaving baked into the
    /// warm state — depend on it, so it is pinned like every other
    /// non-policy axis (format v3; v2 images read back the defaults they
    /// were invariably taken under).
    pub latencies: Latencies,
}

impl CheckpointInfo {
    /// The mix label, e.g. `"lib+sje"`.
    pub fn mix_label(&self) -> String {
        let names: Vec<&str> = self.apps.iter().map(|a| a.short_name()).collect();
        names.join("+")
    }
}

pub(crate) fn write_meta(w: &mut SnapshotWriter, info: &CheckpointInfo) {
    w.write_usize(info.apps.len());
    for app in &info.apps {
        w.write_str(app.short_name());
    }
    w.write_u64(info.scale);
    w.write_u64(info.seed);
    w.write_u64(info.warmup);
    w.write_u64(info.instructions);
    w.write_bool(info.prefetch);
    w.write_bool(info.llc_capacity_full_scale.is_some());
    if let Some(bytes) = info.llc_capacity_full_scale {
        w.write_usize(bytes);
    }
    w.write_str(&info.warm_spec);
    w.write_u64(info.total_instr);
    w.write_bool(info.instrumented);
    w.write_bool(info.window.is_some());
    if let Some(window) = info.window {
        w.write_u64(window);
    }
    w.write_u64(info.latencies.l1);
    w.write_u64(info.latencies.l2);
    w.write_u64(info.latencies.llc);
    w.write_u64(info.latencies.memory);
}

pub(crate) fn read_meta(r: &mut SnapshotReader<'_>) -> Result<CheckpointInfo, SnapshotError> {
    let n_apps = r.read_usize()?;
    let mut apps = Vec::with_capacity(n_apps.min(64));
    for _ in 0..n_apps {
        let name = r.read_str()?;
        let app = SpecApp::from_short_name(&name).ok_or_else(|| {
            SnapshotError::Corrupt(format!("unknown benchmark '{name}' in checkpoint mix"))
        })?;
        apps.push(app);
    }
    let scale = r.read_u64()?;
    let seed = r.read_u64()?;
    let warmup = r.read_u64()?;
    let instructions = r.read_u64()?;
    let prefetch = r.read_bool()?;
    let llc_capacity_full_scale = if r.read_bool()? {
        Some(r.read_usize()?)
    } else {
        None
    };
    let warm_spec = r.read_str()?;
    let total_instr = r.read_u64()?;
    let instrumented = r.read_bool()?;
    let window = if r.read_bool()? {
        Some(r.read_u64()?)
    } else {
        None
    };
    // Format v2 predates latency pinning: every v2 image was taken under
    // the default latencies, so substituting them is exact, not a guess.
    let latencies = if r.version() >= 3 {
        Latencies {
            l1: r.read_u64()?,
            l2: r.read_u64()?,
            llc: r.read_u64()?,
            memory: r.read_u64()?,
        }
    } else {
        Latencies::default()
    };
    Ok(CheckpointInfo {
        apps,
        scale,
        seed,
        warmup,
        instructions,
        prefetch,
        llc_capacity_full_scale,
        warm_spec,
        total_instr,
        instrumented,
        window,
        latencies,
    })
}
