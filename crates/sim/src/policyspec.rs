//! Named hierarchy-management configurations — the "bars" of the paper's
//! figures.

use tla_cache::Policy;
use tla_core::{InclusionPolicy, TlaPolicy};

/// A complete management configuration for one run: inclusion mode, TLA
/// policy, optional victim cache and LLC replacement override.
///
/// Constructors cover every configuration the paper evaluates; compose
/// custom ones with the public fields.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// Label used in report tables.
    pub name: String,
    /// Inclusion mode of the LLC.
    pub inclusion: InclusionPolicy,
    /// TLA management policy.
    pub tla: TlaPolicy,
    /// Victim-cache entries behind the LLC, if any.
    pub victim_cache: Option<usize>,
    /// LLC replacement policy override (`None` = the baseline NRU).
    pub llc_replacement: Option<Policy>,
}

impl PolicySpec {
    fn new(name: &str, inclusion: InclusionPolicy, tla: TlaPolicy) -> Self {
        PolicySpec {
            name: name.to_string(),
            inclusion,
            tla,
            victim_cache: None,
            llc_replacement: None,
        }
    }

    /// The inclusive baseline.
    pub fn baseline() -> Self {
        Self::new(
            "Inclusive",
            InclusionPolicy::Inclusive,
            TlaPolicy::baseline(),
        )
    }

    /// Non-inclusive hierarchy (no back-invalidates).
    pub fn non_inclusive() -> Self {
        Self::new(
            "Non-Inclusive",
            InclusionPolicy::NonInclusive,
            TlaPolicy::baseline(),
        )
    }

    /// Exclusive hierarchy (LLC holds only core-cache victims).
    pub fn exclusive() -> Self {
        Self::new(
            "Exclusive",
            InclusionPolicy::Exclusive,
            TlaPolicy::baseline(),
        )
    }

    /// TLH from the L1 instruction cache.
    pub fn tlh_il1() -> Self {
        Self::new("TLH-IL1", InclusionPolicy::Inclusive, TlaPolicy::tlh_il1())
    }

    /// TLH from the L1 data cache.
    pub fn tlh_dl1() -> Self {
        Self::new("TLH-DL1", InclusionPolicy::Inclusive, TlaPolicy::tlh_dl1())
    }

    /// TLH from both L1s (the paper's headline TLH).
    pub fn tlh_l1() -> Self {
        Self::new("TLH-L1", InclusionPolicy::Inclusive, TlaPolicy::tlh_l1())
    }

    /// TLH from the L2.
    pub fn tlh_l2() -> Self {
        Self::new("TLH-L2", InclusionPolicy::Inclusive, TlaPolicy::tlh_l2())
    }

    /// TLH from every level.
    pub fn tlh_l1_l2() -> Self {
        Self::new(
            "TLH-L1-L2",
            InclusionPolicy::Inclusive,
            TlaPolicy::tlh_l1_l2(),
        )
    }

    /// TLH-L1 with only a fraction of hits sending hints.
    pub fn tlh_l1_filtered(probability: f64) -> Self {
        let tla = TlaPolicy::tlh_l1_filtered(probability);
        PolicySpec {
            name: tla.label(),
            ..Self::new("", InclusionPolicy::Inclusive, tla)
        }
    }

    /// Early Core Invalidation.
    pub fn eci() -> Self {
        Self::new("ECI", InclusionPolicy::Inclusive, TlaPolicy::eci())
    }

    /// Query Based Selection (checks L1I+L1D+L2).
    pub fn qbs() -> Self {
        Self::new("QBS", InclusionPolicy::Inclusive, TlaPolicy::qbs())
    }

    /// QBS checking only the L1 instruction caches.
    pub fn qbs_il1() -> Self {
        Self::new("QBS-IL1", InclusionPolicy::Inclusive, TlaPolicy::qbs_il1())
    }

    /// QBS checking only the L1 data caches.
    pub fn qbs_dl1() -> Self {
        Self::new("QBS-DL1", InclusionPolicy::Inclusive, TlaPolicy::qbs_dl1())
    }

    /// QBS checking both L1s.
    pub fn qbs_l1() -> Self {
        Self::new("QBS-L1", InclusionPolicy::Inclusive, TlaPolicy::qbs_l1())
    }

    /// QBS checking only the L2s.
    pub fn qbs_l2() -> Self {
        Self::new("QBS-L2", InclusionPolicy::Inclusive, TlaPolicy::qbs_l2())
    }

    /// QBS with an explicit query limit.
    pub fn qbs_limited(max_queries: usize) -> Self {
        let tla = TlaPolicy::qbs_limited(max_queries);
        PolicySpec {
            name: format!("QBS-q{max_queries}"),
            ..Self::new("", InclusionPolicy::Inclusive, tla)
        }
    }

    /// The "modified QBS" ablation (§V-E footnote 6).
    pub fn qbs_invalidating() -> Self {
        Self::new(
            "QBS-inval",
            InclusionPolicy::Inclusive,
            TlaPolicy::qbs_invalidating(),
        )
    }

    /// Inclusive LLC backed by an `entries`-line victim cache. The paper's
    /// §VI point is 32 entries ([`PolicySpec::victim_cache_32`]); larger
    /// sizes drive the fully-associative sweep in EXPERIMENTS.md, whose
    /// linear probe is what the SIMD set-scan kernels accelerate.
    pub fn victim_cache(entries: usize) -> Self {
        PolicySpec {
            name: format!("VC-{entries}"),
            victim_cache: Some(entries),
            ..Self::baseline()
        }
    }

    /// Inclusive LLC backed by a 32-entry victim cache (§VI comparison).
    pub fn victim_cache_32() -> Self {
        Self::victim_cache(32)
    }

    /// A TLA policy applied on a *non-inclusive* base (Figure 9b).
    pub fn on_non_inclusive(tla: TlaPolicy) -> Self {
        PolicySpec {
            name: format!("NI+{}", tla.label()),
            ..Self::new("", InclusionPolicy::NonInclusive, tla)
        }
    }

    /// Overrides the LLC replacement policy (footnote-4 ablation).
    #[must_use]
    pub fn with_llc_replacement(mut self, policy: Policy) -> Self {
        self.name = format!("{}/{policy}", self.name);
        self.llc_replacement = Some(policy);
        self
    }

    /// The full set of bars in Figure 9a, in the paper's order.
    pub fn figure9_set() -> Vec<PolicySpec> {
        vec![
            Self::tlh_l1(),
            Self::tlh_l2(),
            Self::eci(),
            Self::qbs(),
            Self::non_inclusive(),
            Self::exclusive(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_labels() {
        assert_eq!(PolicySpec::baseline().name, "Inclusive");
        assert_eq!(PolicySpec::qbs().name, "QBS");
        assert_eq!(PolicySpec::qbs_limited(2).name, "QBS-q2");
        assert_eq!(PolicySpec::victim_cache_32().victim_cache, Some(32));
        assert_eq!(PolicySpec::victim_cache_32().name, "VC-32");
        assert_eq!(PolicySpec::victim_cache(128).victim_cache, Some(128));
        assert_eq!(PolicySpec::victim_cache(128).name, "VC-128");
        assert_eq!(
            PolicySpec::on_non_inclusive(TlaPolicy::qbs()).inclusion,
            InclusionPolicy::NonInclusive
        );
        let s = PolicySpec::baseline().with_llc_replacement(Policy::Srrip);
        assert_eq!(s.llc_replacement, Some(Policy::Srrip));
        assert!(s.name.contains("SRRIP"));
    }

    #[test]
    fn figure9_set_order() {
        let set = PolicySpec::figure9_set();
        let names: Vec<&str> = set.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "TLH-L1",
                "TLH-L2",
                "ECI",
                "QBS",
                "Non-Inclusive",
                "Exclusive"
            ]
        );
    }
}
