//! Simulation configuration.

use tla_cpu::CoreModelConfig;

/// Top-level simulation parameters shared by every run of an experiment.
///
/// `scale` divides every cache capacity (and, through
/// [`tla_workloads::SpecApp::params`], every working set) by the same
/// factor, preserving all capacity ratios — the quantity the paper's
/// results depend on — while letting laptop-scale sweeps finish.
///
/// # Examples
///
/// ```
/// use tla_sim::SimConfig;
///
/// let cfg = SimConfig::paper();         // full-size §IV-A hierarchy
/// assert_eq!(cfg.scale(), 1);
/// let fast = SimConfig::scaled_down();  // 1/8-size, same ratios
/// assert_eq!(fast.scale(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    scale: u64,
    instructions: u64,
    warmup: u64,
    core: CoreModelConfig,
    seed: u64,
    prefetch: bool,
    jobs: Option<usize>,
    shard_jobs: Option<usize>,
    engine_jobs: Option<usize>,
}

impl SimConfig {
    /// The paper's full-size configuration (§IV-A) with a default quota of
    /// 1 M instructions per thread (the paper simulates 250 M; raise with
    /// [`SimConfig::instructions`] when time allows).
    pub fn paper() -> Self {
        SimConfig {
            scale: 1,
            instructions: 1_000_000,
            warmup: 0,
            core: CoreModelConfig::default(),
            seed: 0xC0FFEE,
            prefetch: true,
            jobs: None,
            shard_jobs: None,
            engine_jobs: None,
        }
    }

    /// The 1/8-scaled configuration the bench harness defaults to:
    /// 4 KB L1I/D, 32 KB L2, 256 KB LLC — identical ratios, ~8x less work
    /// to exercise the same number of sets.
    pub fn scaled_down() -> Self {
        SimConfig {
            scale: 8,
            ..Self::paper()
        }
    }

    /// Sets the cache scale divisor explicitly (1, 2, 4 or 8).
    #[must_use]
    pub fn with_scale(mut self, scale: u64) -> Self {
        assert!(
            [1, 2, 4, 8].contains(&scale),
            "scale must be 1, 2, 4 or 8 to keep geometries valid"
        );
        self.scale = scale;
        self
    }

    /// Sets the per-thread instruction quota.
    #[must_use]
    pub fn instructions(mut self, n: u64) -> Self {
        assert!(n > 0, "instruction quota must be positive");
        self.instructions = n;
        self
    }

    /// Sets a warm-up phase: each thread first commits this many
    /// instructions with statistics discarded, then the measured quota
    /// starts. Inclusion-victim dynamics only reach steady state once the
    /// slower thread has cycled the LLC a few times; the paper's 250 M
    /// instruction runs amortize warm-up implicitly, shorter runs should
    /// set it explicitly.
    #[must_use]
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Warm-up instructions per thread.
    pub fn warmup_quota(&self) -> u64 {
        self.warmup
    }

    /// Replaces the core timing model configuration.
    #[must_use]
    pub fn core_model(mut self, core: CoreModelConfig) -> Self {
        self.core = core;
        self
    }

    /// Sets the master seed (workload streams and policy randomness derive
    /// from it deterministically).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the L2 stream prefetcher (Table I measures MPKI
    /// without prefetching).
    #[must_use]
    pub fn prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Cache scale divisor.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Per-thread instruction quota.
    pub fn instruction_quota(&self) -> u64 {
        self.instructions
    }

    /// Core timing model configuration.
    pub fn core_config(&self) -> &CoreModelConfig {
        &self.core
    }

    /// Master seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Whether the prefetcher is enabled.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    /// Caps the worker threads the batch experiment helpers
    /// ([`crate::mpki_table`], [`crate::run_mix_suite`], …) may use.
    /// `0` means "use every available core" (the default). A single
    /// [`crate::MixRun`] is always single-threaded; this knob only fans
    /// out *batches* of independent runs, and results are bit-identical
    /// for every value — only wall-clock changes.
    #[must_use]
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = Some(n);
        self
    }

    /// The explicit jobs override, if one was set.
    pub fn jobs_override(&self) -> Option<usize> {
        self.jobs
    }

    /// Worker threads the batch helpers will actually use: the explicit
    /// [`SimConfig::jobs`] override if set (and nonzero), else the
    /// `TLA_JOBS` environment variable, else every available core.
    pub fn effective_jobs(&self) -> usize {
        let requested = self
            .jobs
            .filter(|&n| n > 0)
            .or_else(|| std::env::var("TLA_JOBS").ok().and_then(|v| v.parse().ok()));
        tla_pool::resolve_jobs(requested)
    }

    /// Caps the worker threads used to shard *one* run's set-indexed work
    /// (currently the Belady oracle replay, [`crate::optimal_llc`]) by LLC
    /// set index. `0` means "use every available core"; unset means
    /// serial. Per-set work is order-independent across sets, so results
    /// are bit-identical for every value — only wall-clock changes.
    #[must_use]
    pub fn shard_jobs(mut self, n: usize) -> Self {
        self.shard_jobs = Some(n);
        self
    }

    /// The explicit shard-jobs override, if one was set.
    pub fn shard_jobs_override(&self) -> Option<usize> {
        self.shard_jobs
    }

    /// Worker threads the set-sharded passes will actually use: the
    /// explicit [`SimConfig::shard_jobs`] override if set (`0` meaning
    /// auto-detect), else the `TLA_SHARD_JOBS` environment variable, else
    /// `1` (serial — sharding is opt-in, unlike [`SimConfig::jobs`]).
    pub fn effective_shard_jobs(&self) -> usize {
        match self.shard_jobs.or_else(|| {
            std::env::var("TLA_SHARD_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        }) {
            Some(0) => tla_pool::resolve_jobs(None),
            Some(n) => n,
            None => 1,
        }
    }

    /// Caps the worker threads the parallel timing engine
    /// ([`crate::EngineMode::Parallel`]) uses for its epoch trace
    /// pre-generation phase. `0` means "use every available core" (the
    /// default). Results are bit-identical for every value — only
    /// wall-clock changes.
    #[must_use]
    pub fn engine_jobs(mut self, n: usize) -> Self {
        self.engine_jobs = Some(n);
        self
    }

    /// The explicit engine-jobs override, if one was set.
    pub fn engine_jobs_override(&self) -> Option<usize> {
        self.engine_jobs
    }

    /// Worker threads the parallel engine will actually use: the explicit
    /// [`SimConfig::engine_jobs`] override if set (and nonzero), else the
    /// `TLA_ENGINE_JOBS` environment variable, else every available core.
    pub fn effective_engine_jobs(&self) -> usize {
        let requested = self.engine_jobs.filter(|&n| n > 0).or_else(|| {
            std::env::var("TLA_ENGINE_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        tla_pool::resolve_jobs(requested)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::scaled_down()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(SimConfig::paper().scale(), 1);
        assert_eq!(SimConfig::scaled_down().scale(), 8);
        assert_eq!(SimConfig::default(), SimConfig::scaled_down());
        assert!(SimConfig::paper().prefetch_enabled());
    }

    #[test]
    fn setters() {
        let cfg = SimConfig::paper()
            .with_scale(4)
            .instructions(42)
            .seed(9)
            .prefetch(false);
        assert_eq!(cfg.scale(), 4);
        assert_eq!(cfg.instruction_quota(), 42);
        assert_eq!(cfg.seed_value(), 9);
        assert!(!cfg.prefetch_enabled());
    }

    #[test]
    fn jobs_resolution() {
        // No override: at least one worker, whatever the host offers.
        assert!(SimConfig::paper().effective_jobs() >= 1);
        assert_eq!(SimConfig::paper().jobs_override(), None);
        // Explicit override wins.
        assert_eq!(SimConfig::paper().jobs(3).effective_jobs(), 3);
        // Zero falls back to auto-detection.
        assert!(SimConfig::paper().jobs(0).effective_jobs() >= 1);
    }

    #[test]
    fn shard_jobs_resolution() {
        // Sharding is opt-in: the unset default is serial (the TLA_SHARD_JOBS
        // env fallback cannot be exercised here without racing other tests).
        assert_eq!(SimConfig::paper().shard_jobs_override(), None);
        // Explicit override wins; zero auto-detects.
        assert_eq!(SimConfig::paper().shard_jobs(7).effective_shard_jobs(), 7);
        assert!(SimConfig::paper().shard_jobs(0).effective_shard_jobs() >= 1);
    }

    #[test]
    fn engine_jobs_resolution() {
        // Unset auto-detects (the TLA_ENGINE_JOBS env fallback cannot be
        // exercised here without racing other tests).
        assert_eq!(SimConfig::paper().engine_jobs_override(), None);
        assert!(SimConfig::paper().effective_engine_jobs() >= 1);
        // Explicit override wins; zero auto-detects.
        assert_eq!(SimConfig::paper().engine_jobs(5).effective_engine_jobs(), 5);
        assert!(SimConfig::paper().engine_jobs(0).effective_engine_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bad_scale_panics() {
        let _ = SimConfig::paper().with_scale(3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quota_panics() {
        let _ = SimConfig::paper().instructions(0);
    }
}
