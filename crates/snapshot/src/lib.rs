//! `tla-snapshot` — versioned binary checkpoint format for the TLA simulator.
//!
//! The paper's methodology warms the hierarchy before measuring, and every
//! policy comparison replays the *same* warm state under a different LLC
//! policy. This crate provides the wire format (`TLAS`) and the [`Snapshot`]
//! trait that let the simulator freeze that warm state once and resume it
//! any number of times, bit-exactly.
//!
//! # Format
//!
//! All integers are little-endian. A snapshot is:
//!
//! ```text
//! magic    4 bytes   b"TLAS"
//! version  1 byte    FORMAT_VERSION
//! sections ...       name-tagged, length-prefixed chunks
//! checksum 8 bytes   FNV-1a over everything above
//! ```
//!
//! Each section is `name_len: u8`, `name` bytes, `body_len: u64`, then the
//! body. Sections nest freely; readers must consume a section exactly — a
//! short or long read is reported as corruption, never silently tolerated.
//!
//! # Invariants
//!
//! Implementors of [`Snapshot`] overlay state onto an *already constructed*
//! value of the same configuration: geometry, policy tables and other
//! config-derived fields are rebuilt from the run configuration, not
//! serialized. `read_state` must verify that the serialized state fits the
//! receiver (lengths, presence flags) and fail with
//! [`SnapshotError::Mismatch`] otherwise.

use std::fmt;
use tla_rng::SmallRng;
use tla_types::{GlobalStats, IoAgentStats, IoStats, PerCoreStats};

/// Magic bytes identifying a TLAS snapshot.
pub const MAGIC: [u8; 4] = *b"TLAS";

/// Current format version. Bump on any wire-incompatible change.
///
/// Version history:
/// * 1 — initial format; per-set bitmaps are a single `u64`.
/// * 2 — multi-word set bitmaps (caches wider than 64 ways serialize
///   `ways.div_ceil(64)` words per set). For ≤ 64 ways the byte layout is
///   unchanged, so version-1 images decode through the same readers.
/// * 3 — checkpoint meta carries the core-model latency configuration
///   (four trailing `u64`s). Readers of older images substitute the
///   default latencies; see [`SnapshotReader::version`] for the gating
///   pattern.
pub const FORMAT_VERSION: u8 = 3;

/// Oldest format version this build still reads. Every version in
/// `MIN_SUPPORTED_VERSION..=FORMAT_VERSION` is accepted by
/// [`SnapshotReader::new`]; new snapshots are always written at
/// [`FORMAT_VERSION`].
pub const MIN_SUPPORTED_VERSION: u8 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Everything that can go wrong reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The first four bytes are not `TLAS`.
    BadMagic,
    /// The format version is one this build cannot read.
    BadVersion {
        /// Version byte found in the snapshot.
        found: u8,
        /// Newest version this build reads (and the one it writes).
        expected: u8,
    },
    /// The trailing checksum does not match the payload.
    BadChecksum,
    /// The snapshot ended before the expected data did.
    Truncated,
    /// The bytes are structurally invalid (bad section name, bad tag, ...).
    Corrupt(String),
    /// The snapshot is valid but does not fit the receiving configuration
    /// (different geometry, seed, workload, ...).
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => f.write_str("not a TLAS snapshot (bad magic)"),
            SnapshotError::BadVersion { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads versions \
                 {MIN_SUPPORTED_VERSION}..={expected})"
            ),
            SnapshotError::BadChecksum => {
                f.write_str("snapshot checksum mismatch (file is corrupt)")
            }
            SnapshotError::Truncated => f.write_str("snapshot is truncated"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::Mismatch(msg) => {
                write!(f, "snapshot does not match this configuration: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Serializer building a TLAS byte stream.
///
/// Create one, write sections and primitives, then call [`finish`] to get
/// the checksummed byte vector.
///
/// [`finish`]: SnapshotWriter::finish
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    open_sections: Vec<usize>,
}

impl SnapshotWriter {
    /// Start a new snapshot: writes the magic and version header.
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.push(FORMAT_VERSION);
        SnapshotWriter {
            buf,
            open_sections: Vec::new(),
        }
    }

    /// Open a named, length-prefixed section. Must be paired with
    /// [`end_section`](SnapshotWriter::end_section).
    pub fn begin_section(&mut self, name: &str) {
        assert!(
            name.len() <= u8::MAX as usize,
            "section name too long: {name}"
        );
        self.buf.push(name.len() as u8);
        self.buf.extend_from_slice(name.as_bytes());
        // Placeholder for the body length, backpatched in end_section.
        self.open_sections.push(self.buf.len());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Close the most recently opened section, backpatching its length.
    pub fn end_section(&mut self) {
        let at = self
            .open_sections
            .pop()
            .expect("end_section without begin_section");
        let body_len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Write one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0/1).
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian i64.
    pub fn write_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a usize as a u64.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Write an f64 as its little-endian bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed byte string.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }

    /// Write a length-prefixed slice of u64 values.
    pub fn write_u64_slice(&mut self, v: &[u64]) {
        self.write_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append the trailing checksum and return the finished byte stream.
    /// Panics if any section is still open.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        assert!(
            self.open_sections.is_empty(),
            "finish with {} unclosed section(s)",
            self.open_sections.len()
        );
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Deserializer over a TLAS byte stream.
///
/// The constructor validates magic, version and trailing checksum up front;
/// every read after that is bounds-checked and section-scoped.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Exclusive end positions of currently open sections, innermost last.
    section_ends: Vec<usize>,
    /// Format version from the header, for version-gated field reads.
    version: u8,
}

impl<'a> SnapshotReader<'a> {
    /// Validate the header and checksum and position the reader at the
    /// first section.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        // magic + version + checksum is the minimum possible snapshot.
        if bytes.len() < 4 + 1 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = bytes[4];
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let body_end = bytes.len() - 8;
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[body_end..]);
        if fnv1a(&bytes[..body_end]) != u64::from_le_bytes(sum) {
            return Err(SnapshotError::BadChecksum);
        }
        Ok(SnapshotReader {
            buf: &bytes[..body_end],
            pos: 5,
            section_ends: Vec::new(),
            version,
        })
    }

    /// The format version stamped in the snapshot header. Decoders use
    /// this to gate reads of fields newer formats appended (the section
    /// length check still verifies exact consumption either way).
    pub fn version(&self) -> u8 {
        self.version
    }

    fn limit(&self) -> usize {
        self.section_ends.last().copied().unwrap_or(self.buf.len())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.limit() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Open a section and verify its name matches `name`.
    pub fn begin_section(&mut self, name: &str) -> Result<(), SnapshotError> {
        let n = self.read_u8()? as usize;
        let found = self.take(n)?;
        if found != name.as_bytes() {
            return Err(SnapshotError::Corrupt(format!(
                "expected section '{name}', found '{}'",
                String::from_utf8_lossy(found)
            )));
        }
        let body_len = self.read_u64()? as usize;
        let end = self
            .pos
            .checked_add(body_len)
            .ok_or(SnapshotError::Truncated)?;
        if end > self.limit() {
            return Err(SnapshotError::Truncated);
        }
        self.section_ends.push(end);
        Ok(())
    }

    /// Close the innermost section, verifying it was consumed exactly.
    pub fn end_section(&mut self) -> Result<(), SnapshotError> {
        let end = self
            .section_ends
            .pop()
            .ok_or_else(|| SnapshotError::Corrupt("end_section without begin_section".into()))?;
        if self.pos != end {
            return Err(SnapshotError::Corrupt(format!(
                "section length mismatch: {} byte(s) left unread",
                end - self.pos
            )));
        }
        Ok(())
    }

    /// True when the innermost open section (or the whole stream) has been
    /// fully consumed.
    #[must_use]
    pub fn at_section_end(&self) -> bool {
        self.pos == self.limit()
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool written by [`SnapshotWriter::write_bool`].
    pub fn read_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a little-endian u32.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian u64.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian i64.
    pub fn read_i64(&mut self) -> Result<i64, SnapshotError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(b))
    }

    /// Read a usize written by [`SnapshotWriter::write_usize`].
    pub fn read_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.read_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("value {v} does not fit usize")))
    }

    /// Read an f64 written by [`SnapshotWriter::write_f64`].
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.read_usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String, SnapshotError> {
        let b = self.read_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapshotError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Read a length-prefixed slice of u64 values.
    pub fn read_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.read_usize()?;
        let mut v = Vec::with_capacity(n.min(self.limit() - self.pos));
        for _ in 0..n {
            v.push(self.read_u64()?);
        }
        Ok(v)
    }

    /// Read a u64 slice whose length must equal `expected`, overwriting
    /// `dst`. Length disagreement is a [`SnapshotError::Mismatch`] tagged
    /// with `what`.
    pub fn read_u64_slice_into(
        &mut self,
        dst: &mut [u64],
        what: &str,
    ) -> Result<(), SnapshotError> {
        let n = self.read_usize()?;
        if n != dst.len() {
            return Err(SnapshotError::Mismatch(format!(
                "{what}: snapshot has {n} entries, this configuration has {}",
                dst.len()
            )));
        }
        for slot in dst.iter_mut() {
            *slot = self.read_u64()?;
        }
        Ok(())
    }
}

/// Bidirectional state capture for one simulator component.
///
/// `write_state` serializes the *mutable* state; `read_state` overlays it
/// onto a value that was freshly constructed with the same configuration.
/// Implementations must be exact inverses: a write/read round-trip through
/// a same-config value must reproduce bit-identical behaviour.
pub trait Snapshot {
    /// Serialize mutable state into `w`.
    fn write_state(&self, w: &mut SnapshotWriter);
    /// Overlay serialized state from `r`, verifying it fits `self`.
    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError>;
}

impl Snapshot for SmallRng {
    fn write_state(&self, w: &mut SnapshotWriter) {
        for word in self.state() {
            w.write_u64(word);
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.read_u64()?;
        }
        *self = SmallRng::from_state(s);
        Ok(())
    }
}

impl Snapshot for PerCoreStats {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.l1i_accesses);
        w.write_u64(self.l1i_misses);
        w.write_u64(self.l1d_accesses);
        w.write_u64(self.l1d_misses);
        w.write_u64(self.l2_accesses);
        w.write_u64(self.l2_misses);
        w.write_u64(self.llc_accesses);
        w.write_u64(self.llc_misses);
        w.write_u64(self.memory_accesses);
        w.write_u64(self.inclusion_victims_l1);
        w.write_u64(self.inclusion_victims_l2);
        w.write_u64(self.tlh_hints);
        w.write_u64(self.misses_cold);
        w.write_u64(self.misses_capacity);
        w.write_u64(self.misses_inclusion_victim);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.l1i_accesses = r.read_u64()?;
        self.l1i_misses = r.read_u64()?;
        self.l1d_accesses = r.read_u64()?;
        self.l1d_misses = r.read_u64()?;
        self.l2_accesses = r.read_u64()?;
        self.l2_misses = r.read_u64()?;
        self.llc_accesses = r.read_u64()?;
        self.llc_misses = r.read_u64()?;
        self.memory_accesses = r.read_u64()?;
        self.inclusion_victims_l1 = r.read_u64()?;
        self.inclusion_victims_l2 = r.read_u64()?;
        self.tlh_hints = r.read_u64()?;
        self.misses_cold = r.read_u64()?;
        self.misses_capacity = r.read_u64()?;
        self.misses_inclusion_victim = r.read_u64()?;
        Ok(())
    }
}

impl Snapshot for GlobalStats {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.llc_evictions);
        w.write_u64(self.llc_writebacks);
        w.write_u64(self.back_invalidates);
        w.write_u64(self.eci_invalidates);
        w.write_u64(self.eci_rescues);
        w.write_u64(self.qbs_queries);
        w.write_u64(self.qbs_rejections);
        w.write_u64(self.qbs_limit_hits);
        w.write_u64(self.tlh_hints);
        w.write_u64(self.prefetches);
        w.write_u64(self.victim_cache_rescues);
        w.write_u64(self.snoop_probes);
        w.write_u64(self.victim_misses_replacement);
        w.write_u64(self.victim_misses_qbs_limit);
        w.write_u64(self.victim_misses_eci);
        w.write_u64(self.victim_misses_vc);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.llc_evictions = r.read_u64()?;
        self.llc_writebacks = r.read_u64()?;
        self.back_invalidates = r.read_u64()?;
        self.eci_invalidates = r.read_u64()?;
        self.eci_rescues = r.read_u64()?;
        self.qbs_queries = r.read_u64()?;
        self.qbs_rejections = r.read_u64()?;
        self.qbs_limit_hits = r.read_u64()?;
        self.tlh_hints = r.read_u64()?;
        self.prefetches = r.read_u64()?;
        self.victim_cache_rescues = r.read_u64()?;
        self.snoop_probes = r.read_u64()?;
        self.victim_misses_replacement = r.read_u64()?;
        self.victim_misses_qbs_limit = r.read_u64()?;
        self.victim_misses_eci = r.read_u64()?;
        self.victim_misses_vc = r.read_u64()?;
        Ok(())
    }
}

impl Snapshot for IoStats {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.injections);
        w.write_u64(self.inject_hits);
        w.write_u64(self.inject_fills);
        w.write_u64(self.llc_evictions);
        w.write_u64(self.back_invalidates);
        w.write_u64(self.writebacks);
        w.write_u64(self.victim_misses_io);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.injections = r.read_u64()?;
        self.inject_hits = r.read_u64()?;
        self.inject_fills = r.read_u64()?;
        self.llc_evictions = r.read_u64()?;
        self.back_invalidates = r.read_u64()?;
        self.writebacks = r.read_u64()?;
        self.victim_misses_io = r.read_u64()?;
        Ok(())
    }
}

impl Snapshot for IoAgentStats {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.injections);
        w.write_u64(self.hits);
        w.write_u64(self.fills);
        w.write_u64(self.evictions);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.injections = r.read_u64()?;
        self.hits = r.read_u64()?;
        self.fills = r.read_u64()?;
        self.evictions = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section("meta");
        w.write_u64(42);
        w.write_str("hello");
        w.begin_section("nested");
        w.write_i64(-7);
        w.write_bool(true);
        w.end_section();
        w.write_f64(0.25);
        w.end_section();
        w.begin_section("data");
        w.write_u64_slice(&[1, 2, 3]);
        w.end_section();
        w.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section("meta").unwrap();
        assert_eq!(r.read_u64().unwrap(), 42);
        assert_eq!(r.read_str().unwrap(), "hello");
        r.begin_section("nested").unwrap();
        assert_eq!(r.read_i64().unwrap(), -7);
        assert!(r.read_bool().unwrap());
        r.end_section().unwrap();
        assert_eq!(r.read_f64().unwrap(), 0.25);
        r.end_section().unwrap();
        r.begin_section("data").unwrap();
        assert_eq!(r.read_u64_vec().unwrap(), vec![1, 2, 3]);
        r.end_section().unwrap();
        assert!(r.at_section_end());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    /// Re-stamps a snapshot's version byte, fixing up the checksum so only
    /// the version differs.
    fn with_version(mut bytes: Vec<u8>, version: u8) -> Vec<u8> {
        bytes[4] = version;
        let end = bytes.len() - 8;
        let sum = fnv1a(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        bytes
    }

    #[test]
    fn rejects_bad_version() {
        for bad in [MIN_SUPPORTED_VERSION - 1, FORMAT_VERSION + 1] {
            let bytes = with_version(sample(), bad);
            match SnapshotReader::new(&bytes) {
                Err(SnapshotError::BadVersion { found, expected }) => {
                    assert_eq!(found, bad);
                    assert_eq!(expected, FORMAT_VERSION);
                    let msg = SnapshotError::BadVersion { found, expected }.to_string();
                    let range = format!("{MIN_SUPPORTED_VERSION}..={FORMAT_VERSION}");
                    assert!(msg.contains(&range), "range in message: {msg}");
                }
                other => panic!("expected BadVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn reads_all_supported_versions() {
        // A version-1 image (the pre-multi-word format) must still load:
        // for ≤ 64-way geometries the body layout is identical, so the same
        // readers decode it.
        for v in MIN_SUPPORTED_VERSION..=FORMAT_VERSION {
            let bytes = with_version(sample(), v);
            let mut r = SnapshotReader::new(&bytes).expect("supported version must parse");
            r.begin_section("meta").unwrap();
            assert_eq!(r.read_u64().unwrap(), 42);
        }
    }

    #[test]
    fn rejects_flipped_byte() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(SnapshotError::BadChecksum)
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample();
        for cut in [0, 3, 5, bytes.len() - 1] {
            let err = SnapshotReader::new(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadChecksum),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_section_name_is_corrupt() {
        let bytes = sample();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = r.begin_section("other").unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
    }

    #[test]
    fn underread_section_is_corrupt() {
        let bytes = sample();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section("meta").unwrap();
        assert_eq!(r.read_u64().unwrap(), 42);
        let err = r.end_section().unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
    }

    #[test]
    fn read_cannot_cross_section_boundary() {
        let mut w = SnapshotWriter::new();
        w.begin_section("a");
        w.write_u8(1);
        w.end_section();
        w.begin_section("b");
        w.write_u64(2);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section("a").unwrap();
        // Asking for 8 bytes inside a 1-byte section must fail, not read
        // into section "b".
        assert!(matches!(r.read_u64(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn rng_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut w = SnapshotWriter::new();
        rng.write_state(&mut w);
        let bytes = w.finish();

        let mut restored = SmallRng::seed_from_u64(0);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.read_state(&mut r).unwrap();
        let mut rng2 = rng.clone();
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), rng2.next_u64());
        }
    }

    #[test]
    fn stats_roundtrip() {
        let pcs = PerCoreStats {
            l1d_accesses: 5,
            tlh_hints: 9,
            ..PerCoreStats::default()
        };
        let gs = GlobalStats {
            qbs_queries: 3,
            snoop_probes: 11,
            ..GlobalStats::default()
        };

        let mut w = SnapshotWriter::new();
        pcs.write_state(&mut w);
        gs.write_state(&mut w);
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).unwrap();
        let mut pcs2 = PerCoreStats::default();
        let mut gs2 = GlobalStats::default();
        pcs2.read_state(&mut r).unwrap();
        gs2.read_state(&mut r).unwrap();
        assert_eq!(pcs, pcs2);
        assert_eq!(gs, gs2);
    }

    #[test]
    fn mismatched_slice_len() {
        let mut w = SnapshotWriter::new();
        w.write_u64_slice(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let mut dst = [0u64; 4];
        let err = r.read_u64_slice_into(&mut dst, "repl stamps").unwrap_err();
        match err {
            SnapshotError::Mismatch(msg) => assert!(msg.contains("repl stamps")),
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }
}
