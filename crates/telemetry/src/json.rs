//! A small self-contained JSON value type, encoder and parser.
//!
//! The workspace builds in fully offline environments, so run reports
//! carry their own JSON layer instead of depending on `serde_json`. The
//! surface is deliberately tiny: a [`JsonValue`] tree, a pretty encoder
//! whose output is stable (object keys keep insertion order), and a
//! strict recursive-descent parser sufficient to round-trip anything the
//! encoder produces (and ordinary interoperable JSON in general).
//!
//! # Examples
//!
//! ```
//! use tla_telemetry::json::JsonValue;
//!
//! let v = JsonValue::object([
//!     ("policy", JsonValue::from("QBS")),
//!     ("misses", JsonValue::from(42u64)),
//! ]);
//! let text = v.to_string();
//! let back = JsonValue::parse(&text).unwrap();
//! assert_eq!(v, back);
//! assert_eq!(back.get("misses").and_then(|m| m.as_u64()), Some(42));
//! ```

use std::fmt;

/// A JSON document node.
///
/// Numbers are stored as `f64` with a separate `Int` variant for exact
/// 64-bit unsigned counters (cache statistics routinely exceed 2^53, the
/// largest integer `f64` holds exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer (counters).
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved in the encoding.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    ///
    /// Floats convert only when the conversion is *exact*: `2.0` is kept
    /// (an integral counter that merely round-tripped through a float
    /// writer), while `2.5` is rejected rather than truncated — a report
    /// with genuinely fractional counters is malformed and must not read
    /// back as valid. The range check is strict: `u64::MAX as f64` rounds
    /// up to 2^64, so a `<=` bound would accept 2^64 and silently saturate
    /// it to `u64::MAX`; only values strictly below 2^64 convert.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Parses a JSON document. The whole input must be one value plus
    /// optional trailing whitespace.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Num(x) => write_f64(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                    items[i].write(out, ind)
                })
            }
            JsonValue::Obj(pairs) => {
                write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                    write_escaped(out, &pairs[i].0);
                    out.push_str(": ");
                    pairs[i].1.write(out, ind);
                })
            }
        }
    }
}

impl fmt::Display for JsonValue {
    /// Compact single-line encoding (parseable by [`JsonValue::parse`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Int(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Int(n as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Int(n as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no Inf/NaN; encode as null like serde_json does.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        match inner {
            Some(d) => {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
            }
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs in one shot.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            cp = cp * 16 + v;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-1.5", "1e3", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            let back = JsonValue::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn exact_u64_counters_survive() {
        let big = u64::MAX - 1;
        let v = JsonValue::from(big);
        let back = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(big));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = JsonValue::object([
            ("name", JsonValue::from("lib+sje")),
            (
                "stats",
                JsonValue::object([
                    ("misses", JsonValue::from(1234u64)),
                    ("mpki", JsonValue::from(3.25)),
                    ("windows", JsonValue::array([JsonValue::from(1u64)])),
                ]),
            ),
            ("empty_arr", JsonValue::array([])),
            ("empty_obj", JsonValue::object::<String>([])),
            ("none", JsonValue::Null),
        ]);
        for text in [v.to_string(), v.to_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F600} ctrl\u{0001}";
        let v = JsonValue::from(s);
        let parsed = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
        // Standard escapes parse too.
        let std = JsonValue::parse(r#""a\u0041\ud83d\ude00\/b""#).unwrap();
        assert_eq!(std.as_str(), Some("aA\u{1F600}/b"));
    }

    #[test]
    fn accessors() {
        let v = JsonValue::object([("a", JsonValue::from(1u64)), ("b", JsonValue::from(true))]);
        assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("a").and_then(|x| x.as_f64()), Some(1.0));
        assert_eq!(v.get("b").and_then(|x| x.as_bool()), Some(true));
        assert!(v.get("c").is_none());
        assert!(JsonValue::Null.get("a").is_none());
        // Exact integral floats convert; anything inexact is rejected, not
        // truncated: fractional counters mean the report is malformed.
        assert_eq!(JsonValue::parse("2.0").unwrap().as_u64(), Some(2));
        assert_eq!(JsonValue::parse("-2.0").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-0.5").unwrap().as_u64(), None);
        // 2^64 as a float is exactly `u64::MAX as f64` (which rounds up);
        // converting it would saturate to u64::MAX, so it must be rejected.
        assert_eq!(JsonValue::Num(u64::MAX as f64).as_u64(), None);
        assert_eq!(
            JsonValue::parse("18446744073709551616.0").unwrap().as_u64(),
            None
        );
        // The largest f64 below 2^64 still converts exactly.
        let below = (u64::MAX as f64).next_down();
        assert_eq!(JsonValue::Num(below).as_u64(), Some(below as u64));
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1]]",
            "\"\\q\"",
            "nan",
        ] {
            assert!(JsonValue::parse(text).is_err(), "{text:?}");
        }
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = JsonValue::object([("k", JsonValue::array([JsonValue::from(1u64)]))]);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"k\": [\n    1\n  ]\n"));
        assert!(pretty.ends_with('\n'));
    }
}
