//! Telemetry event vocabulary.

use std::fmt;
use tla_types::{CacheLevel, CoreId, LineAddr};

/// The kind of a policy-relevant hierarchy event.
///
/// One variant per counter the paper argues with (§IV–§VI): the LLC
/// eviction/back-invalidate pipeline, the three TLA mechanisms, the
/// prefetcher and the victim cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// A line was evicted from the LLC.
    LlcEviction,
    /// An inclusion back-invalidate removed a line from a core cache.
    BackInvalidate,
    /// ECI invalidated the next victim early from the core caches.
    EciInvalidate,
    /// An ECI'd line was rescued by an LLC hit before eviction.
    EciRescue,
    /// QBS queried the core caches about a victim candidate.
    QbsQuery,
    /// QBS rejected a candidate (resident in a core cache; re-promoted).
    QbsRejection,
    /// QBS hit its query limit and evicted unconditionally.
    QbsLimitHit,
    /// A temporal locality hint reached the LLC.
    TlhHint,
    /// The stream prefetcher issued a prefetch.
    Prefetch,
    /// An LLC miss was satisfied from the victim cache.
    VictimCacheRescue,
    /// A demand access reached the LLC (emitted only when access profiling
    /// is enabled — the reuse-distance profiler's food).
    LlcAccess,
}

impl EventKind {
    /// Every kind, in declaration order. New kinds are appended so the
    /// dense indices of existing kinds stay stable across snapshots.
    pub const ALL: [EventKind; 11] = [
        EventKind::LlcEviction,
        EventKind::BackInvalidate,
        EventKind::EciInvalidate,
        EventKind::EciRescue,
        EventKind::QbsQuery,
        EventKind::QbsRejection,
        EventKind::QbsLimitHit,
        EventKind::TlhHint,
        EventKind::Prefetch,
        EventKind::VictimCacheRescue,
        EventKind::LlcAccess,
    ];

    /// Stable machine-readable name (used as a JSON key).
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::LlcEviction => "llc_eviction",
            EventKind::BackInvalidate => "back_invalidate",
            EventKind::EciInvalidate => "eci_invalidate",
            EventKind::EciRescue => "eci_rescue",
            EventKind::QbsQuery => "qbs_query",
            EventKind::QbsRejection => "qbs_rejection",
            EventKind::QbsLimitHit => "qbs_limit_hit",
            EventKind::TlhHint => "tlh_hint",
            EventKind::Prefetch => "prefetch",
            EventKind::VictimCacheRescue => "victim_cache_rescue",
            EventKind::LlcAccess => "llc_access",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Dense index into [`EventKind::ALL`] (for counter arrays).
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One policy-relevant event, stamped with whatever context the hook site
/// had available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// What happened.
    pub kind: EventKind,
    /// Core the event is attributed to (`None` for shared-LLC events with
    /// no single owner, e.g. an eviction of an unshared dead line).
    pub core: Option<CoreId>,
    /// Cache level the event acted on, when meaningful.
    pub level: Option<CacheLevel>,
    /// LLC set index, for set-resolved collectors.
    pub set: Option<u32>,
    /// The line the event concerns, for address-resolved collectors
    /// (carried only by [`EventKind::LlcAccess`] today).
    pub addr: Option<LineAddr>,
    /// Global instruction timestamp: total instructions committed across
    /// all cores when the event fired (0 outside a timed run).
    pub instr: u64,
}

impl TelemetryEvent {
    /// An event with no core/level/set attribution.
    pub const fn global(kind: EventKind, instr: u64) -> Self {
        TelemetryEvent {
            kind,
            core: None,
            level: None,
            set: None,
            addr: None,
            instr,
        }
    }

    /// Attributes the event to a core.
    #[must_use]
    pub const fn with_core(mut self, core: CoreId) -> Self {
        self.core = Some(core);
        self
    }

    /// Attributes the event to a cache level.
    #[must_use]
    pub const fn with_level(mut self, level: CacheLevel) -> Self {
        self.level = Some(level);
        self
    }

    /// Attributes the event to an LLC set.
    #[must_use]
    pub const fn with_set(mut self, set: u32) -> Self {
        self.set = Some(set);
        self
    }

    /// Attributes the event to a line address.
    #[must_use]
    pub const fn with_addr(mut self, addr: LineAddr) -> Self {
        self.addr = Some(addr);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in EventKind::ALL {
            assert!(seen.insert(kind.name()));
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn indices_are_dense() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn builder_attributes() {
        let ev = TelemetryEvent::global(EventKind::QbsQuery, 7)
            .with_core(CoreId::new(2))
            .with_level(CacheLevel::L2)
            .with_set(9);
        assert_eq!(ev.core, Some(CoreId::new(2)));
        assert_eq!(ev.level, Some(CacheLevel::L2));
        assert_eq!(ev.set, Some(9));
        assert_eq!(ev.instr, 7);
    }
}
