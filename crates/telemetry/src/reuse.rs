//! Online reuse-distance profiling.
//!
//! The reuse-distance distribution of the LLC access stream is the lens
//! the Belady/EHC line of work reads cache behaviour through: a policy
//! only has headroom where reuse distances cluster just beyond the
//! associativity. This module provides the two pieces the `analyze`
//! pipeline composes:
//!
//! * [`ReuseHistogram`] — a log-bucketed distance histogram with
//!   saturating counters, merge and percentile queries.
//! * [`ReuseProfiler`] — a [`TelemetrySink`] that samples a configurable
//!   subset of LLC sets (every `sample_every`-th set), maintains one
//!   histogram per sampled set plus a global aggregate, and feeds on
//!   [`EventKind::LlcAccess`] events.
//!
//! Distance here is the *access-count* reuse distance within a set: the
//! number of other accesses the sampled set served between two touches of
//! the same line. First touches are counted separately as cold.

use std::collections::HashMap;
use std::fmt;

use crate::event::{EventKind, TelemetryEvent};
use crate::json::JsonValue;
use crate::sink::TelemetrySink;

/// Default number of log buckets (covers distances up to 2^18 exactly,
/// with a final catch-all bucket).
pub const DEFAULT_REUSE_BUCKETS: usize = 20;

/// Default set-sampling stride: profile one in every four LLC sets.
pub const DEFAULT_SAMPLE_EVERY: u32 = 4;

/// A merge or query failure on a [`ReuseHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseError {
    /// Two histograms with different bucket configurations cannot merge.
    BucketMismatch {
        /// Bucket count of the receiving histogram.
        ours: usize,
        /// Bucket count of the incoming histogram.
        theirs: usize,
    },
}

impl fmt::Display for ReuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseError::BucketMismatch { ours, theirs } => write!(
                f,
                "cannot merge reuse histograms with different bucket configurations: \
                 this histogram has {ours} buckets, the other has {theirs}"
            ),
        }
    }
}

impl std::error::Error for ReuseError {}

/// A log-bucketed reuse-distance histogram.
///
/// Bucket 0 counts distance 0 (back-to-back reuse); bucket `k >= 1`
/// counts distances in `[2^(k-1), 2^k)`; the last bucket additionally
/// absorbs everything beyond its range. All counters saturate at
/// `u64::MAX` instead of wrapping, so a merged fleet of histograms can
/// never corrupt totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseHistogram {
    buckets: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseHistogram {
    /// An empty histogram with `num_buckets` log buckets.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is zero.
    pub fn new(num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "reuse histogram needs at least one bucket");
        ReuseHistogram {
            buckets: vec![0; num_buckets],
            cold: 0,
            total: 0,
        }
    }

    /// The bucket index a distance falls into.
    fn bucket_of(&self, distance: u64) -> usize {
        let b = match distance {
            0 => 0,
            d => d.ilog2() as usize + 1,
        };
        b.min(self.buckets.len() - 1)
    }

    /// Largest distance bucket `k` covers exactly (the last bucket is a
    /// catch-all and reports `u64::MAX`).
    pub fn bucket_bound(&self, k: usize) -> u64 {
        if k + 1 >= self.buckets.len() {
            u64::MAX
        } else if k == 0 {
            0
        } else {
            (1u64 << k) - 1
        }
    }

    /// Records one finite reuse distance.
    pub fn record(&mut self, distance: u64) {
        self.record_many(distance, 1);
    }

    /// Records `n` observations of `distance` at once (the merge path for
    /// pre-aggregated samples). Counters saturate.
    pub fn record_many(&mut self, distance: u64, n: u64) {
        let b = self.bucket_of(distance);
        self.buckets[b] = self.buckets[b].saturating_add(n);
        self.total = self.total.saturating_add(n);
    }

    /// Records a first touch (infinite distance).
    pub fn record_cold(&mut self) {
        self.cold = self.cold.saturating_add(1);
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// First-touch (cold) count.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Finite distances recorded (sum of bucket counts, pre-saturation).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded (neither finite distances nor colds).
    pub fn is_empty(&self) -> bool {
        self.total == 0 && self.cold == 0
    }

    /// Adds `other` into `self`, saturating.
    ///
    /// # Errors
    ///
    /// [`ReuseError::BucketMismatch`] when the bucket configurations
    /// differ — merging histograms of different resolutions would silently
    /// misfile counts.
    pub fn merge(&mut self, other: &ReuseHistogram) -> Result<(), ReuseError> {
        if self.buckets.len() != other.buckets.len() {
            return Err(ReuseError::BucketMismatch {
                ours: self.buckets.len(),
                theirs: other.buckets.len(),
            });
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(o);
        }
        self.cold = self.cold.saturating_add(other.cold);
        self.total = self.total.saturating_add(other.total);
        Ok(())
    }

    /// The distance below which fraction `p` (in `[0, 1]`) of the *finite*
    /// recorded distances fall, as the upper bound of the bucket the rank
    /// lands in. `None` when no finite distance was recorded.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return Some(self.bucket_bound(k));
            }
        }
        Some(self.bucket_bound(self.buckets.len() - 1))
    }

    /// JSON encoding: `{"cold": n, "total": n, "buckets": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("cold", JsonValue::from(self.cold)),
            ("total", JsonValue::from(self.total)),
            (
                "buckets",
                JsonValue::array(self.buckets.iter().map(|&c| JsonValue::from(c))),
            ),
        ])
    }

    /// Inverse of [`ReuseHistogram::to_json`].
    pub fn from_json(v: &JsonValue) -> Option<ReuseHistogram> {
        let cold = v.get("cold")?.as_u64()?;
        let total = v.get("total")?.as_u64()?;
        let buckets = v
            .get("buckets")?
            .as_array()?
            .iter()
            .map(|b| b.as_u64())
            .collect::<Option<Vec<u64>>>()?;
        if buckets.is_empty() {
            return None;
        }
        Some(ReuseHistogram {
            buckets,
            cold,
            total,
        })
    }
}

/// Per-set profiling state.
#[derive(Debug, Clone)]
struct SetState {
    /// The LLC set this state profiles.
    set: u32,
    /// Accesses this set has served (the set-local clock).
    clock: u64,
    /// Line address -> clock value of its previous access.
    last: HashMap<u64, u64>,
    hist: ReuseHistogram,
}

/// A [`TelemetrySink`] computing reuse-distance histograms over a sampled
/// subset of LLC sets.
///
/// Feeds on [`EventKind::LlcAccess`] events carrying a set index and a
/// line address; every other event is ignored, so the profiler composes
/// freely inside a [`crate::MultiSink`] with counting sinks and windowed
/// series. Sets with index divisible by `sample_every` are profiled;
/// memory is bounded by the sampled sets' footprints.
#[derive(Debug, Clone)]
pub struct ReuseProfiler {
    sample_every: u32,
    sets: Vec<SetState>,
    global: ReuseHistogram,
}

impl ReuseProfiler {
    /// A profiler over an LLC with `llc_sets` sets, sampling every
    /// `sample_every`-th set into histograms of `num_buckets` buckets.
    ///
    /// A zero `sample_every` is clamped to 1 (profile every set): the
    /// stride feeds `step_by`, and a panic deep inside a long analyzed
    /// run is a far worse failure mode than a thorough profile. Front
    /// ends reject 0 with a proper error before it gets here (see
    /// `tla-cli`'s `--sample-every` validation), mirroring
    /// [`WindowedSeries::new`](crate::WindowedSeries::new)'s `--window`
    /// handling.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` or `llc_sets` is zero.
    pub fn new(llc_sets: usize, sample_every: u32, num_buckets: usize) -> Self {
        let sample_every = sample_every.max(1);
        assert!(llc_sets > 0, "profiler needs at least one LLC set");
        let sets = (0..llc_sets as u32)
            .step_by(sample_every as usize)
            .map(|set| SetState {
                set,
                clock: 0,
                last: HashMap::new(),
                hist: ReuseHistogram::new(num_buckets),
            })
            .collect::<Vec<_>>();
        ReuseProfiler {
            sample_every,
            sets,
            global: ReuseHistogram::new(num_buckets),
        }
    }

    /// The sampling stride.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Number of sets being profiled.
    pub fn sampled_sets(&self) -> usize {
        self.sets.len()
    }

    /// The aggregate histogram over every sampled set.
    pub fn global(&self) -> &ReuseHistogram {
        &self.global
    }

    /// Per-set histograms, in ascending set order.
    pub fn per_set(&self) -> impl Iterator<Item = (u32, &ReuseHistogram)> {
        self.sets.iter().map(|s| (s.set, &s.hist))
    }
}

impl TelemetrySink for ReuseProfiler {
    fn record(&mut self, event: &TelemetryEvent) {
        if event.kind != EventKind::LlcAccess {
            return;
        }
        let (Some(set), Some(addr)) = (event.set, event.addr) else {
            return;
        };
        if set % self.sample_every != 0 {
            return;
        }
        let idx = (set / self.sample_every) as usize;
        let Some(state) = self.sets.get_mut(idx) else {
            return;
        };
        let now = state.clock;
        state.clock += 1;
        match state.last.insert(addr.raw(), now) {
            Some(prev) => {
                let d = now - prev - 1;
                state.hist.record(d);
                self.global.record(d);
            }
            None => {
                state.hist.record_cold();
                self.global.record_cold();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_types::LineAddr;

    fn access(set: u32, addr: u64) -> TelemetryEvent {
        TelemetryEvent::global(EventKind::LlcAccess, 0)
            .with_set(set)
            .with_addr(LineAddr::new(addr))
    }

    #[test]
    fn empty_histogram_serializes_and_round_trips() {
        let h = ReuseHistogram::new(6);
        assert!(h.is_empty());
        let j = h.to_json();
        assert_eq!(j.get("cold").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(j.get("total").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(
            j.get("buckets").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(6)
        );
        let text = j.to_pretty();
        let back = ReuseHistogram::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.percentile(0.5), None);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        let mut h = ReuseHistogram::new(5);
        // Bucket 0: d = 0. Bucket k: [2^(k-1), 2^k). Last bucket catches all.
        for (d, b) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1 << 40, 4),
        ] {
            h = ReuseHistogram::new(5);
            h.record(d);
            assert_eq!(h.buckets()[b], 1, "distance {d} must land in bucket {b}");
        }
        assert_eq!(h.bucket_bound(0), 0);
        assert_eq!(h.bucket_bound(1), 1);
        assert_eq!(h.bucket_bound(2), 3);
        assert_eq!(h.bucket_bound(3), 7);
        assert_eq!(h.bucket_bound(4), u64::MAX);
    }

    #[test]
    fn bucket_counts_saturate_instead_of_wrapping() {
        let mut h = ReuseHistogram::new(4);
        h.record_many(1, u64::MAX - 2);
        h.record_many(1, 5);
        assert_eq!(h.buckets()[1], u64::MAX);
        assert_eq!(h.total(), u64::MAX);
        // A saturated histogram keeps absorbing merges without wrapping.
        let mut other = ReuseHistogram::new(4);
        other.record_many(1, 100);
        h.merge(&other).unwrap();
        assert_eq!(h.buckets()[1], u64::MAX);
    }

    #[test]
    fn merge_of_mismatched_bucket_configs_is_a_descriptive_error() {
        let mut a = ReuseHistogram::new(8);
        let b = ReuseHistogram::new(12);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(
            err,
            ReuseError::BucketMismatch {
                ours: 8,
                theirs: 12
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("8 buckets"), "got: {msg}");
        assert!(msg.contains("12"), "got: {msg}");
    }

    #[test]
    fn merge_accumulates_counts_and_colds() {
        let mut a = ReuseHistogram::new(6);
        a.record(0);
        a.record(5);
        a.record_cold();
        let mut b = ReuseHistogram::new(6);
        b.record(5);
        b.record_cold();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 3);
        assert_eq!(a.cold(), 2);
        assert_eq!(a.buckets()[0], 1);
    }

    #[test]
    fn percentile_on_single_bucket_data() {
        // Histogram with one bucket: every distance is the catch-all.
        let mut h = ReuseHistogram::new(1);
        h.record(0);
        h.record(123);
        assert_eq!(h.percentile(0.0), Some(u64::MAX));
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
        // Multi-bucket histogram whose data sits in a single bucket: every
        // percentile reports that bucket's bound.
        let mut h = ReuseHistogram::new(8);
        for _ in 0..10 {
            h.record(5); // bucket 3, bound 7
        }
        assert_eq!(h.percentile(0.01), Some(7));
        assert_eq!(h.percentile(0.5), Some(7));
        assert_eq!(h.percentile(1.0), Some(7));
    }

    #[test]
    fn percentile_walks_cumulative_mass() {
        let mut h = ReuseHistogram::new(8);
        for _ in 0..90 {
            h.record(0); // bucket 0
        }
        for _ in 0..10 {
            h.record(100); // bucket 7 (catch-all at 8 buckets? 100 -> ilog2=6 -> bucket 7)
        }
        assert_eq!(h.percentile(0.5), Some(0));
        assert_eq!(h.percentile(0.9), Some(0));
        assert_eq!(h.percentile(0.95), Some(u64::MAX));
    }

    #[test]
    fn profiler_measures_set_local_distances() {
        let mut p = ReuseProfiler::new(8, 1, 8);
        p.record(&access(0, 10)); // cold
        p.record(&access(0, 11)); // cold
        p.record(&access(0, 10)); // one intervening access -> d = 1
        p.record(&access(0, 10)); // back-to-back -> d = 0
        assert_eq!(p.global().cold(), 2);
        assert_eq!(p.global().total(), 2);
        assert_eq!(p.global().buckets()[0], 1); // d = 0
        assert_eq!(p.global().buckets()[1], 1); // d = 1
        let (set, h) = p.per_set().next().unwrap();
        assert_eq!(set, 0);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn profiler_skips_unsampled_sets_and_foreign_events() {
        let mut p = ReuseProfiler::new(8, 4, 8);
        assert_eq!(p.sampled_sets(), 2); // sets 0 and 4
        p.record(&access(1, 10));
        p.record(&access(3, 10));
        assert!(p.global().is_empty());
        p.record(&access(4, 10));
        p.record(&access(4, 10));
        assert_eq!(p.global().total(), 1);
        // Events without addr or of other kinds are ignored.
        p.record(&TelemetryEvent::global(EventKind::LlcAccess, 0).with_set(0));
        p.record(&TelemetryEvent::global(EventKind::LlcEviction, 0).with_set(0));
        assert_eq!(p.global().total() + p.global().cold(), 2);
    }

    #[test]
    fn distances_are_per_set_not_global() {
        let mut p = ReuseProfiler::new(8, 1, 8);
        p.record(&access(0, 10));
        // A storm of accesses to *other* sets must not widen set 0's
        // distances.
        for i in 0..100 {
            p.record(&access(1, 1000 + i));
        }
        p.record(&access(0, 10)); // d = 0 within set 0
        let (_, h) = p.per_set().next().unwrap();
        assert_eq!(h.buckets()[0], 1);
    }

    #[test]
    fn zero_sample_every_clamps_to_every_set() {
        // Regression: a zero stride used to assert; it now clamps to 1
        // (profile every set), mirroring `WindowedSeries::new`'s zero-
        // window handling, and behaves identically to stride 1.
        let mut clamped = ReuseProfiler::new(8, 0, 8);
        assert_eq!(clamped.sample_every(), 1);
        let mut full = ReuseProfiler::new(8, 1, 8);
        for p in [&mut clamped, &mut full] {
            p.record(&access(3, 42));
            p.record(&access(3, 42));
        }
        assert_eq!(clamped.global().buckets(), full.global().buckets());
        assert_eq!(clamped.per_set().count(), full.per_set().count());
    }
}
