//! Per-set histograms: where in the LLC do evictions and inclusion
//! victims land?
//!
//! Hot-set skew is invisible in run totals: a policy can look harmless on
//! aggregate MPKI while hammering a handful of sets. This collector
//! resolves the two events the paper cares most about — LLC evictions and
//! the back-invalidates they trigger — per LLC set, plus a bounded
//! reservoir sample of concrete events for drill-down.

use crate::event::{EventKind, TelemetryEvent};
use crate::sink::TelemetrySink;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{CacheLevel, CoreId, LineAddr};

/// Default capacity of the example-event reservoir.
pub const DEFAULT_RESERVOIR: usize = 64;

/// Counts LLC evictions and inclusion back-invalidates per LLC set.
///
/// Implements [`TelemetrySink`]; install it (usually behind a
/// [`crate::SharedSink`]) and read it back after the run. Events of other
/// kinds, or without a set index, are ignored.
///
/// Memory is bounded: per-set counters saturate at `u32::MAX` and the
/// example reservoir holds at most its configured capacity, replacing
/// entries by uniform reservoir sampling so the examples stay an unbiased
/// draw from the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerSetHistogram {
    evictions: Vec<u32>,
    inclusion_victims: Vec<u32>,
    reservoir: Vec<TelemetryEvent>,
    reservoir_cap: usize,
    seen: u64,
    rng: u64,
}

impl PerSetHistogram {
    /// A histogram over `sets` LLC sets with the default reservoir size.
    pub fn new(sets: usize) -> Self {
        Self::with_reservoir(sets, DEFAULT_RESERVOIR)
    }

    /// A histogram over `sets` LLC sets keeping at most `reservoir_cap`
    /// example events.
    pub fn with_reservoir(sets: usize, reservoir_cap: usize) -> Self {
        assert!(sets > 0, "histogram needs at least one set");
        PerSetHistogram {
            evictions: vec![0; sets],
            inclusion_victims: vec![0; sets],
            reservoir: Vec::with_capacity(reservoir_cap),
            reservoir_cap,
            seen: 0,
            rng: 0x5EED_u64,
        }
    }

    /// Number of LLC sets tracked.
    pub fn sets(&self) -> usize {
        self.evictions.len()
    }

    /// Eviction count per set.
    pub fn evictions(&self) -> &[u32] {
        &self.evictions
    }

    /// Inclusion-victim (back-invalidate) count per set.
    pub fn inclusion_victims(&self) -> &[u32] {
        &self.inclusion_victims
    }

    /// Events counted (evictions + inclusion victims, pre-saturation).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The reservoir of example events (unordered).
    pub fn samples(&self) -> &[TelemetryEvent] {
        &self.reservoir
    }

    /// Aggregate skew figures for quick inspection.
    pub fn summary(&self) -> SetHistogramSummary {
        let total_evictions: u64 = self.evictions.iter().map(|&c| c as u64).sum();
        let total_victims: u64 = self.inclusion_victims.iter().map(|&c| c as u64).sum();
        let (hottest_set, max) = self
            .evictions
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .unwrap_or((0, 0));
        let mean = total_evictions as f64 / self.sets() as f64;
        SetHistogramSummary {
            sets: self.sets(),
            total_evictions,
            total_inclusion_victims: total_victims,
            hottest_set,
            hottest_set_evictions: max,
            eviction_skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        }
    }

    /// xorshift64 step for reservoir replacement decisions; keeping the
    /// generator inline avoids a dependency edge back onto `tla-rng`.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

fn write_event(w: &mut SnapshotWriter, e: &TelemetryEvent) {
    w.write_u8(e.kind.index() as u8);
    w.write_bool(e.core.is_some());
    if let Some(c) = e.core {
        w.write_u8(c.index() as u8);
    }
    w.write_bool(e.level.is_some());
    if let Some(l) = e.level {
        let idx = CacheLevel::ALL
            .iter()
            .position(|&x| x == l)
            .expect("level in ALL");
        w.write_u8(idx as u8);
    }
    w.write_bool(e.set.is_some());
    if let Some(s) = e.set {
        w.write_u32(s);
    }
    w.write_bool(e.addr.is_some());
    if let Some(a) = e.addr {
        w.write_u64(a.raw());
    }
    w.write_u64(e.instr);
}

fn read_event(r: &mut SnapshotReader) -> Result<TelemetryEvent, SnapshotError> {
    let kind_idx = r.read_u8()? as usize;
    let kind = *EventKind::ALL.get(kind_idx).ok_or_else(|| {
        SnapshotError::Corrupt(format!(
            "telemetry event kind index {kind_idx} out of range"
        ))
    })?;
    let core = if r.read_bool()? {
        let idx = r.read_u8()? as usize;
        if idx >= CoreId::MAX_CORES {
            return Err(SnapshotError::Corrupt(format!(
                "telemetry event core index {idx} out of range"
            )));
        }
        Some(CoreId::new(idx))
    } else {
        None
    };
    let level = if r.read_bool()? {
        let idx = r.read_u8()? as usize;
        Some(*CacheLevel::ALL.get(idx).ok_or_else(|| {
            SnapshotError::Corrupt(format!("telemetry event level index {idx} out of range"))
        })?)
    } else {
        None
    };
    let set = if r.read_bool()? {
        Some(r.read_u32()?)
    } else {
        None
    };
    let addr = if r.read_bool()? {
        Some(LineAddr::new(r.read_u64()?))
    } else {
        None
    };
    let instr = r.read_u64()?;
    Ok(TelemetryEvent {
        kind,
        core,
        level,
        set,
        addr,
        instr,
    })
}

/// Checkpoint coverage: both per-set count arrays, the reservoir with its
/// sampling state (`seen` and the inline RNG), so a resumed run keeps
/// drawing an unbiased sample. The set count and reservoir capacity are
/// configuration and must match the receiver's.
impl Snapshot for PerSetHistogram {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.evictions.len());
        for &c in &self.evictions {
            w.write_u32(c);
        }
        for &c in &self.inclusion_victims {
            w.write_u32(c);
        }
        w.write_usize(self.reservoir.len());
        for e in &self.reservoir {
            write_event(w, e);
        }
        w.write_u64(self.seen);
        w.write_u64(self.rng);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let sets = r.read_usize()?;
        if sets != self.evictions.len() {
            return Err(SnapshotError::Mismatch(format!(
                "set histogram: snapshot covers {sets} LLC sets, this LLC has {}",
                self.evictions.len()
            )));
        }
        for c in &mut self.evictions {
            *c = r.read_u32()?;
        }
        for c in &mut self.inclusion_victims {
            *c = r.read_u32()?;
        }
        let n = r.read_usize()?;
        if n > self.reservoir_cap {
            return Err(SnapshotError::Mismatch(format!(
                "set histogram: snapshot reservoir has {n} samples, \
                 this collector's capacity is {}",
                self.reservoir_cap
            )));
        }
        self.reservoir.clear();
        for _ in 0..n {
            let e = read_event(r)?;
            self.reservoir.push(e);
        }
        self.seen = r.read_u64()?;
        self.rng = r.read_u64()?;
        Ok(())
    }
}

impl TelemetrySink for PerSetHistogram {
    fn record(&mut self, event: &TelemetryEvent) {
        let Some(set) = event.set else { return };
        let set = set as usize % self.evictions.len();
        match event.kind {
            EventKind::LlcEviction => self.evictions[set] = self.evictions[set].saturating_add(1),
            EventKind::BackInvalidate => {
                self.inclusion_victims[set] = self.inclusion_victims[set].saturating_add(1)
            }
            _ => return,
        }
        self.seen += 1;
        if self.reservoir_cap == 0 {
            return;
        }
        // Algorithm R: keep each of the `seen` events with equal probability.
        if self.reservoir.len() < self.reservoir_cap {
            self.reservoir.push(*event);
        } else {
            let slot = self.next_rand() % self.seen;
            if (slot as usize) < self.reservoir_cap {
                self.reservoir[slot as usize] = *event;
            }
        }
    }
}

/// Aggregates of a [`PerSetHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetHistogramSummary {
    /// Number of LLC sets.
    pub sets: usize,
    /// Total LLC evictions counted.
    pub total_evictions: u64,
    /// Total inclusion victims counted.
    pub total_inclusion_victims: u64,
    /// Set with the most evictions.
    pub hottest_set: usize,
    /// Evictions in that set.
    pub hottest_set_evictions: u32,
    /// Hottest set's evictions relative to the per-set mean (1.0 = flat).
    pub eviction_skew: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evict(set: u32) -> TelemetryEvent {
        TelemetryEvent::global(EventKind::LlcEviction, 0).with_set(set)
    }

    fn back_inv(set: u32) -> TelemetryEvent {
        TelemetryEvent::global(EventKind::BackInvalidate, 0).with_set(set)
    }

    #[test]
    fn counts_land_in_their_sets() {
        let mut h = PerSetHistogram::new(8);
        h.record(&evict(3));
        h.record(&evict(3));
        h.record(&evict(5));
        h.record(&back_inv(3));
        assert_eq!(h.evictions()[3], 2);
        assert_eq!(h.evictions()[5], 1);
        assert_eq!(h.inclusion_victims()[3], 1);
        assert_eq!(h.inclusion_victims()[5], 0);
        assert_eq!(h.seen(), 4);
    }

    #[test]
    fn other_kinds_and_setless_events_are_ignored() {
        let mut h = PerSetHistogram::new(4);
        h.record(&TelemetryEvent::global(EventKind::QbsQuery, 0).with_set(1));
        h.record(&TelemetryEvent::global(EventKind::LlcEviction, 0));
        assert_eq!(h.seen(), 0);
        assert!(h.evictions().iter().all(|&c| c == 0));
    }

    #[test]
    fn reservoir_is_capped_and_samples_whole_run() {
        let mut h = PerSetHistogram::with_reservoir(16, 10);
        for i in 0..1000u64 {
            h.record(&TelemetryEvent::global(EventKind::LlcEviction, i).with_set(i as u32 % 16));
        }
        assert_eq!(h.samples().len(), 10);
        assert_eq!(h.seen(), 1000);
        // With uniform sampling over 1000 events it is astronomically
        // unlikely that every retained sample comes from the first ten.
        assert!(h.samples().iter().any(|e| e.instr >= 10));
    }

    #[test]
    fn summary_reports_skew() {
        let mut h = PerSetHistogram::new(4);
        for _ in 0..9 {
            h.record(&evict(2));
        }
        h.record(&evict(0));
        h.record(&back_inv(1));
        let s = h.summary();
        assert_eq!(s.total_evictions, 10);
        assert_eq!(s.total_inclusion_victims, 1);
        assert_eq!(s.hottest_set, 2);
        assert_eq!(s.hottest_set_evictions, 9);
        assert!((s.eviction_skew - 9.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trip_preserves_counts_and_reservoir() {
        let mut h = PerSetHistogram::with_reservoir(16, 8);
        for i in 0..500u64 {
            h.record(
                &TelemetryEvent::global(EventKind::LlcEviction, i)
                    .with_core(CoreId::new((i % 3) as usize))
                    .with_set(i as u32 % 16),
            );
            if i % 5 == 0 {
                h.record(&TelemetryEvent::global(EventKind::BackInvalidate, i).with_set(2));
            }
        }
        let mut w = SnapshotWriter::new();
        h.write_state(&mut w);
        let bytes = w.finish();

        let mut restored = PerSetHistogram::with_reservoir(16, 8);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.read_state(&mut r).unwrap();
        assert_eq!(restored, h);

        // Continued recording stays identical (sampling RNG restored too).
        for i in 500..600u64 {
            let e = TelemetryEvent::global(EventKind::LlcEviction, i).with_set(i as u32 % 16);
            h.record(&e);
            restored.record(&e);
        }
        assert_eq!(restored, h);

        // Set-count mismatch is rejected.
        let mut wrong = PerSetHistogram::with_reservoir(8, 8);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = wrong.read_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("LLC sets"), "got: {err}");
    }

    #[test]
    fn out_of_range_sets_fold_in() {
        let mut h = PerSetHistogram::new(4);
        h.record(&evict(6)); // 6 % 4 == 2
        assert_eq!(h.evictions()[2], 1);
    }
}
