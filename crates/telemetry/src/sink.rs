//! Event sinks: where the hierarchy delivers [`TelemetryEvent`]s.

use crate::event::{EventKind, TelemetryEvent};
use std::cell::RefCell;
use std::rc::Rc;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// Receives hierarchy events as they happen.
///
/// The hierarchy holds at most one boxed sink; install a [`SharedSink`]
/// (or a fan-out sink of your own) to feed several collectors at once.
/// When no sink is installed the emit path is a single `Option` check, so
/// disabled telemetry costs nothing measurable.
///
/// `Debug` is a supertrait so the hierarchy stays `derive(Debug)`-able
/// with a sink installed.
pub trait TelemetrySink: std::fmt::Debug {
    /// Handles one event. Called synchronously from the hierarchy's hot
    /// path — keep it cheap.
    fn record(&mut self, event: &TelemetryEvent);
}

impl TelemetrySink for Box<dyn TelemetrySink> {
    fn record(&mut self, event: &TelemetryEvent) {
        (**self).record(event);
    }
}

/// Discards every event. Useful to measure sink-dispatch overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&mut self, _event: &TelemetryEvent) {}
}

/// Counts events per [`EventKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    counts: [u64; EventKind::ALL.len()],
}

impl CountingSink {
    /// Events seen of `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(kind, count)` pairs for every kind with a nonzero count, without
    /// allocating — the scratch-buffer-friendly form of
    /// [`CountingSink::nonzero`].
    pub fn nonzero_iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL
            .iter()
            .filter(|k| self.count(**k) > 0)
            .map(|&k| (k, self.count(k)))
    }

    /// Writes the nonzero `(kind, count)` pairs into `out`, reusing its
    /// capacity (the vector is cleared first).
    pub fn nonzero_into(&self, out: &mut Vec<(EventKind, u64)>) {
        out.clear();
        out.extend(self.nonzero_iter());
    }

    /// `(kind, count)` pairs for every kind with a nonzero count.
    pub fn nonzero(&self) -> Vec<(EventKind, u64)> {
        self.nonzero_iter().collect()
    }
}

/// Checkpoint coverage: the per-kind counter array, in
/// [`EventKind::ALL`] order.
impl Snapshot for CountingSink {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64_slice(&self.counts);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.read_u64_slice_into(&mut self.counts, "event counts")
    }
}

impl TelemetrySink for CountingSink {
    fn record(&mut self, event: &TelemetryEvent) {
        self.counts[event.kind.index()] += 1;
    }
}

/// Keeps the last `capacity` events verbatim (a flight recorder).
#[derive(Debug, Clone)]
pub struct EventLog {
    events: std::collections::VecDeque<TelemetryEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// A log bounded to `capacity` events; older events are dropped first.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog {
            events: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TelemetrySink for EventLog {
    fn record(&mut self, event: &TelemetryEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }
}

/// Asserts the event stream arrives in non-decreasing instruction order.
///
/// The batched engine commits instructions in per-core runs rather than
/// one at a time; its equivalence to the serial loop includes the exact
/// event stream, so every event must still carry a monotonic global
/// `instr` stamp. This sink makes that property checkable from any run:
/// it panics on the first out-of-order event and keeps the high-water
/// mark and a total count for assertions.
#[derive(Debug, Clone, Default)]
pub struct OrderCheckSink {
    last: u64,
    seen: u64,
}

impl OrderCheckSink {
    /// A checker that accepts any first stamp.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events checked so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The latest (highest) instruction stamp observed.
    pub fn last_instr(&self) -> u64 {
        self.last
    }
}

impl TelemetrySink for OrderCheckSink {
    fn record(&mut self, event: &TelemetryEvent) {
        assert!(
            event.instr >= self.last,
            "telemetry order violated: event {:?} at instruction {} arrived after {}",
            event.kind,
            event.instr,
            self.last
        );
        self.last = event.instr;
        self.seen += 1;
    }
}

/// Shared handle around a sink, so the caller can keep reading a
/// collector after handing the hierarchy its own clone.
///
/// The hierarchy is single-threaded, so plain `Rc<RefCell<_>>` suffices.
#[derive(Debug, Default)]
pub struct SharedSink<T> {
    inner: Rc<RefCell<T>>,
}

impl<T> SharedSink<T> {
    /// Wraps `sink` for shared access.
    pub fn new(sink: T) -> Self {
        SharedSink {
            inner: Rc::new(RefCell::new(sink)),
        }
    }

    /// Runs `f` with a shared borrow of the sink.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Runs `f` with an exclusive borrow of the sink.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Extracts the sink if this is the last handle, else clones it.
    pub fn into_inner(self) -> T
    where
        T: Clone,
    {
        match Rc::try_unwrap(self.inner) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl<T> Clone for SharedSink<T> {
    fn clone(&self) -> Self {
        SharedSink {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: TelemetrySink> TelemetrySink for SharedSink<T> {
    fn record(&mut self, event: &TelemetryEvent) {
        self.inner.borrow_mut().record(event);
    }
}

/// Fans one event stream out to several sinks.
#[derive(Debug, Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink to the fan-out.
    #[must_use]
    pub fn with(mut self, sink: impl TelemetrySink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TelemetrySink for MultiSink {
    fn record(&mut self, event: &TelemetryEvent) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, instr: u64) -> TelemetryEvent {
        TelemetryEvent::global(kind, instr)
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.record(&ev(EventKind::QbsQuery, 1));
        sink.record(&ev(EventKind::QbsQuery, 2));
        sink.record(&ev(EventKind::TlhHint, 3));
        assert_eq!(sink.count(EventKind::QbsQuery), 2);
        assert_eq!(sink.count(EventKind::TlhHint), 1);
        assert_eq!(sink.count(EventKind::Prefetch), 0);
        assert_eq!(sink.total(), 3);
        assert_eq!(
            sink.nonzero(),
            vec![(EventKind::QbsQuery, 2), (EventKind::TlhHint, 1)]
        );
    }

    #[test]
    fn event_log_is_bounded() {
        let mut log = EventLog::new(2);
        for i in 0..5 {
            log.record(&ev(EventKind::LlcEviction, i));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let instrs: Vec<u64> = log.events().map(|e| e.instr).collect();
        assert_eq!(instrs, vec![3, 4]);
    }

    #[test]
    fn shared_sink_aliases_state() {
        let shared = SharedSink::new(CountingSink::default());
        let mut handle = shared.clone();
        handle.record(&ev(EventKind::EciRescue, 0));
        assert_eq!(shared.with(|c| c.count(EventKind::EciRescue)), 1);
        let inner = shared.into_inner();
        assert_eq!(inner.count(EventKind::EciRescue), 1);
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = SharedSink::new(CountingSink::default());
        let b = SharedSink::new(EventLog::new(8));
        let mut multi = MultiSink::new().with(a.clone()).with(b.clone());
        assert_eq!(multi.len(), 2);
        multi.record(&ev(EventKind::BackInvalidate, 9));
        assert_eq!(a.with(|c| c.total()), 1);
        assert_eq!(b.with(|l| l.len()), 1);
    }

    #[test]
    fn null_sink_ignores() {
        let mut sink = NullSink;
        sink.record(&ev(EventKind::Prefetch, 0));
    }

    #[test]
    fn order_check_accepts_monotonic_streams() {
        let mut sink = OrderCheckSink::new();
        for instr in [0, 1, 1, 3, 7, 7] {
            sink.record(&ev(EventKind::LlcEviction, instr));
        }
        assert_eq!(sink.seen(), 6);
        assert_eq!(sink.last_instr(), 7);
    }

    #[test]
    #[should_panic(expected = "telemetry order violated")]
    fn order_check_panics_on_regression() {
        let mut sink = OrderCheckSink::new();
        sink.record(&ev(EventKind::LlcEviction, 5));
        sink.record(&ev(EventKind::LlcEviction, 4));
    }
}
