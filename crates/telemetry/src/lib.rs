//! Structured telemetry for the TLA simulator.
//!
//! The paper's whole argument rests on counting things — inclusion
//! victims, QBS queries and rejections, ECI invalidations and rescues,
//! TLH hint volume — and end-of-run totals hide where those events
//! actually happen. This crate makes every run inspectable:
//!
//! * [`TelemetrySink`] — a zero-cost-when-disabled event hook the cache
//!   hierarchy drives at every policy-relevant event ([`TelemetryEvent`]).
//! * [`WindowedSeries`] — snapshots per-core and global counters every N
//!   instructions so MPKI, inclusion-victim rate and QBS rejection rate
//!   can be plotted over time instead of only summed.
//! * [`PerSetHistogram`] — evictions and inclusion victims per LLC set,
//!   exposing hot-set skew.
//! * [`RunReport`] — a machine-readable report (config echo, final stats,
//!   time series, histograms) with a JSON encoding that round-trips
//!   through the bundled parser ([`json::JsonValue`]).
//!
//! The workspace builds fully offline, so the JSON layer is bundled
//! rather than pulled from crates.io.
//!
//! # Examples
//!
//! ```
//! use tla_telemetry::{CountingSink, EventKind, SharedSink, TelemetryEvent, TelemetrySink};
//!
//! let shared = SharedSink::new(CountingSink::default());
//! let mut sink = shared.clone();
//! sink.record(&TelemetryEvent::global(EventKind::LlcEviction, 10).with_set(3));
//! assert_eq!(shared.with(|c| c.count(EventKind::LlcEviction)), 1);
//! ```

mod event;
mod histogram;
pub mod json;
mod report;
mod reuse;
mod sink;
mod window;

pub use event::{EventKind, TelemetryEvent};
pub use histogram::{PerSetHistogram, SetHistogramSummary};
pub use report::{
    ConfigEcho, IoReport, ReportError, ReuseReport, RunReport, SetHistogramReport, ThreadReport,
    SCHEMA_VERSION,
};
pub use reuse::{
    ReuseError, ReuseHistogram, ReuseProfiler, DEFAULT_REUSE_BUCKETS, DEFAULT_SAMPLE_EVERY,
};
pub use sink::{
    CountingSink, EventLog, MultiSink, NullSink, OrderCheckSink, SharedSink, TelemetrySink,
};
pub use window::{Window, WindowedSeries};
