//! Windowed time-series collection over the hierarchy's counters.

use tla_types::{GlobalStats, PerCoreStats};

/// Counter deltas for one window of execution.
///
/// `per_core` and `global` hold the *difference* over the window
/// (computed with [`PerCoreStats::since`] / [`GlobalStats::since`]), not
/// cumulative totals, so windows can be plotted or diffed directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// 0-based position in the series.
    pub index: usize,
    /// Total committed instructions (across all cores) when the window
    /// opened.
    pub start_instr: u64,
    /// Total committed instructions when the window closed.
    pub end_instr: u64,
    /// Per-core counter deltas over the window.
    pub per_core: Vec<PerCoreStats>,
    /// Global counter deltas over the window.
    pub global: GlobalStats,
}

impl Window {
    /// Instructions committed inside the window.
    pub fn instructions(&self) -> u64 {
        self.end_instr - self.start_instr
    }

    /// LLC misses per thousand instructions inside the window.
    pub fn llc_mpki(&self) -> f64 {
        per_kilo_instr(self.per_core.iter().map(|c| c.llc_misses).sum(), self)
    }

    /// Inclusion victims (L1 + L2) per thousand instructions.
    pub fn inclusion_victim_rate(&self) -> f64 {
        per_kilo_instr(
            self.per_core.iter().map(|c| c.inclusion_victims()).sum(),
            self,
        )
    }

    /// Fraction of QBS queries inside the window that rejected their
    /// candidate (`0.0` when no queries were made).
    pub fn qbs_rejection_rate(&self) -> f64 {
        if self.global.qbs_queries == 0 {
            0.0
        } else {
            self.global.qbs_rejections as f64 / self.global.qbs_queries as f64
        }
    }
}

fn per_kilo_instr(count: u64, w: &Window) -> f64 {
    if w.instructions() == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / w.instructions() as f64
    }
}

/// Closes a [`Window`] every `window` committed instructions.
///
/// Drive it with [`WindowedSeries::observe`] from the simulation loop
/// (any granularity at or finer than the window size works; windows close
/// at the first observation at or past each boundary) and call
/// [`WindowedSeries::finish`] once at the end to flush the final partial
/// window.
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    window: u64,
    next_boundary: u64,
    last_instr: u64,
    last_per_core: Vec<PerCoreStats>,
    last_global: GlobalStats,
    windows: Vec<Window>,
}

impl WindowedSeries {
    /// A collector closing a window every `window` instructions.
    ///
    /// A zero `window` is clamped to 1 (a window per instruction): the
    /// boundary arithmetic divides by the window size, and a panic deep
    /// inside a long run is a far worse failure mode than a very chatty
    /// series. Front ends reject 0 with a proper error before it gets
    /// here (see `tla-cli`'s `--window` validation).
    pub fn new(window: u64) -> Self {
        let window = window.max(1);
        WindowedSeries {
            window,
            next_boundary: window,
            last_instr: 0,
            last_per_core: Vec::new(),
            last_global: GlobalStats::default(),
            windows: Vec::new(),
        }
    }

    /// Window size in instructions.
    pub fn window_size(&self) -> u64 {
        self.window
    }

    /// The instruction count at which the next window closes.
    ///
    /// Observations strictly before this boundary cannot close a window,
    /// so a driver committing one instruction at a time may skip
    /// [`WindowedSeries::observe`] (and the counter snapshotting feeding
    /// it) until `instr >= next_boundary()` — the whole telemetry cost
    /// between boundaries collapses to one integer compare.
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// Offers the current cumulative counters at `instr` total committed
    /// instructions. Closes (possibly several) windows if `instr` crossed
    /// their boundaries.
    pub fn observe(&mut self, instr: u64, per_core: &[PerCoreStats], global: &GlobalStats) {
        if self.last_per_core.len() != per_core.len() {
            self.last_per_core = vec![PerCoreStats::default(); per_core.len()];
        }
        if instr >= self.next_boundary {
            self.close(instr, per_core, global);
            // Re-align so boundaries stay multiples of the window size even
            // when one observation jumps several windows ahead.
            self.next_boundary = (instr / self.window + 1) * self.window;
        }
    }

    /// Flushes the final partial window, if any instructions were
    /// committed since the last closed window.
    pub fn finish(&mut self, instr: u64, per_core: &[PerCoreStats], global: &GlobalStats) {
        if self.last_per_core.len() != per_core.len() {
            self.last_per_core = vec![PerCoreStats::default(); per_core.len()];
        }
        if instr > self.last_instr {
            self.close(instr, per_core, global);
        }
    }

    fn close(&mut self, instr: u64, per_core: &[PerCoreStats], global: &GlobalStats) {
        let deltas: Vec<PerCoreStats> = per_core
            .iter()
            .zip(&self.last_per_core)
            .map(|(now, then)| now.since(then))
            .collect();
        self.windows.push(Window {
            index: self.windows.len(),
            start_instr: self.last_instr,
            end_instr: instr,
            per_core: deltas,
            global: global.since(&self.last_global),
        });
        self.last_instr = instr;
        self.last_per_core.copy_from_slice(per_core);
        self.last_global = *global;
    }

    /// Closed windows so far.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Consumes the collector, returning its windows.
    pub fn take(self) -> Vec<Window> {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_stats(llc_misses: u64, victims: u64) -> PerCoreStats {
        PerCoreStats {
            llc_misses,
            inclusion_victims_l1: victims,
            ..Default::default()
        }
    }

    #[test]
    fn windows_hold_exact_since_deltas_at_boundaries() {
        let mut series = WindowedSeries::new(100);
        let g1 = GlobalStats {
            qbs_queries: 10,
            qbs_rejections: 4,
            ..Default::default()
        };
        series.observe(100, &[core_stats(5, 2)], &g1);
        let g2 = GlobalStats {
            qbs_queries: 30,
            qbs_rejections: 5,
            ..Default::default()
        };
        series.observe(200, &[core_stats(9, 2)], &g2);

        let w = series.windows();
        assert_eq!(w.len(), 2);
        // First window: deltas from zero.
        assert_eq!(w[0].start_instr, 0);
        assert_eq!(w[0].end_instr, 100);
        assert_eq!(w[0].per_core[0].llc_misses, 5);
        assert_eq!(w[0].global.qbs_queries, 10);
        // Second window: exactly the difference of the cumulative stats.
        assert_eq!(w[1].start_instr, 100);
        assert_eq!(w[1].end_instr, 200);
        assert_eq!(w[1].per_core[0].llc_misses, 4);
        assert_eq!(w[1].per_core[0].inclusion_victims_l1, 0);
        assert_eq!(w[1].global.qbs_queries, 20);
        assert_eq!(w[1].global.qbs_rejections, 1);
        // The two windows sum back to the cumulative totals.
        assert_eq!(w[0].per_core[0].llc_misses + w[1].per_core[0].llc_misses, 9);
    }

    #[test]
    fn observations_between_boundaries_do_not_close() {
        let mut series = WindowedSeries::new(1000);
        for instr in (100..=900).step_by(100) {
            series.observe(
                instr,
                &[core_stats(instr / 100, 0)],
                &GlobalStats::default(),
            );
        }
        assert!(series.windows().is_empty());
        series.observe(1000, &[core_stats(10, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        assert_eq!(series.windows()[0].per_core[0].llc_misses, 10);
    }

    #[test]
    fn late_observation_closes_one_window_and_realigns() {
        let mut series = WindowedSeries::new(100);
        // First observation lands far past several boundaries: one window
        // covers the whole span, and the next boundary re-aligns.
        series.observe(350, &[core_stats(7, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        assert_eq!(series.windows()[0].end_instr, 350);
        series.observe(399, &[core_stats(8, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        series.observe(400, &[core_stats(9, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 2);
        assert_eq!(series.windows()[1].start_instr, 350);
        assert_eq!(series.windows()[1].end_instr, 400);
        assert_eq!(series.windows()[1].per_core[0].llc_misses, 2);
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut series = WindowedSeries::new(100);
        series.observe(100, &[core_stats(3, 1)], &GlobalStats::default());
        series.finish(140, &[core_stats(5, 1)], &GlobalStats::default());
        let w = series.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].start_instr, 100);
        assert_eq!(w[1].end_instr, 140);
        assert_eq!(w[1].instructions(), 40);
        assert_eq!(w[1].per_core[0].llc_misses, 2);
    }

    #[test]
    fn finish_with_no_progress_adds_nothing() {
        let mut series = WindowedSeries::new(100);
        series.observe(100, &[core_stats(3, 0)], &GlobalStats::default());
        series.finish(100, &[core_stats(3, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
    }

    #[test]
    fn derived_rates() {
        let w = Window {
            index: 0,
            start_instr: 0,
            end_instr: 2000,
            per_core: vec![core_stats(10, 4), core_stats(6, 0)],
            global: GlobalStats {
                qbs_queries: 8,
                qbs_rejections: 2,
                ..Default::default()
            },
        };
        assert!((w.llc_mpki() - 8.0).abs() < 1e-12);
        assert!((w.inclusion_victim_rate() - 2.0).abs() < 1e-12);
        assert!((w.qbs_rejection_rate() - 0.25).abs() < 1e-12);
        let empty = Window {
            end_instr: 0,
            global: GlobalStats::default(),
            ..w
        };
        assert_eq!(empty.llc_mpki(), 0.0);
        assert_eq!(empty.qbs_rejection_rate(), 0.0);
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let mut series = WindowedSeries::new(0);
        assert_eq!(series.window_size(), 1);
        assert_eq!(series.next_boundary(), 1);
        // No division-by-zero on the realignment path.
        series.observe(3, &[core_stats(1, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        assert_eq!(series.next_boundary(), 4);
    }

    #[test]
    fn boundary_only_observation_matches_per_instruction_driving() {
        // The hot loop may consult `next_boundary` and skip observe()
        // between boundaries; the resulting series must be identical to
        // observing after every instruction.
        let drive = |skip: bool| {
            let mut series = WindowedSeries::new(50);
            for instr in 1..=237u64 {
                if skip && instr < series.next_boundary() {
                    continue;
                }
                series.observe(
                    instr,
                    &[core_stats(instr / 3, instr / 7)],
                    &GlobalStats {
                        qbs_queries: instr,
                        ..Default::default()
                    },
                );
            }
            series.finish(
                237,
                &[core_stats(237 / 3, 237 / 7)],
                &GlobalStats {
                    qbs_queries: 237,
                    ..Default::default()
                },
            );
            series.take()
        };
        assert_eq!(drive(false), drive(true));
    }
}
