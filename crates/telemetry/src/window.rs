//! Windowed time-series collection over the hierarchy's counters.

use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{GlobalStats, PerCoreStats};

/// Counter deltas for one window of execution.
///
/// `per_core` and `global` hold the *difference* over the window
/// (computed with [`PerCoreStats::since`] / [`GlobalStats::since`]), not
/// cumulative totals, so windows can be plotted or diffed directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// 0-based position in the series.
    pub index: usize,
    /// Total committed instructions (across all cores) when the window
    /// opened.
    pub start_instr: u64,
    /// Total committed instructions when the window closed.
    pub end_instr: u64,
    /// Per-core counter deltas over the window.
    pub per_core: Vec<PerCoreStats>,
    /// Global counter deltas over the window.
    pub global: GlobalStats,
}

impl Window {
    /// Instructions committed inside the window.
    pub fn instructions(&self) -> u64 {
        self.end_instr - self.start_instr
    }

    /// LLC misses per thousand instructions inside the window.
    pub fn llc_mpki(&self) -> f64 {
        per_kilo_instr(self.per_core.iter().map(|c| c.llc_misses).sum(), self)
    }

    /// Inclusion victims (L1 + L2) per thousand instructions.
    pub fn inclusion_victim_rate(&self) -> f64 {
        per_kilo_instr(
            self.per_core.iter().map(|c| c.inclusion_victims()).sum(),
            self,
        )
    }

    /// Fraction of QBS queries inside the window that rejected their
    /// candidate (`0.0` when no queries were made).
    pub fn qbs_rejection_rate(&self) -> f64 {
        if self.global.qbs_queries == 0 {
            0.0
        } else {
            self.global.qbs_rejections as f64 / self.global.qbs_queries as f64
        }
    }
}

fn per_kilo_instr(count: u64, w: &Window) -> f64 {
    if w.instructions() == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / w.instructions() as f64
    }
}

/// Closes a [`Window`] every `window` committed instructions.
///
/// Drive it with [`WindowedSeries::observe`] from the simulation loop
/// (any granularity at or finer than the window size works; windows close
/// at the first observation at or past each boundary) and call
/// [`WindowedSeries::finish`] once at the end to flush the final partial
/// window.
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    window: u64,
    next_boundary: u64,
    last_instr: u64,
    last_per_core: Vec<PerCoreStats>,
    last_global: GlobalStats,
    // Closed windows live in flat storage — one `WindowMeta` per window,
    // its per-core deltas at `deltas[meta.deltas_start..][..meta.n_cores]`
    // — so closing a window costs amortized zero allocations (both
    // vectors grow geometrically), the same reusable-buffer treatment the
    // LLC miss path's `order_buf` got. [`Window`] values are only
    // materialized on read-out.
    meta: Vec<WindowMeta>,
    deltas: Vec<PerCoreStats>,
}

/// Flat-storage record of one closed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WindowMeta {
    start_instr: u64,
    end_instr: u64,
    global: GlobalStats,
    deltas_start: usize,
    n_cores: usize,
}

impl WindowedSeries {
    /// A collector closing a window every `window` instructions.
    ///
    /// A zero `window` is clamped to 1 (a window per instruction): the
    /// boundary arithmetic divides by the window size, and a panic deep
    /// inside a long run is a far worse failure mode than a very chatty
    /// series. Front ends reject 0 with a proper error before it gets
    /// here (see `tla-cli`'s `--window` validation).
    pub fn new(window: u64) -> Self {
        let window = window.max(1);
        WindowedSeries {
            window,
            next_boundary: window,
            last_instr: 0,
            last_per_core: Vec::new(),
            last_global: GlobalStats::default(),
            meta: Vec::new(),
            deltas: Vec::new(),
        }
    }

    /// Window size in instructions.
    pub fn window_size(&self) -> u64 {
        self.window
    }

    /// The instruction count at which the next window closes.
    ///
    /// Observations strictly before this boundary cannot close a window,
    /// so a driver committing one instruction at a time may skip
    /// [`WindowedSeries::observe`] (and the counter snapshotting feeding
    /// it) until `instr >= next_boundary()` — the whole telemetry cost
    /// between boundaries collapses to one integer compare.
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// Offers the current cumulative counters at `instr` total committed
    /// instructions. Closes (possibly several) windows if `instr` crossed
    /// their boundaries.
    pub fn observe(&mut self, instr: u64, per_core: &[PerCoreStats], global: &GlobalStats) {
        if self.last_per_core.len() != per_core.len() {
            self.last_per_core = vec![PerCoreStats::default(); per_core.len()];
        }
        if instr >= self.next_boundary {
            self.close(instr, per_core, global);
            // Re-align so boundaries stay multiples of the window size even
            // when one observation jumps several windows ahead.
            self.next_boundary = (instr / self.window + 1) * self.window;
        }
    }

    /// Flushes the final partial window, if any instructions were
    /// committed since the last closed window.
    pub fn finish(&mut self, instr: u64, per_core: &[PerCoreStats], global: &GlobalStats) {
        if self.last_per_core.len() != per_core.len() {
            self.last_per_core = vec![PerCoreStats::default(); per_core.len()];
        }
        if instr > self.last_instr {
            self.close(instr, per_core, global);
        }
    }

    fn close(&mut self, instr: u64, per_core: &[PerCoreStats], global: &GlobalStats) {
        let deltas_start = self.deltas.len();
        self.deltas.extend(
            per_core
                .iter()
                .zip(&self.last_per_core)
                .map(|(now, then)| now.since(then)),
        );
        self.meta.push(WindowMeta {
            start_instr: self.last_instr,
            end_instr: instr,
            global: global.since(&self.last_global),
            deltas_start,
            n_cores: self.deltas.len() - deltas_start,
        });
        self.last_instr = instr;
        self.last_per_core.copy_from_slice(per_core);
        self.last_global = *global;
    }

    /// Number of closed windows so far.
    pub fn window_count(&self) -> usize {
        self.meta.len()
    }

    /// Materializes one closed window out of the flat storage.
    fn window_at(&self, index: usize) -> Window {
        let m = &self.meta[index];
        Window {
            index,
            start_instr: m.start_instr,
            end_instr: m.end_instr,
            per_core: self.deltas[m.deltas_start..][..m.n_cores].to_vec(),
            global: m.global,
        }
    }

    /// Closed windows so far, materialized (allocates; read-out path, not
    /// the hot loop).
    pub fn windows(&self) -> Vec<Window> {
        (0..self.meta.len()).map(|i| self.window_at(i)).collect()
    }

    /// Consumes the collector, returning its windows.
    pub fn take(self) -> Vec<Window> {
        self.windows()
    }
}

/// Checkpoint coverage: the boundary clocks, the last-seen cumulative
/// counters and every closed window. The window *size* is configuration
/// and must match the receiver's — resuming a run under a different
/// window size would splice incompatible series.
impl Snapshot for WindowedSeries {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.window);
        w.write_u64(self.next_boundary);
        w.write_u64(self.last_instr);
        w.write_usize(self.last_per_core.len());
        for s in &self.last_per_core {
            s.write_state(w);
        }
        self.last_global.write_state(w);
        w.write_usize(self.meta.len());
        for m in &self.meta {
            w.write_u64(m.start_instr);
            w.write_u64(m.end_instr);
            m.global.write_state(w);
            w.write_usize(m.deltas_start);
            w.write_usize(m.n_cores);
        }
        w.write_usize(self.deltas.len());
        for s in &self.deltas {
            s.write_state(w);
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let window = r.read_u64()?;
        if window != self.window {
            return Err(SnapshotError::Mismatch(format!(
                "windowed series: snapshot uses a {window}-instruction window, \
                 this run is configured for {}",
                self.window
            )));
        }
        self.next_boundary = r.read_u64()?;
        self.last_instr = r.read_u64()?;
        let n = r.read_usize()?;
        self.last_per_core.clear();
        self.last_per_core.resize(n, PerCoreStats::default());
        for s in &mut self.last_per_core {
            s.read_state(r)?;
        }
        self.last_global.read_state(r)?;
        let n_meta = r.read_usize()?;
        self.meta.clear();
        for _ in 0..n_meta {
            let start_instr = r.read_u64()?;
            let end_instr = r.read_u64()?;
            let mut global = GlobalStats::default();
            global.read_state(r)?;
            let deltas_start = r.read_usize()?;
            let n_cores = r.read_usize()?;
            self.meta.push(WindowMeta {
                start_instr,
                end_instr,
                global,
                deltas_start,
                n_cores,
            });
        }
        let n_deltas = r.read_usize()?;
        self.deltas.clear();
        self.deltas.resize(n_deltas, PerCoreStats::default());
        for s in &mut self.deltas {
            s.read_state(r)?;
        }
        if let Some(m) = self.meta.last() {
            if m.deltas_start + m.n_cores > self.deltas.len() {
                return Err(SnapshotError::Corrupt(
                    "windowed series: window metadata points past the delta storage".to_string(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_stats(llc_misses: u64, victims: u64) -> PerCoreStats {
        PerCoreStats {
            llc_misses,
            inclusion_victims_l1: victims,
            ..Default::default()
        }
    }

    #[test]
    fn windows_hold_exact_since_deltas_at_boundaries() {
        let mut series = WindowedSeries::new(100);
        let g1 = GlobalStats {
            qbs_queries: 10,
            qbs_rejections: 4,
            ..Default::default()
        };
        series.observe(100, &[core_stats(5, 2)], &g1);
        let g2 = GlobalStats {
            qbs_queries: 30,
            qbs_rejections: 5,
            ..Default::default()
        };
        series.observe(200, &[core_stats(9, 2)], &g2);

        let w = series.windows();
        assert_eq!(w.len(), 2);
        // First window: deltas from zero.
        assert_eq!(w[0].start_instr, 0);
        assert_eq!(w[0].end_instr, 100);
        assert_eq!(w[0].per_core[0].llc_misses, 5);
        assert_eq!(w[0].global.qbs_queries, 10);
        // Second window: exactly the difference of the cumulative stats.
        assert_eq!(w[1].start_instr, 100);
        assert_eq!(w[1].end_instr, 200);
        assert_eq!(w[1].per_core[0].llc_misses, 4);
        assert_eq!(w[1].per_core[0].inclusion_victims_l1, 0);
        assert_eq!(w[1].global.qbs_queries, 20);
        assert_eq!(w[1].global.qbs_rejections, 1);
        // The two windows sum back to the cumulative totals.
        assert_eq!(w[0].per_core[0].llc_misses + w[1].per_core[0].llc_misses, 9);
    }

    #[test]
    fn observations_between_boundaries_do_not_close() {
        let mut series = WindowedSeries::new(1000);
        for instr in (100..=900).step_by(100) {
            series.observe(
                instr,
                &[core_stats(instr / 100, 0)],
                &GlobalStats::default(),
            );
        }
        assert!(series.windows().is_empty());
        series.observe(1000, &[core_stats(10, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        assert_eq!(series.windows()[0].per_core[0].llc_misses, 10);
    }

    #[test]
    fn late_observation_closes_one_window_and_realigns() {
        let mut series = WindowedSeries::new(100);
        // First observation lands far past several boundaries: one window
        // covers the whole span, and the next boundary re-aligns.
        series.observe(350, &[core_stats(7, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        assert_eq!(series.windows()[0].end_instr, 350);
        series.observe(399, &[core_stats(8, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        series.observe(400, &[core_stats(9, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 2);
        assert_eq!(series.windows()[1].start_instr, 350);
        assert_eq!(series.windows()[1].end_instr, 400);
        assert_eq!(series.windows()[1].per_core[0].llc_misses, 2);
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut series = WindowedSeries::new(100);
        series.observe(100, &[core_stats(3, 1)], &GlobalStats::default());
        series.finish(140, &[core_stats(5, 1)], &GlobalStats::default());
        let w = series.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[1].start_instr, 100);
        assert_eq!(w[1].end_instr, 140);
        assert_eq!(w[1].instructions(), 40);
        assert_eq!(w[1].per_core[0].llc_misses, 2);
    }

    #[test]
    fn finish_with_no_progress_adds_nothing() {
        let mut series = WindowedSeries::new(100);
        series.observe(100, &[core_stats(3, 0)], &GlobalStats::default());
        series.finish(100, &[core_stats(3, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
    }

    #[test]
    fn derived_rates() {
        let w = Window {
            index: 0,
            start_instr: 0,
            end_instr: 2000,
            per_core: vec![core_stats(10, 4), core_stats(6, 0)],
            global: GlobalStats {
                qbs_queries: 8,
                qbs_rejections: 2,
                ..Default::default()
            },
        };
        assert!((w.llc_mpki() - 8.0).abs() < 1e-12);
        assert!((w.inclusion_victim_rate() - 2.0).abs() < 1e-12);
        assert!((w.qbs_rejection_rate() - 0.25).abs() < 1e-12);
        let empty = Window {
            end_instr: 0,
            global: GlobalStats::default(),
            ..w
        };
        assert_eq!(empty.llc_mpki(), 0.0);
        assert_eq!(empty.qbs_rejection_rate(), 0.0);
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let mut series = WindowedSeries::new(0);
        assert_eq!(series.window_size(), 1);
        assert_eq!(series.next_boundary(), 1);
        // No division-by-zero on the realignment path.
        series.observe(3, &[core_stats(1, 0)], &GlobalStats::default());
        assert_eq!(series.windows().len(), 1);
        assert_eq!(series.next_boundary(), 4);
    }

    #[test]
    fn snapshot_round_trip_preserves_series_state() {
        let mut series = WindowedSeries::new(100);
        series.observe(100, &[core_stats(5, 2)], &GlobalStats::default());
        series.observe(
            200,
            &[core_stats(9, 2)],
            &GlobalStats {
                qbs_queries: 3,
                ..Default::default()
            },
        );
        let mut w = SnapshotWriter::new();
        series.write_state(&mut w);
        let bytes = w.finish();

        let mut restored = WindowedSeries::new(100);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.read_state(&mut r).unwrap();
        assert_eq!(restored.window_count(), 2);
        assert_eq!(restored.next_boundary(), series.next_boundary());
        assert_eq!(restored.windows(), series.windows());

        // Both continue identically.
        let g = GlobalStats {
            qbs_queries: 5,
            ..Default::default()
        };
        series.finish(250, &[core_stats(11, 3)], &g);
        restored.finish(250, &[core_stats(11, 3)], &g);
        assert_eq!(series.take(), restored.take());

        // Window-size mismatch is rejected with a descriptive error.
        let mut wrong = WindowedSeries::new(50);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = wrong.read_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("window"), "got: {err}");
    }

    #[test]
    fn boundary_only_observation_matches_per_instruction_driving() {
        // The hot loop may consult `next_boundary` and skip observe()
        // between boundaries; the resulting series must be identical to
        // observing after every instruction.
        let drive = |skip: bool| {
            let mut series = WindowedSeries::new(50);
            for instr in 1..=237u64 {
                if skip && instr < series.next_boundary() {
                    continue;
                }
                series.observe(
                    instr,
                    &[core_stats(instr / 3, instr / 7)],
                    &GlobalStats {
                        qbs_queries: instr,
                        ..Default::default()
                    },
                );
            }
            series.finish(
                237,
                &[core_stats(237 / 3, 237 / 7)],
                &GlobalStats {
                    qbs_queries: 237,
                    ..Default::default()
                },
            );
            series.take()
        };
        assert_eq!(drive(false), drive(true));
    }
}
