//! Machine-readable run reports.
//!
//! A [`RunReport`] bundles everything one simulation run produced —
//! config echo, per-thread and global counters, the windowed time series
//! and per-set histograms — into a single value with a stable JSON
//! encoding, so benches and CI can diff runs instead of scraping tables.
//! Encoding and parsing use the bundled [`crate::json`] layer and
//! round-trip exactly ([`RunReport::to_json`] → [`RunReport::from_json`]
//! is the identity).

use crate::event::EventKind;
use crate::histogram::PerSetHistogram;
use crate::json::{JsonError, JsonValue};
use crate::reuse::{ReuseHistogram, ReuseProfiler};
use crate::window::Window;
use std::fmt;
use tla_types::{GlobalStats, IoAgentStats, IoStats, PerCoreStats};

/// Version stamp written into every report; bump on breaking schema
/// changes so downstream tooling can detect them.
///
/// v2: miss-classification counters (`misses_cold` / `misses_capacity` /
/// `misses_inclusion_victim`) joined the per-core stats, victim-cause
/// counters joined the global stats, and reports may carry optional
/// gap-to-optimal (`opt_misses`, `gap_to_opt`, `inclusion_victim_rate`),
/// reuse-distance (`reuse`) and device-injection (`io`) payloads (the
/// `io` block is a v2-compatible optional addition: reports without
/// device agents encode byte-identically to pre-`io` builds).
pub const SCHEMA_VERSION: u64 = 2;

/// Ordered key → value echo of the configuration a run used.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigEcho {
    entries: Vec<(String, JsonValue)>,
}

impl ConfigEcho {
    /// An empty echo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry (replacing any existing entry with the key).
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) {
        let value = value.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Builder-style [`ConfigEcho::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[(String, JsonValue)] {
        &self.entries
    }
}

/// Final statistics of one thread of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Workload name (e.g. `"libquantum"`).
    pub app: String,
    /// Instructions committed in the measured phase.
    pub instructions: u64,
    /// Cycles the measured phase took.
    pub cycles: u64,
    /// Demand-access counters over the measured phase.
    pub stats: PerCoreStats,
}

impl ThreadReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Per-set histogram payload of a report (a plain snapshot of a
/// [`PerSetHistogram`], without its reservoir bookkeeping).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetHistogramReport {
    /// LLC evictions per set.
    pub evictions: Vec<u32>,
    /// Inclusion victims (back-invalidates) per set.
    pub inclusion_victims: Vec<u32>,
}

impl SetHistogramReport {
    /// Refills this report from `h`, reusing the existing vector capacity
    /// (the scratch-buffer form of `SetHistogramReport::from`).
    pub fn refill(&mut self, h: &PerSetHistogram) {
        self.evictions.clear();
        self.evictions.extend_from_slice(h.evictions());
        self.inclusion_victims.clear();
        self.inclusion_victims
            .extend_from_slice(h.inclusion_victims());
    }
}

impl From<&PerSetHistogram> for SetHistogramReport {
    fn from(h: &PerSetHistogram) -> Self {
        let mut report = SetHistogramReport::default();
        report.refill(h);
        report
    }
}

/// Reuse-distance payload of a report: the profiler's global histogram
/// plus one histogram per sampled LLC set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseReport {
    /// The set-sampling stride the profiler used.
    pub sample_every: u32,
    /// Aggregate over every sampled set.
    pub global: ReuseHistogram,
    /// `(set index, histogram)` per sampled set, ascending.
    pub per_set: Vec<(u32, ReuseHistogram)>,
}

impl From<&ReuseProfiler> for ReuseReport {
    fn from(p: &ReuseProfiler) -> Self {
        ReuseReport {
            sample_every: p.sample_every(),
            global: p.global().clone(),
            per_set: p.per_set().map(|(s, h)| (s, h.clone())).collect(),
        }
    }
}

fn reuse_to_json(r: &ReuseReport) -> JsonValue {
    JsonValue::object([
        ("sample_every", JsonValue::from(r.sample_every)),
        ("global", r.global.to_json()),
        (
            "per_set",
            JsonValue::array(r.per_set.iter().map(|(set, h)| {
                let mut obj = vec![("set".to_string(), JsonValue::from(*set))];
                if let JsonValue::Obj(pairs) = h.to_json() {
                    obj.extend(pairs);
                }
                JsonValue::Obj(obj)
            })),
        ),
    ])
}

fn reuse_from_json(v: &JsonValue) -> Result<ReuseReport, ReportError> {
    let sample_every = field_u64(v, "sample_every")?;
    if sample_every == 0 || sample_every > u32::MAX as u64 {
        return Err(ReportError::new("bad 'sample_every'"));
    }
    let global = ReuseHistogram::from_json(field(v, "global")?)
        .ok_or_else(|| ReportError::new("bad 'global' reuse histogram"))?;
    let per_set = field(v, "per_set")?
        .as_array()
        .ok_or_else(|| ReportError::new("'per_set' is not an array"))?
        .iter()
        .map(|e| {
            let set = field_u64(e, "set")?;
            if set > u32::MAX as u64 {
                return Err(ReportError::new("bad per-set 'set' index"));
            }
            let h = ReuseHistogram::from_json(e)
                .ok_or_else(|| ReportError::new("bad per-set reuse histogram"))?;
            Ok((set as u32, h))
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(ReuseReport {
        sample_every: sample_every as u32,
        global,
        per_set,
    })
}

/// Device-injection payload of a report: the aggregate DDIO-style
/// injection counters plus one labelled counter block per I/O agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoReport {
    /// Aggregate injection counters across all agents.
    pub stats: IoStats,
    /// `(agent label, counters)` in agent order, e.g. `("nic:4:512", …)`.
    pub agents: Vec<(String, IoAgentStats)>,
}

fn io_to_json(r: &IoReport) -> JsonValue {
    JsonValue::object([
        (
            "stats",
            JsonValue::object(
                IO_FIELDS
                    .iter()
                    .map(|(name, get, _)| (*name, JsonValue::from(get(&r.stats)))),
            ),
        ),
        (
            "agents",
            JsonValue::array(r.agents.iter().map(|(label, s)| {
                let mut obj = vec![("agent".to_string(), JsonValue::from(label.as_str()))];
                obj.extend(
                    IO_AGENT_FIELDS
                        .iter()
                        .map(|(name, get, _)| (name.to_string(), JsonValue::from(get(s)))),
                );
                JsonValue::Obj(obj)
            })),
        ),
    ])
}

fn io_from_json(v: &JsonValue) -> Result<IoReport, ReportError> {
    let stats_v = field(v, "stats")?;
    let mut stats = IoStats::default();
    for (name, _, get_mut) in &IO_FIELDS {
        *get_mut(&mut stats) = field_u64(stats_v, name)?;
    }
    let agents = field(v, "agents")?
        .as_array()
        .ok_or_else(|| ReportError::new("'agents' is not an array"))?
        .iter()
        .map(|a| {
            let label = field_str(a, "agent")?;
            let mut s = IoAgentStats::default();
            for (name, _, get_mut) in &IO_AGENT_FIELDS {
                *get_mut(&mut s) = field_u64(a, name)?;
            }
            Ok((label, s))
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(IoReport { stats, agents })
}

/// Everything one run produced, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Mix label, e.g. `"lib+sje"`.
    pub mix: String,
    /// Policy label, e.g. `"QBS"`.
    pub policy: String,
    /// Echo of the configuration the run used.
    pub config: ConfigEcho,
    /// One entry per thread, in core order.
    pub threads: Vec<ThreadReport>,
    /// Whole-hierarchy counters over the measured phase.
    pub global: GlobalStats,
    /// Total telemetry events per kind (only kinds that fired).
    pub event_totals: Vec<(EventKind, u64)>,
    /// Window size in instructions, when a time series was collected.
    pub window_size: Option<u64>,
    /// Windowed counter deltas, oldest first.
    pub windows: Vec<Window>,
    /// Per-set histograms, when collected.
    pub set_histogram: Option<SetHistogramReport>,
    /// Belady MIN oracle miss count for this mix/config, when computed.
    pub opt_misses: Option<u64>,
    /// `(llc_misses - opt_misses) / opt_misses`, when the oracle ran.
    pub gap_to_opt: Option<f64>,
    /// Fraction of core-cache misses classified as inclusion-victim
    /// misses, when attribution was summarized into the report.
    pub inclusion_victim_rate: Option<f64>,
    /// Reuse-distance histograms, when the profiler was attached.
    pub reuse: Option<ReuseReport>,
    /// Device-injection counters, when I/O agents were configured.
    pub io: Option<IoReport>,
}

impl RunReport {
    /// Sum of thread throughputs (IPCs).
    pub fn throughput(&self) -> f64 {
        self.threads.iter().map(|t| t.ipc()).sum()
    }

    /// Fraction of L2 demand misses the attribution hooks classified as
    /// inclusion-victim misses, computed from the per-thread counters
    /// (the measured value behind the `inclusion_victim_rate` field).
    pub fn measured_victim_rate(&self) -> f64 {
        let victims: u64 = self
            .threads
            .iter()
            .map(|t| t.stats.misses_inclusion_victim)
            .sum();
        let misses: u64 = self.threads.iter().map(|t| t.stats.l2_misses).sum();
        if misses == 0 {
            0.0
        } else {
            victims as f64 / misses as f64
        }
    }

    /// Encodes the report as a JSON tree.
    pub fn to_json(&self) -> JsonValue {
        let mut top = vec![
            (
                "schema_version".to_string(),
                JsonValue::from(SCHEMA_VERSION),
            ),
            ("mix".to_string(), JsonValue::from(self.mix.as_str())),
            ("policy".to_string(), JsonValue::from(self.policy.as_str())),
            (
                "config".to_string(),
                JsonValue::Obj(self.config.entries().to_vec()),
            ),
            (
                "threads".to_string(),
                JsonValue::array(self.threads.iter().map(|t| {
                    JsonValue::object([
                        ("app", JsonValue::from(t.app.as_str())),
                        ("instructions", JsonValue::from(t.instructions)),
                        ("cycles", JsonValue::from(t.cycles)),
                        ("ipc", JsonValue::from(t.ipc())),
                        ("stats", per_core_to_json(&t.stats)),
                    ])
                })),
            ),
            ("global".to_string(), global_to_json(&self.global)),
            (
                "event_totals".to_string(),
                JsonValue::object(
                    self.event_totals
                        .iter()
                        .map(|(k, n)| (k.name(), JsonValue::from(*n))),
                ),
            ),
        ];
        if let Some(size) = self.window_size {
            top.push(("window_size".to_string(), JsonValue::from(size)));
        }
        top.push((
            "windows".to_string(),
            JsonValue::array(self.windows.iter().map(window_to_json)),
        ));
        if let Some(h) = &self.set_histogram {
            top.push((
                "set_histogram".to_string(),
                JsonValue::object([
                    ("sets", JsonValue::from(h.evictions.len())),
                    (
                        "evictions",
                        JsonValue::array(h.evictions.iter().map(|&c| JsonValue::from(c))),
                    ),
                    (
                        "inclusion_victims",
                        JsonValue::array(h.inclusion_victims.iter().map(|&c| JsonValue::from(c))),
                    ),
                ]),
            ));
        }
        if let Some(n) = self.opt_misses {
            top.push(("opt_misses".to_string(), JsonValue::from(n)));
        }
        if let Some(g) = self.gap_to_opt {
            top.push(("gap_to_opt".to_string(), JsonValue::from(g)));
        }
        if let Some(r) = self.inclusion_victim_rate {
            top.push(("inclusion_victim_rate".to_string(), JsonValue::from(r)));
        }
        if let Some(r) = &self.reuse {
            top.push(("reuse".to_string(), reuse_to_json(r)));
        }
        if let Some(io) = &self.io {
            top.push(("io".to_string(), io_to_json(io)));
        }
        JsonValue::Obj(top)
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decodes a report from a JSON tree produced by
    /// [`RunReport::to_json`]. Derived fields (`ipc`, per-window rates)
    /// are ignored; unknown keys are ignored for forward compatibility.
    pub fn from_json(v: &JsonValue) -> Result<RunReport, ReportError> {
        let version = field_u64(v, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(ReportError::new(format!(
                "unsupported schema version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let threads = field(v, "threads")?
            .as_array()
            .ok_or_else(|| ReportError::new("'threads' is not an array"))?
            .iter()
            .map(|t| {
                Ok(ThreadReport {
                    app: field_str(t, "app")?,
                    instructions: field_u64(t, "instructions")?,
                    cycles: field_u64(t, "cycles")?,
                    stats: per_core_from_json(field(t, "stats")?)?,
                })
            })
            .collect::<Result<Vec<_>, ReportError>>()?;
        let event_totals = match field(v, "event_totals")? {
            JsonValue::Obj(pairs) => pairs
                .iter()
                .map(|(name, count)| {
                    let kind = EventKind::from_name(name)
                        .ok_or_else(|| ReportError::new(format!("unknown event kind '{name}'")))?;
                    let count = count
                        .as_u64()
                        .ok_or_else(|| ReportError::new(format!("bad count for '{name}'")))?;
                    Ok((kind, count))
                })
                .collect::<Result<Vec<_>, ReportError>>()?,
            _ => return Err(ReportError::new("'event_totals' is not an object")),
        };
        let windows = field(v, "windows")?
            .as_array()
            .ok_or_else(|| ReportError::new("'windows' is not an array"))?
            .iter()
            .map(window_from_json)
            .collect::<Result<Vec<_>, ReportError>>()?;
        let set_histogram = match v.get("set_histogram") {
            None => None,
            Some(h) => Some(SetHistogramReport {
                evictions: u32_array(field(h, "evictions")?)?,
                inclusion_victims: u32_array(field(h, "inclusion_victims")?)?,
            }),
        };
        Ok(RunReport {
            mix: field_str(v, "mix")?,
            policy: field_str(v, "policy")?,
            config: ConfigEcho {
                entries: match field(v, "config")? {
                    JsonValue::Obj(pairs) => pairs.clone(),
                    _ => return Err(ReportError::new("'config' is not an object")),
                },
            },
            threads,
            global: global_from_json(field(v, "global")?)?,
            event_totals,
            window_size: match v.get("window_size") {
                None => None,
                Some(s) => Some(
                    s.as_u64()
                        .ok_or_else(|| ReportError::new("bad 'window_size'"))?,
                ),
            },
            windows,
            set_histogram,
            opt_misses: match v.get("opt_misses") {
                None => None,
                Some(n) => Some(
                    n.as_u64()
                        .ok_or_else(|| ReportError::new("bad 'opt_misses'"))?,
                ),
            },
            gap_to_opt: match v.get("gap_to_opt") {
                None => None,
                Some(g) => Some(
                    g.as_f64()
                        .ok_or_else(|| ReportError::new("bad 'gap_to_opt'"))?,
                ),
            },
            inclusion_victim_rate: match v.get("inclusion_victim_rate") {
                None => None,
                Some(r) => Some(
                    r.as_f64()
                        .ok_or_else(|| ReportError::new("bad 'inclusion_victim_rate'"))?,
                ),
            },
            reuse: match v.get("reuse") {
                None => None,
                Some(r) => Some(reuse_from_json(r)?),
            },
            io: match v.get("io") {
                None => None,
                Some(io) => Some(io_from_json(io)?),
            },
        })
    }

    /// Parses a JSON document produced by [`RunReport::to_json_string`].
    pub fn parse(text: &str) -> Result<RunReport, ReportError> {
        RunReport::from_json(&JsonValue::parse(text)?)
    }
}

/// A report encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    message: String,
}

impl ReportError {
    fn new(message: impl Into<String>) -> Self {
        ReportError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run report error: {}", self.message)
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::new(e.to_string())
    }
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ReportError> {
    v.get(key)
        .ok_or_else(|| ReportError::new(format!("missing field '{key}'")))
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, ReportError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| ReportError::new(format!("field '{key}' is not an integer")))
}

fn field_str(v: &JsonValue, key: &str) -> Result<String, ReportError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| ReportError::new(format!("field '{key}' is not a string")))?
        .to_string())
}

fn u32_array(v: &JsonValue) -> Result<Vec<u32>, ReportError> {
    v.as_array()
        .ok_or_else(|| ReportError::new("expected an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .filter(|&n| n <= u32::MAX as u64)
                .map(|n| n as u32)
                .ok_or_else(|| ReportError::new("array element is not a u32"))
        })
        .collect()
}

/// A named counter field of `S`: `(name, getter, mut-getter)`.
type FieldTable<S, const N: usize> = [(&'static str, fn(&S) -> u64, fn(&mut S) -> &mut u64); N];

/// `(name, getter)` pairs for every [`PerCoreStats`] field, keeping the
/// JSON encoding and decoding in lockstep.
const PER_CORE_FIELDS: FieldTable<PerCoreStats, 15> = [
    ("l1i_accesses", |s| s.l1i_accesses, |s| &mut s.l1i_accesses),
    ("l1i_misses", |s| s.l1i_misses, |s| &mut s.l1i_misses),
    ("l1d_accesses", |s| s.l1d_accesses, |s| &mut s.l1d_accesses),
    ("l1d_misses", |s| s.l1d_misses, |s| &mut s.l1d_misses),
    ("l2_accesses", |s| s.l2_accesses, |s| &mut s.l2_accesses),
    ("l2_misses", |s| s.l2_misses, |s| &mut s.l2_misses),
    ("llc_accesses", |s| s.llc_accesses, |s| &mut s.llc_accesses),
    ("llc_misses", |s| s.llc_misses, |s| &mut s.llc_misses),
    (
        "memory_accesses",
        |s| s.memory_accesses,
        |s| &mut s.memory_accesses,
    ),
    (
        "inclusion_victims_l1",
        |s| s.inclusion_victims_l1,
        |s| &mut s.inclusion_victims_l1,
    ),
    (
        "inclusion_victims_l2",
        |s| s.inclusion_victims_l2,
        |s| &mut s.inclusion_victims_l2,
    ),
    ("tlh_hints", |s| s.tlh_hints, |s| &mut s.tlh_hints),
    ("misses_cold", |s| s.misses_cold, |s| &mut s.misses_cold),
    (
        "misses_capacity",
        |s| s.misses_capacity,
        |s| &mut s.misses_capacity,
    ),
    (
        "misses_inclusion_victim",
        |s| s.misses_inclusion_victim,
        |s| &mut s.misses_inclusion_victim,
    ),
];

/// Same for [`GlobalStats`].
const GLOBAL_FIELDS: FieldTable<GlobalStats, 16> = [
    (
        "llc_evictions",
        |s| s.llc_evictions,
        |s| &mut s.llc_evictions,
    ),
    (
        "llc_writebacks",
        |s| s.llc_writebacks,
        |s| &mut s.llc_writebacks,
    ),
    (
        "back_invalidates",
        |s| s.back_invalidates,
        |s| &mut s.back_invalidates,
    ),
    (
        "eci_invalidates",
        |s| s.eci_invalidates,
        |s| &mut s.eci_invalidates,
    ),
    ("eci_rescues", |s| s.eci_rescues, |s| &mut s.eci_rescues),
    ("qbs_queries", |s| s.qbs_queries, |s| &mut s.qbs_queries),
    (
        "qbs_rejections",
        |s| s.qbs_rejections,
        |s| &mut s.qbs_rejections,
    ),
    (
        "qbs_limit_hits",
        |s| s.qbs_limit_hits,
        |s| &mut s.qbs_limit_hits,
    ),
    ("tlh_hints", |s| s.tlh_hints, |s| &mut s.tlh_hints),
    ("prefetches", |s| s.prefetches, |s| &mut s.prefetches),
    (
        "victim_cache_rescues",
        |s| s.victim_cache_rescues,
        |s| &mut s.victim_cache_rescues,
    ),
    ("snoop_probes", |s| s.snoop_probes, |s| &mut s.snoop_probes),
    (
        "victim_misses_replacement",
        |s| s.victim_misses_replacement,
        |s| &mut s.victim_misses_replacement,
    ),
    (
        "victim_misses_qbs_limit",
        |s| s.victim_misses_qbs_limit,
        |s| &mut s.victim_misses_qbs_limit,
    ),
    (
        "victim_misses_eci",
        |s| s.victim_misses_eci,
        |s| &mut s.victim_misses_eci,
    ),
    (
        "victim_misses_vc",
        |s| s.victim_misses_vc,
        |s| &mut s.victim_misses_vc,
    ),
];

/// Same for the aggregate [`IoStats`] block of an [`IoReport`].
const IO_FIELDS: FieldTable<IoStats, 7> = [
    ("injections", |s| s.injections, |s| &mut s.injections),
    ("inject_hits", |s| s.inject_hits, |s| &mut s.inject_hits),
    ("inject_fills", |s| s.inject_fills, |s| &mut s.inject_fills),
    (
        "llc_evictions",
        |s| s.llc_evictions,
        |s| &mut s.llc_evictions,
    ),
    (
        "back_invalidates",
        |s| s.back_invalidates,
        |s| &mut s.back_invalidates,
    ),
    ("writebacks", |s| s.writebacks, |s| &mut s.writebacks),
    (
        "victim_misses_io",
        |s| s.victim_misses_io,
        |s| &mut s.victim_misses_io,
    ),
];

/// Same for the per-agent [`IoAgentStats`] blocks.
const IO_AGENT_FIELDS: FieldTable<IoAgentStats, 4> = [
    ("injections", |s| s.injections, |s| &mut s.injections),
    ("hits", |s| s.hits, |s| &mut s.hits),
    ("fills", |s| s.fills, |s| &mut s.fills),
    ("evictions", |s| s.evictions, |s| &mut s.evictions),
];

fn per_core_to_json(s: &PerCoreStats) -> JsonValue {
    JsonValue::object(
        PER_CORE_FIELDS
            .iter()
            .map(|(name, get, _)| (*name, JsonValue::from(get(s)))),
    )
}

fn per_core_from_json(v: &JsonValue) -> Result<PerCoreStats, ReportError> {
    let mut s = PerCoreStats::default();
    for (name, _, get_mut) in &PER_CORE_FIELDS {
        *get_mut(&mut s) = field_u64(v, name)?;
    }
    Ok(s)
}

fn global_to_json(s: &GlobalStats) -> JsonValue {
    JsonValue::object(
        GLOBAL_FIELDS
            .iter()
            .map(|(name, get, _)| (*name, JsonValue::from(get(s)))),
    )
}

fn global_from_json(v: &JsonValue) -> Result<GlobalStats, ReportError> {
    let mut s = GlobalStats::default();
    for (name, _, get_mut) in &GLOBAL_FIELDS {
        *get_mut(&mut s) = field_u64(v, name)?;
    }
    Ok(s)
}

fn window_to_json(w: &Window) -> JsonValue {
    JsonValue::object([
        ("index", JsonValue::from(w.index)),
        ("start_instr", JsonValue::from(w.start_instr)),
        ("end_instr", JsonValue::from(w.end_instr)),
        // Derived rates, for plotting without recomputation.
        ("llc_mpki", JsonValue::from(w.llc_mpki())),
        (
            "inclusion_victim_rate",
            JsonValue::from(w.inclusion_victim_rate()),
        ),
        (
            "qbs_rejection_rate",
            JsonValue::from(w.qbs_rejection_rate()),
        ),
        (
            "per_core",
            JsonValue::array(w.per_core.iter().map(per_core_to_json)),
        ),
        ("global", global_to_json(&w.global)),
    ])
}

fn window_from_json(v: &JsonValue) -> Result<Window, ReportError> {
    Ok(Window {
        index: field_u64(v, "index")? as usize,
        start_instr: field_u64(v, "start_instr")?,
        end_instr: field_u64(v, "end_instr")?,
        per_core: field(v, "per_core")?
            .as_array()
            .ok_or_else(|| ReportError::new("'per_core' is not an array"))?
            .iter()
            .map(per_core_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        global: global_from_json(field(v, "global")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let stats = PerCoreStats {
            l1i_accesses: 100,
            l1d_accesses: 50,
            llc_accesses: 20,
            llc_misses: 7,
            inclusion_victims_l1: 2,
            tlh_hints: 1,
            ..Default::default()
        };
        let global = GlobalStats {
            llc_evictions: 9,
            back_invalidates: 4,
            qbs_queries: 6,
            qbs_rejections: 2,
            ..Default::default()
        };
        RunReport {
            mix: "lib+sje".to_string(),
            policy: "QBS".to_string(),
            config: ConfigEcho::new()
                .with("scale", 8u64)
                .with("instructions", 40_000u64)
                .with("prefetch", true)
                .with("note", "test"),
            threads: vec![
                ThreadReport {
                    app: "libquantum".to_string(),
                    instructions: 40_000,
                    cycles: 90_000,
                    stats,
                },
                ThreadReport {
                    app: "sjeng".to_string(),
                    instructions: 40_000,
                    cycles: 50_000,
                    stats: PerCoreStats::default(),
                },
            ],
            global,
            event_totals: vec![(EventKind::LlcEviction, 9), (EventKind::QbsQuery, 6)],
            window_size: Some(10_000),
            windows: vec![
                Window {
                    index: 0,
                    start_instr: 0,
                    end_instr: 10_000,
                    per_core: vec![stats, PerCoreStats::default()],
                    global,
                },
                Window {
                    index: 1,
                    start_instr: 10_000,
                    end_instr: 20_000,
                    per_core: vec![PerCoreStats::default(), stats],
                    global: GlobalStats::default(),
                },
            ],
            set_histogram: Some(SetHistogramReport {
                evictions: vec![3, 0, 6, 0],
                inclusion_victims: vec![1, 0, 3, 0],
            }),
            opt_misses: None,
            gap_to_opt: None,
            inclusion_victim_rate: None,
            reuse: None,
            io: None,
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(report, back);
        // And a second trip through the compact encoding.
        let compact = report.to_json().to_string();
        assert_eq!(RunReport::parse(&compact).unwrap(), report);
    }

    #[test]
    fn round_trip_without_optionals() {
        let mut report = sample_report();
        report.window_size = None;
        report.windows.clear();
        report.set_histogram = None;
        report.event_totals.clear();
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn report_exposes_expected_json_shape() {
        let v = sample_report().to_json();
        assert_eq!(v.get("schema_version").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("policy").and_then(|x| x.as_str()), Some("QBS"));
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("scale"))
                .and_then(|x| x.as_u64()),
            Some(8)
        );
        let windows = v.get("windows").and_then(|w| w.as_array()).unwrap();
        assert_eq!(windows.len(), 2);
        assert!(windows[0]
            .get("llc_mpki")
            .and_then(|x| x.as_f64())
            .is_some());
        let hist = v.get("set_histogram").unwrap();
        assert_eq!(hist.get("sets").and_then(|x| x.as_u64()), Some(4));
        assert_eq!(
            v.get("event_totals")
                .and_then(|t| t.get("llc_eviction"))
                .and_then(|x| x.as_u64()),
            Some(9)
        );
    }

    #[test]
    fn analytics_fields_round_trip() {
        let mut report = sample_report();
        report.opt_misses = Some(5);
        report.gap_to_opt = Some(0.4);
        report.inclusion_victim_rate = Some(0.125);
        let mut global = ReuseHistogram::new(8);
        global.record(3);
        global.record_cold();
        let mut set_hist = ReuseHistogram::new(8);
        set_hist.record(3);
        report.reuse = Some(ReuseReport {
            sample_every: 4,
            global,
            per_set: vec![(0, set_hist), (4, ReuseHistogram::new(8))],
        });
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
        let v = report.to_json();
        assert_eq!(v.get("opt_misses").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(v.get("gap_to_opt").and_then(|x| x.as_f64()), Some(0.4));
        let reuse = v.get("reuse").unwrap();
        assert_eq!(reuse.get("sample_every").and_then(|x| x.as_u64()), Some(4));
        assert_eq!(
            reuse
                .get("per_set")
                .and_then(|p| p.as_array())
                .map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn io_payload_round_trips() {
        let mut report = sample_report();
        report.io = Some(IoReport {
            stats: IoStats {
                injections: 100,
                inject_hits: 40,
                inject_fills: 60,
                llc_evictions: 55,
                back_invalidates: 9,
                writebacks: 30,
                victim_misses_io: 7,
            },
            agents: vec![
                (
                    "nic:4:512".to_string(),
                    IoAgentStats {
                        injections: 60,
                        hits: 40,
                        fills: 20,
                        evictions: 15,
                    },
                ),
                (
                    "dma:4".to_string(),
                    IoAgentStats {
                        injections: 40,
                        hits: 0,
                        fills: 40,
                        evictions: 40,
                    },
                ),
            ],
        });
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
        let v = report.to_json();
        let io = v.get("io").unwrap();
        assert_eq!(
            io.get("stats")
                .and_then(|s| s.get("victim_misses_io"))
                .and_then(|x| x.as_u64()),
            Some(7)
        );
        let agents = io.get("agents").and_then(|a| a.as_array()).unwrap();
        assert_eq!(agents.len(), 2);
        assert_eq!(
            agents[0].get("agent").and_then(|x| x.as_str()),
            Some("nic:4:512")
        );
        // Without io the encoding is byte-identical to a pre-io report
        // (the differential-golden guarantee).
        let mut plain = sample_report();
        plain.io = None;
        assert!(plain.to_json_string() == sample_report().to_json_string());
    }

    #[test]
    fn measured_victim_rate_sums_threads() {
        let mut report = sample_report();
        report.threads[0].stats.l2_misses = 6;
        report.threads[0].stats.misses_inclusion_victim = 3;
        report.threads[1].stats.l2_misses = 2;
        assert!((report.measured_victim_rate() - 3.0 / 8.0).abs() < 1e-12);
        report.threads[0].stats.l2_misses = 0;
        report.threads[1].stats.l2_misses = 0;
        assert_eq!(report.measured_victim_rate(), 0.0);
    }

    #[test]
    fn thread_ipc() {
        let t = ThreadReport {
            app: "x".to_string(),
            instructions: 100,
            cycles: 50,
            stats: PerCoreStats::default(),
        };
        assert!((t.ipc() - 2.0).abs() < 1e-12);
        let z = ThreadReport { cycles: 0, ..t };
        assert_eq!(z.ipc(), 0.0);
        let r = sample_report();
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(RunReport::parse("not json").is_err());
        assert!(RunReport::parse("{}").is_err());
        // Wrong schema version.
        let mut v = sample_report().to_json();
        if let JsonValue::Obj(pairs) = &mut v {
            pairs[0].1 = JsonValue::from(99u64);
        }
        let err = RunReport::from_json(&v).unwrap_err();
        assert!(err.to_string().contains("schema version"));
        // Unknown event kind.
        let mut v = sample_report().to_json();
        if let JsonValue::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "event_totals" {
                    *val = JsonValue::object([("bogus", JsonValue::from(1u64))]);
                }
            }
        }
        assert!(RunReport::from_json(&v).is_err());
    }

    #[test]
    fn config_echo_replaces_duplicates() {
        let mut echo = ConfigEcho::new();
        echo.set("k", 1u64);
        echo.set("k", 2u64);
        assert_eq!(echo.entries().len(), 1);
        assert_eq!(echo.get("k").and_then(|v| v.as_u64()), Some(2));
        assert!(echo.get("missing").is_none());
    }
}
