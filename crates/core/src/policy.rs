//! The TLA policy configurations.

use std::fmt;

/// Which Temporal Locality Hints are sent, and how aggressively.
///
/// A hint is a non-data message sent to the LLC on a core-cache hit that
/// promotes the line's LLC replacement state to MRU (§III-A). The paper
/// evaluates hints from the L1I, L1D, both L1s, the L2, and all levels, plus
/// a sensitivity study where only a fraction of hits send hints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlhConfig {
    /// Send a hint on every L1 instruction-cache hit.
    pub from_l1i: bool,
    /// Send a hint on every L1 data-cache hit.
    pub from_l1d: bool,
    /// Send a hint on every L2 hit.
    pub from_l2: bool,
    /// Fraction of eligible hits that actually send a hint (the paper's
    /// 1 % / 2 % / 10 % / 20 % filtering study). `1.0` sends all hints.
    pub probability: f64,
}

impl TlhConfig {
    /// Hints from both L1 caches (the paper's TLH-L1).
    pub const L1: TlhConfig = TlhConfig {
        from_l1i: true,
        from_l1d: true,
        from_l2: false,
        probability: 1.0,
    };

    /// Hints from the L2 only (TLH-L2).
    pub const L2: TlhConfig = TlhConfig {
        from_l1i: false,
        from_l1d: false,
        from_l2: true,
        probability: 1.0,
    };

    /// Hints from every level (TLH-L1-L2).
    pub const L1_L2: TlhConfig = TlhConfig {
        from_l1i: true,
        from_l1d: true,
        from_l2: true,
        probability: 1.0,
    };
}

impl Default for TlhConfig {
    fn default() -> Self {
        TlhConfig::L1
    }
}

/// Query Based Selection configuration.
///
/// On an LLC miss the controller walks victim candidates in replacement
/// order; for each it queries the configured core-cache levels. A resident
/// candidate is promoted to MRU and the next candidate is tried; once
/// `max_queries` candidates have been rejected, the next candidate is
/// evicted without further queries (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QbsConfig {
    /// Consider lines resident in L1 instruction caches unevictable.
    pub check_l1i: bool,
    /// Consider lines resident in L1 data caches unevictable.
    pub check_l1d: bool,
    /// Consider lines resident in L2 caches unevictable.
    pub check_l2: bool,
    /// Maximum queries per miss before falling back to unconditional
    /// eviction. The paper sweeps 1, 2, 4, 8 and finds 1–2 sufficient.
    pub max_queries: usize,
    /// The "modified QBS" ablation of §V-E footnote 6: rejected candidates
    /// are *also* back-invalidated from the core caches (like ECI) while
    /// still being promoted in the LLC.
    pub invalidate_on_query: bool,
}

impl QbsConfig {
    /// QBS over every core-cache level (the paper's headline QBS-L1-L2).
    pub const L1_L2: QbsConfig = QbsConfig {
        check_l1i: true,
        check_l1d: true,
        check_l2: true,
        max_queries: 8,
        invalidate_on_query: false,
    };

    /// QBS over both L1s only (QBS-L1).
    pub const L1: QbsConfig = QbsConfig {
        check_l1i: true,
        check_l1d: true,
        check_l2: false,
        max_queries: 8,
        invalidate_on_query: false,
    };

    /// QBS over the L2 only (QBS-L2).
    pub const L2: QbsConfig = QbsConfig {
        check_l1i: false,
        check_l1d: false,
        check_l2: true,
        max_queries: 8,
        invalidate_on_query: false,
    };
}

impl Default for QbsConfig {
    fn default() -> Self {
        QbsConfig::L1_L2
    }
}

/// A Temporal Locality Aware management policy for the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TlaPolicy {
    /// Plain inclusive management: LLC replacement sees only the filtered
    /// miss stream.
    #[default]
    Baseline,
    /// Temporal Locality Hints.
    Tlh(TlhConfig),
    /// Early Core Invalidation.
    Eci,
    /// Query Based Selection.
    Qbs(QbsConfig),
}

impl TlaPolicy {
    /// The unmanaged inclusive baseline.
    pub fn baseline() -> Self {
        TlaPolicy::Baseline
    }

    /// TLH from the L1 instruction cache only (TLH-IL1).
    pub fn tlh_il1() -> Self {
        TlaPolicy::Tlh(TlhConfig {
            from_l1i: true,
            from_l1d: false,
            from_l2: false,
            probability: 1.0,
        })
    }

    /// TLH from the L1 data cache only (TLH-DL1).
    pub fn tlh_dl1() -> Self {
        TlaPolicy::Tlh(TlhConfig {
            from_l1i: false,
            from_l1d: true,
            from_l2: false,
            probability: 1.0,
        })
    }

    /// TLH from both L1 caches (TLH-L1).
    pub fn tlh_l1() -> Self {
        TlaPolicy::Tlh(TlhConfig::L1)
    }

    /// TLH from the L2 cache (TLH-L2).
    pub fn tlh_l2() -> Self {
        TlaPolicy::Tlh(TlhConfig::L2)
    }

    /// TLH from every level (TLH-L1-L2).
    pub fn tlh_l1_l2() -> Self {
        TlaPolicy::Tlh(TlhConfig::L1_L2)
    }

    /// TLH from the L1s where only `probability` of hits send hints.
    pub fn tlh_l1_filtered(probability: f64) -> Self {
        TlaPolicy::Tlh(TlhConfig {
            probability,
            ..TlhConfig::L1
        })
    }

    /// Early Core Invalidation.
    pub fn eci() -> Self {
        TlaPolicy::Eci
    }

    /// The paper's headline QBS (checks L1I, L1D and L2).
    pub fn qbs() -> Self {
        TlaPolicy::Qbs(QbsConfig::L1_L2)
    }

    /// QBS checking only the L1 instruction caches (QBS-IL1).
    pub fn qbs_il1() -> Self {
        TlaPolicy::Qbs(QbsConfig {
            check_l1i: true,
            check_l1d: false,
            check_l2: false,
            ..QbsConfig::L1_L2
        })
    }

    /// QBS checking only the L1 data caches (QBS-DL1).
    pub fn qbs_dl1() -> Self {
        TlaPolicy::Qbs(QbsConfig {
            check_l1i: false,
            check_l1d: true,
            check_l2: false,
            ..QbsConfig::L1_L2
        })
    }

    /// QBS checking both L1 caches (QBS-L1).
    pub fn qbs_l1() -> Self {
        TlaPolicy::Qbs(QbsConfig::L1)
    }

    /// QBS checking only the L2 caches (QBS-L2).
    pub fn qbs_l2() -> Self {
        TlaPolicy::Qbs(QbsConfig::L2)
    }

    /// QBS with an explicit query limit.
    pub fn qbs_limited(max_queries: usize) -> Self {
        TlaPolicy::Qbs(QbsConfig {
            max_queries,
            ..QbsConfig::L1_L2
        })
    }

    /// The "modified QBS" ablation that back-invalidates rejected
    /// candidates from the core caches.
    pub fn qbs_invalidating() -> Self {
        TlaPolicy::Qbs(QbsConfig {
            invalidate_on_query: true,
            ..QbsConfig::L1_L2
        })
    }

    /// Short label used in report tables (e.g. `"TLH-L1"`, `"QBS"`).
    pub fn label(&self) -> String {
        match self {
            TlaPolicy::Baseline => "Baseline".to_string(),
            TlaPolicy::Tlh(t) => {
                let mut s = String::from("TLH");
                match (t.from_l1i, t.from_l1d, t.from_l2) {
                    (true, true, true) => s.push_str("-L1-L2"),
                    (true, true, false) => s.push_str("-L1"),
                    (true, false, false) => s.push_str("-IL1"),
                    (false, true, false) => s.push_str("-DL1"),
                    (false, false, true) => s.push_str("-L2"),
                    (l1i, l1d, l2) => {
                        if l1i {
                            s.push_str("-IL1");
                        }
                        if l1d {
                            s.push_str("-DL1");
                        }
                        if l2 {
                            s.push_str("-L2");
                        }
                    }
                }
                if t.probability < 1.0 {
                    s.push_str(&format!("({:.0}%)", t.probability * 100.0));
                }
                s
            }
            TlaPolicy::Eci => "ECI".to_string(),
            TlaPolicy::Qbs(q) => {
                let mut s = String::from("QBS");
                match (q.check_l1i, q.check_l1d, q.check_l2) {
                    (true, true, true) => {}
                    (true, true, false) => s.push_str("-L1"),
                    (true, false, false) => s.push_str("-IL1"),
                    (false, true, false) => s.push_str("-DL1"),
                    (false, false, true) => s.push_str("-L2"),
                    _ => s.push_str("-custom"),
                }
                if q.invalidate_on_query {
                    s.push_str("-inval");
                }
                if q.max_queries != QbsConfig::L1_L2.max_queries {
                    s.push_str(&format!("(q{})", q.max_queries));
                }
                s
            }
        }
    }
}

impl fmt::Display for TlaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(TlaPolicy::baseline().label(), "Baseline");
        assert_eq!(TlaPolicy::tlh_il1().label(), "TLH-IL1");
        assert_eq!(TlaPolicy::tlh_dl1().label(), "TLH-DL1");
        assert_eq!(TlaPolicy::tlh_l1().label(), "TLH-L1");
        assert_eq!(TlaPolicy::tlh_l2().label(), "TLH-L2");
        assert_eq!(TlaPolicy::tlh_l1_l2().label(), "TLH-L1-L2");
        assert_eq!(TlaPolicy::eci().label(), "ECI");
        assert_eq!(TlaPolicy::qbs().label(), "QBS");
        assert_eq!(TlaPolicy::qbs_l1().label(), "QBS-L1");
        assert_eq!(TlaPolicy::qbs_l2().label(), "QBS-L2");
        assert_eq!(TlaPolicy::qbs_il1().label(), "QBS-IL1");
        assert_eq!(TlaPolicy::qbs_dl1().label(), "QBS-DL1");
        assert_eq!(TlaPolicy::qbs_limited(2).label(), "QBS(q2)");
        assert_eq!(TlaPolicy::qbs_invalidating().label(), "QBS-inval");
        assert_eq!(TlaPolicy::tlh_l1_filtered(0.1).label(), "TLH-L1(10%)");
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(TlaPolicy::default(), TlaPolicy::Baseline);
    }

    #[test]
    fn qbs_defaults() {
        let q = QbsConfig::default();
        assert!(q.check_l1i && q.check_l1d && q.check_l2);
        assert!(!q.invalidate_on_query);
        assert_eq!(q.max_queries, 8);
    }
}
