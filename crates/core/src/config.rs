//! Hierarchy configuration.

use crate::policy::TlaPolicy;
use std::fmt;
use tla_cache::{CacheConfig, ConfigError, Policy, StreamPrefetcherConfig};

/// Inclusion relationship between the core caches and the LLC.
///
/// The L2 is always non-inclusive with respect to the L1s, as in the Intel
/// Core i7 the paper models (§IV-A footnote 3); this enum controls the
/// LLC's behaviour only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InclusionPolicy {
    /// Core-cache contents must be a subset of the LLC; LLC evictions
    /// back-invalidate the core caches.
    #[default]
    Inclusive,
    /// LLC evictions leave core-cache copies alone; dirty core-cache
    /// victims re-allocate in the LLC.
    NonInclusive,
    /// Lines live in the core caches *or* the LLC: fills bypass the LLC,
    /// LLC hits move the line up and invalidate the LLC copy, and core
    /// victims (clean or dirty) are inserted into the LLC.
    Exclusive,
}

impl fmt::Display for InclusionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InclusionPolicy::Inclusive => "inclusive",
            InclusionPolicy::NonInclusive => "non-inclusive",
            InclusionPolicy::Exclusive => "exclusive",
        };
        f.write_str(s)
    }
}

/// Configuration of the optional LLC victim cache (§VI comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCacheConfig {
    /// Entries in the fully-associative victim cache (paper: 32).
    pub entries: usize,
}

impl Default for VictimCacheConfig {
    fn default() -> Self {
        VictimCacheConfig { entries: 32 }
    }
}

/// Configuration of DDIO-style device injection into the LLC.
///
/// Device (DMA) traffic allocates directly in the LLC without touching the
/// core caches. `inject_ways` bounds which ways device fills may claim
/// (Intel DDIO restricts injection to 2 of the LLC's ways by default);
/// `partition` additionally excludes those ways from demand fills, giving a
/// static app/IO way partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoInjectConfig {
    /// Number of I/O agents injecting traffic (stats are tracked per agent).
    pub agents: usize,
    /// If set, device fills may only allocate into the first `n` LLC ways.
    pub inject_ways: Option<usize>,
    /// If `true`, demand (app) fills are excluded from the injection ways,
    /// making the way split a hard partition. Requires `inject_ways`.
    pub partition: bool,
}

/// Full configuration of a [`CacheHierarchy`](crate::CacheHierarchy).
///
/// Construct with a preset ([`HierarchyConfig::paper_baseline`] or
/// [`HierarchyConfig::scaled`]) and refine with the chainable setters.
///
/// # Examples
///
/// ```
/// use tla_core::{HierarchyConfig, InclusionPolicy, TlaPolicy};
///
/// let cfg = HierarchyConfig::paper_baseline(2)
///     .tla(TlaPolicy::qbs())
///     .llc_capacity(4 * 1024 * 1024);
/// assert_eq!(cfg.num_cores(), 2);
/// assert_eq!(cfg.inclusion(), InclusionPolicy::Inclusive);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    num_cores: usize,
    l1i: CacheConfig,
    l1d: CacheConfig,
    l2: CacheConfig,
    llc: CacheConfig,
    inclusion: InclusionPolicy,
    tla: TlaPolicy,
    victim_cache: Option<VictimCacheConfig>,
    prefetcher: Option<StreamPrefetcherConfig>,
    io: Option<IoInjectConfig>,
    seed: u64,
}

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

impl HierarchyConfig {
    /// The paper's baseline (§IV-A): per-core 4-way 32 KB L1I and L1D,
    /// 8-way 256 KB unified L2; shared 16-way 2 MB NRU LLC; stream
    /// prefetcher on.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds
    /// [`CoreId::MAX_CORES`](tla_types::CoreId::MAX_CORES).
    pub fn paper_baseline(num_cores: usize) -> Self {
        Self::scaled(num_cores, 1)
    }

    /// The paper's baseline with every capacity divided by `scale`
    /// (associativities, line size and all capacity *ratios* unchanged).
    /// `scale = 8` is the configuration the bench harness uses by default.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is out of range or `scale` does not evenly
    /// divide the geometries (use powers of two up to 8).
    pub fn scaled(num_cores: usize, scale: usize) -> Self {
        assert!(
            (1..=tla_types::CoreId::MAX_CORES).contains(&num_cores),
            "core count {num_cores} out of range"
        );
        let geom = |name: &str, capacity: usize, ways: usize, policy: Policy| {
            CacheConfig::new(name, capacity, ways, policy)
                .unwrap_or_else(|e| panic!("invalid scaled geometry for {name}: {e}"))
        };
        HierarchyConfig {
            num_cores,
            l1i: geom("L1I", 32 * KB / scale, 4, Policy::Lru),
            l1d: geom("L1D", 32 * KB / scale, 4, Policy::Lru),
            l2: geom("L2", 256 * KB / scale, 8, Policy::Lru),
            llc: geom("LLC", 2 * MB / scale, 16, Policy::Nru),
            inclusion: InclusionPolicy::Inclusive,
            tla: TlaPolicy::Baseline,
            victim_cache: None,
            prefetcher: Some(StreamPrefetcherConfig::default()),
            io: None,
            seed: 0x71a_cafe,
        }
    }

    /// The Figure 3 teaching configuration: a single core with a 2-entry
    /// fully-associative L1 (I and D), a 2-entry L2 and a 4-entry
    /// fully-associative LRU LLC, no prefetcher. Small enough to trace by
    /// hand.
    pub fn tiny_fig3() -> Self {
        let line = tla_types::LINE_BYTES;
        let fa = |name: &str, lines: usize| {
            CacheConfig::new(name, lines * line, lines, Policy::Lru).expect("valid tiny geometry")
        };
        HierarchyConfig {
            num_cores: 1,
            l1i: fa("L1I", 2),
            l1d: fa("L1D", 2),
            l2: fa("L2", 2),
            llc: fa("LLC", 4),
            inclusion: InclusionPolicy::Inclusive,
            tla: TlaPolicy::Baseline,
            victim_cache: None,
            prefetcher: None,
            io: None,
            seed: 0x71a_cafe,
        }
    }

    /// Sets the number of cores sharing the LLC.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds
    /// [`CoreId::MAX_CORES`](tla_types::CoreId::MAX_CORES).
    #[must_use]
    pub fn cores(mut self, n: usize) -> Self {
        assert!(
            (1..=tla_types::CoreId::MAX_CORES).contains(&n),
            "core count {n} out of range"
        );
        self.num_cores = n;
        self
    }

    /// Sets the inclusion policy.
    #[must_use]
    pub fn inclusion_policy(mut self, inclusion: InclusionPolicy) -> Self {
        self.inclusion = inclusion;
        self
    }

    /// Sets the TLA management policy.
    #[must_use]
    pub fn tla(mut self, tla: TlaPolicy) -> Self {
        self.tla = tla;
        self
    }

    /// Replaces the LLC capacity (keeping 16 ways and the NRU policy) —
    /// used by the Figure 2 / Figure 10 cache-ratio sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not form a valid 16-way geometry.
    #[must_use]
    pub fn llc_capacity(mut self, bytes: usize) -> Self {
        self.llc = CacheConfig::new("LLC", bytes, self.llc.ways(), self.llc.policy())
            .expect("invalid LLC capacity");
        self
    }

    /// Replaces the LLC replacement policy (footnote-4 ablation).
    ///
    /// # Panics
    ///
    /// Panics if the policy is incompatible with the LLC geometry.
    #[must_use]
    pub fn llc_policy(mut self, policy: Policy) -> Self {
        self.llc = self.llc.with_policy(policy).expect("invalid LLC policy");
        self
    }

    /// Attaches a victim cache behind the LLC.
    #[must_use]
    pub fn victim_cache(mut self, vc: VictimCacheConfig) -> Self {
        self.victim_cache = Some(vc);
        self
    }

    /// Enables or disables the L2 stream prefetcher (Table I is measured
    /// with it off).
    #[must_use]
    pub fn prefetcher(mut self, pf: Option<StreamPrefetcherConfig>) -> Self {
        self.prefetcher = pf;
        self
    }

    /// Enables DDIO-style device injection into the LLC.
    ///
    /// # Panics
    ///
    /// Panics if `inject_ways` is zero or exceeds the LLC associativity, or
    /// if `partition` is requested without an injection-way limit.
    #[must_use]
    pub fn io(mut self, io: IoInjectConfig) -> Self {
        if let Some(w) = io.inject_ways {
            assert!(
                (1..=self.llc.ways()).contains(&w),
                "inject_ways {w} out of range for a {}-way LLC",
                self.llc.ways()
            );
            assert!(
                !io.partition || w < self.llc.ways(),
                "partitioning all {w} LLC ways to I/O leaves no app ways"
            );
        } else {
            assert!(!io.partition, "partition requires an injection-way limit");
        }
        self.io = Some(io);
        self
    }

    /// Sets the deterministic seed for policy randomness (TLH filtering,
    /// Random replacement).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides all four cache geometries.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] among the arguments (none can
    /// occur — geometries are validated at construction — but the method
    /// revalidates PLRU compatibility).
    pub fn geometries(
        mut self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        llc: CacheConfig,
    ) -> Result<Self, ConfigError> {
        self.l1i = l1i;
        self.l1d = l1d;
        self.l2 = l2;
        self.llc = llc;
        Ok(self)
    }

    /// Number of cores sharing the LLC.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// L1 instruction-cache geometry.
    pub fn l1i(&self) -> &CacheConfig {
        &self.l1i
    }

    /// L1 data-cache geometry.
    pub fn l1d(&self) -> &CacheConfig {
        &self.l1d
    }

    /// L2 geometry.
    pub fn l2(&self) -> &CacheConfig {
        &self.l2
    }

    /// LLC geometry.
    pub fn llc(&self) -> &CacheConfig {
        &self.llc
    }

    /// Inclusion policy.
    pub fn inclusion(&self) -> InclusionPolicy {
        self.inclusion
    }

    /// TLA policy.
    pub fn tla_policy(&self) -> TlaPolicy {
        self.tla
    }

    /// Victim-cache configuration, if enabled.
    pub fn victim_cache_config(&self) -> Option<VictimCacheConfig> {
        self.victim_cache
    }

    /// Prefetcher configuration, if enabled.
    pub fn prefetcher_config(&self) -> Option<StreamPrefetcherConfig> {
        self.prefetcher
    }

    /// Device-injection configuration, if enabled.
    pub fn io_config(&self) -> Option<IoInjectConfig> {
        self.io
    }

    /// Policy randomness seed.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Total core-cache bytes per core (L1I + L1D + L2).
    pub fn core_cache_bytes(&self) -> usize {
        self.l1i.capacity_bytes() + self.l1d.capacity_bytes() + self.l2.capacity_bytes()
    }

    /// The paper's "cache ratio": total core-cache capacity across all
    /// cores over LLC capacity (e.g. 1:4 for the 2-core baseline).
    pub fn cache_ratio(&self) -> f64 {
        self.num_cores as f64 * self.core_cache_bytes() as f64 / self.llc.capacity_bytes() as f64
    }
}

impl fmt::Display for HierarchyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores, {} / {} / {} / {}, {} LLC, {}",
            self.num_cores, self.l1i, self.l1d, self.l2, self.llc, self.inclusion, self.tla
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_section_iv() {
        let cfg = HierarchyConfig::paper_baseline(2);
        assert_eq!(cfg.l1i().capacity_bytes(), 32 * KB);
        assert_eq!(cfg.l1i().ways(), 4);
        assert_eq!(cfg.l1d().capacity_bytes(), 32 * KB);
        assert_eq!(cfg.l2().capacity_bytes(), 256 * KB);
        assert_eq!(cfg.l2().ways(), 8);
        assert_eq!(cfg.llc().capacity_bytes(), 2 * MB);
        assert_eq!(cfg.llc().ways(), 16);
        assert_eq!(cfg.llc().policy(), Policy::Nru);
        assert!(cfg.prefetcher_config().is_some());
    }

    #[test]
    fn scaled_preserves_ratios() {
        let full = HierarchyConfig::paper_baseline(2);
        let eighth = HierarchyConfig::scaled(2, 8);
        assert!((full.cache_ratio() - eighth.cache_ratio()).abs() < 1e-12);
        assert_eq!(eighth.llc().capacity_bytes(), 256 * KB);
        assert_eq!(eighth.l1d().capacity_bytes(), 4 * KB);
    }

    #[test]
    fn baseline_cache_ratio_is_one_quarter() {
        // 2 cores x (32+32+256) KB = 640 KB vs 2 MB LLC ~ 0.31 (the paper
        // rounds the L2:LLC ratio to 1:4).
        let cfg = HierarchyConfig::paper_baseline(2);
        let r = cfg.cache_ratio();
        assert!(r > 0.25 && r < 0.35, "ratio {r}");
    }

    #[test]
    fn llc_capacity_override() {
        let cfg = HierarchyConfig::paper_baseline(2).llc_capacity(8 * MB);
        assert_eq!(cfg.llc().capacity_bytes(), 8 * MB);
        assert_eq!(cfg.llc().ways(), 16);
    }

    #[test]
    fn tiny_fig3_geometry() {
        let cfg = HierarchyConfig::tiny_fig3();
        assert_eq!(cfg.l1d().sets(), 1);
        assert_eq!(cfg.l1d().ways(), 2);
        assert_eq!(cfg.llc().ways(), 4);
        assert!(cfg.prefetcher_config().is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_cores_panics() {
        let _ = HierarchyConfig::paper_baseline(0);
    }

    #[test]
    fn io_config_round_trips() {
        let cfg = HierarchyConfig::paper_baseline(2);
        assert!(cfg.io_config().is_none());
        let io = IoInjectConfig {
            agents: 2,
            inject_ways: Some(2),
            partition: true,
        };
        assert_eq!(cfg.io(io).io_config(), Some(io));
    }

    #[test]
    #[should_panic(expected = "inject_ways 17 out of range")]
    fn io_inject_ways_beyond_llc_panics() {
        let _ = HierarchyConfig::paper_baseline(2).io(IoInjectConfig {
            agents: 1,
            inject_ways: Some(17),
            partition: false,
        });
    }

    #[test]
    #[should_panic(expected = "partition requires")]
    fn io_partition_without_limit_panics() {
        let _ = HierarchyConfig::paper_baseline(2).io(IoInjectConfig {
            agents: 1,
            inject_ways: None,
            partition: true,
        });
    }

    #[test]
    fn setters_chain() {
        let cfg = HierarchyConfig::scaled(4, 8)
            .inclusion_policy(InclusionPolicy::Exclusive)
            .tla(TlaPolicy::eci())
            .victim_cache(VictimCacheConfig::default())
            .prefetcher(None)
            .seed(99);
        assert_eq!(cfg.inclusion(), InclusionPolicy::Exclusive);
        assert_eq!(cfg.tla_policy(), TlaPolicy::Eci);
        assert_eq!(cfg.victim_cache_config().unwrap().entries, 32);
        assert!(cfg.prefetcher_config().is_none());
        assert_eq!(cfg.seed_value(), 99);
        assert!(!cfg.to_string().is_empty());
    }
}
