//! Temporal Locality Aware (TLA) cache management — the paper's primary
//! contribution.
//!
//! An inclusive last-level cache must back-invalidate every line it evicts
//! from all core caches. Because core-cache hits are invisible to the LLC,
//! the LLC replacement state of "hot" lines decays and they get evicted —
//! becoming **inclusion victims** — even while a core is actively using
//! them. This crate implements the paper's three remedies on top of a
//! three-level hierarchy ([`CacheHierarchy`]):
//!
//! * **[Temporal Locality Hints](TlaPolicy::tlh_l1)** — core-cache hits send
//!   a non-data hint that promotes the line in the LLC (a limit study:
//!   hint bandwidth is not modelled).
//! * **[Early Core Invalidation](TlaPolicy::eci)** — on each LLC miss the
//!   *next* potential victim is invalidated early from the core caches but
//!   kept in the LLC; a prompt re-request hits the LLC and re-derives the
//!   line's temporal locality.
//! * **[Query Based Selection](TlaPolicy::qbs)** — the LLC queries the core
//!   caches before evicting; resident lines are promoted to MRU and the
//!   next candidate is tried.
//!
//! The same hierarchy also models the paper's comparison points:
//! [non-inclusive](InclusionPolicy::NonInclusive) and
//! [exclusive](InclusionPolicy::Exclusive) hierarchies, and an inclusive
//! LLC backed by a victim cache (§VI).
//!
//! # Examples
//!
//! Reproduce the paper's Figure 3 walkthrough — the reference pattern
//! `a,b,a,c,a,d,a,e,…` makes `a` an inclusion victim under the baseline,
//! while QBS preserves it:
//!
//! ```
//! use tla_core::{CacheHierarchy, HierarchyConfig, InclusionPolicy, TlaPolicy};
//! use tla_types::{AccessKind, CoreId, LineAddr};
//!
//! fn run(policy: TlaPolicy) -> u64 {
//!     let cfg = HierarchyConfig::tiny_fig3().tla(policy);
//!     let mut h = CacheHierarchy::new(&cfg);
//!     let a = LineAddr::new(1);
//!     let core = CoreId::new(0);
//!     // a, b, a, c, a, d, a, e, a, f, a ...
//!     for (i, x) in [1u64, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1].iter().enumerate() {
//!         let _ = i;
//!         h.access(core, LineAddr::new(*x), AccessKind::Load);
//!     }
//!     let _ = a;
//!     h.per_core_stats(core).inclusion_victims_l1
//! }
//!
//! assert!(run(TlaPolicy::baseline()) > 0); // 'a' suffers inclusion victims
//! assert_eq!(run(TlaPolicy::qbs()), 0);    // QBS rescues 'a'
//! ```

mod config;
mod hierarchy;
mod policy;
mod stats;

pub use config::{HierarchyConfig, InclusionPolicy, IoInjectConfig, VictimCacheConfig};
pub use hierarchy::CacheHierarchy;
pub use policy::{QbsConfig, TlaPolicy, TlhConfig};
pub use stats::{GlobalStats, PerCoreStats};
