//! The three-level CMP cache hierarchy and the TLA management flows.
//!
//! Per core: private L1I, L1D and a unified non-inclusive L2. Shared: the
//! LLC, whose inclusion behaviour and TLA policy this module implements.
//! The simulator is trace-driven and functional — state changes happen at
//! access time and timing is recovered analytically by the CPU model from
//! the [`DataSource`] each access reports.

use crate::config::{HierarchyConfig, InclusionPolicy};
use crate::policy::{QbsConfig, TlaPolicy};
use crate::stats::{GlobalStats, PerCoreStats};
use tla_cache::{
    CoreBitmap, MissClass, SetAssocCache, StreamPrefetcher, VictimCache, VictimCause, VictimEntry,
    VictimTracker, WayMask,
};
use tla_rng::SmallRng;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_telemetry::{EventKind, TelemetryEvent, TelemetrySink};
use tla_types::{AccessKind, CacheLevel, CoreId, DataSource, LineAddr};
use tla_types::{IoAgentStats, IoStats};

/// The hierarchy's (optional) telemetry sink.
///
/// A newtype so [`CacheHierarchy`] keeps its derived `Debug`/`Clone`:
/// clones of a hierarchy start with no sink (collectors are run-scoped,
/// not state), and `Debug` shows only whether a sink is installed.
#[derive(Default)]
struct SinkSlot(Option<Box<dyn TelemetrySink>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("SinkSlot(installed)"),
            None => f.write_str("SinkSlot(none)"),
        }
    }
}

impl Clone for SinkSlot {
    fn clone(&self) -> Self {
        SinkSlot(None)
    }
}

/// DDIO-style device-injection state: the way masks derived from the
/// configuration and the injection counters.
///
/// Present iff the hierarchy was configured with
/// [`HierarchyConfig::io`](crate::HierarchyConfig::io); with it absent the
/// demand path is bit-for-bit identical to a hierarchy built without the
/// feature (the masks degenerate to the full way set and no counter is
/// touched).
#[derive(Debug, Clone)]
struct IoState {
    /// Ways device fills may allocate into (full mask when unlimited).
    io_ways: WayMask,
    /// Ways demand fills may allocate into (full mask unless partitioned).
    app_ways: WayMask,
    /// Whether `app_ways` excludes the injection ways.
    partitioned: bool,
    /// Aggregate injection counters.
    stats: IoStats,
    /// Per-agent injection counters, indexed by agent id.
    per_agent: Vec<IoAgentStats>,
}

/// The private caches and prefetcher of one core.
#[derive(Debug, Clone)]
struct CoreCaches {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    prefetcher: Option<StreamPrefetcher>,
}

impl CoreCaches {
    /// Whether any of the selected levels holds `line` — the answer a QBS
    /// query gets back from this core.
    fn holds(&self, line: LineAddr, l1i: bool, l1d: bool, l2: bool) -> bool {
        (l1i && self.l1i.probe(line))
            || (l1d && self.l1d.probe(line))
            || (l2 && self.l2.probe(line))
    }
}

/// A multi-core cache hierarchy under a chosen inclusion and TLA policy.
///
/// Drive it with [`CacheHierarchy::access`] per demand reference; read
/// results from [`CacheHierarchy::per_core_stats`] and
/// [`CacheHierarchy::global_stats`].
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    cores: Vec<CoreCaches>,
    llc: SetAssocCache,
    victim: Option<VictimCache>,
    inclusion: InclusionPolicy,
    tla: TlaPolicy,
    per_core: Vec<PerCoreStats>,
    global: GlobalStats,
    rng: SmallRng,
    /// Reusable buffer for prefetcher output.
    pf_buf: Vec<LineAddr>,
    /// Reusable victim-order buffer so the LLC miss path allocates nothing.
    order_buf: Vec<(usize, LineAddr)>,
    /// Installed telemetry sink, if any.
    sink: SinkSlot,
    /// Global instruction clock stamped onto telemetry events; advanced by
    /// the driver via [`CacheHierarchy::set_now`].
    now_instr: u64,
    /// Per-core miss-attribution trackers (cold / capacity /
    /// inclusion-victim classification with the causing policy decision).
    trackers: Vec<VictimTracker>,
    /// Whether to emit [`EventKind::LlcAccess`] events (the reuse-distance
    /// profiler's input stream). Off by default so the demand hot path
    /// stays a single branch.
    profile_accesses: bool,
    /// Device-injection state; `None` unless configured.
    io: Option<IoState>,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy from a configuration.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        let cores = (0..cfg.num_cores())
            .map(|i| CoreCaches {
                l1i: SetAssocCache::with_seed(
                    cfg.l1i().clone(),
                    cfg.seed_value() ^ (i as u64) << 1,
                ),
                l1d: SetAssocCache::with_seed(
                    cfg.l1d().clone(),
                    cfg.seed_value() ^ (i as u64) << 2,
                ),
                l2: SetAssocCache::with_seed(cfg.l2().clone(), cfg.seed_value() ^ (i as u64) << 3),
                prefetcher: cfg.prefetcher_config().map(StreamPrefetcher::new),
            })
            .collect();
        CacheHierarchy {
            cores,
            llc: SetAssocCache::with_seed(cfg.llc().clone(), cfg.seed_value()),
            victim: cfg
                .victim_cache_config()
                .map(|vc| VictimCache::new(vc.entries)),
            inclusion: cfg.inclusion(),
            tla: cfg.tla_policy(),
            per_core: vec![PerCoreStats::default(); cfg.num_cores()],
            global: GlobalStats::default(),
            rng: SmallRng::seed_from_u64(cfg.seed_value().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            pf_buf: Vec::with_capacity(8),
            order_buf: Vec::with_capacity(cfg.llc().ways()),
            sink: SinkSlot::default(),
            now_instr: 0,
            trackers: vec![VictimTracker::new(); cfg.num_cores()],
            profile_accesses: false,
            io: cfg.io_config().map(|ioc| {
                let full = WayMask::all(cfg.llc().ways());
                let io_ways = match ioc.inject_ways {
                    Some(n) => WayMask::all(n),
                    None => full,
                };
                let app_ways = if ioc.partition {
                    full.and_not(&io_ways)
                } else {
                    full
                };
                IoState {
                    io_ways,
                    app_ways,
                    partitioned: ioc.partition,
                    stats: IoStats::default(),
                    per_agent: vec![IoAgentStats::default(); ioc.agents],
                }
            }),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The inclusion policy in force.
    pub fn inclusion(&self) -> InclusionPolicy {
        self.inclusion
    }

    /// The TLA policy in force.
    pub fn tla_policy(&self) -> TlaPolicy {
        self.tla
    }

    /// Demand counters attributed to `core`.
    pub fn per_core_stats(&self, core: CoreId) -> &PerCoreStats {
        &self.per_core[core.index()]
    }

    /// Whole-hierarchy message/event counters.
    pub fn global_stats(&self) -> &GlobalStats {
        &self.global
    }

    /// Demand counters of every core, in core order (for telemetry
    /// snapshots).
    pub fn all_per_core_stats(&self) -> &[PerCoreStats] {
        &self.per_core
    }

    /// Whether `line` is currently resident in the LLC (tests/inspection).
    pub fn llc_holds(&self, line: LineAddr) -> bool {
        self.llc.probe(line)
    }

    /// Number of sets in the LLC (for sizing set-resolved telemetry
    /// collectors).
    pub fn llc_sets(&self) -> usize {
        self.llc.config().sets()
    }

    /// Installs a telemetry sink; every policy-relevant event is delivered
    /// to it until [`CacheHierarchy::take_sink`] removes it. With no sink
    /// installed the event path is a single branch.
    pub fn set_sink(&mut self, sink: impl TelemetrySink + 'static) {
        self.sink = SinkSlot(Some(Box::new(sink)));
    }

    /// Removes and returns the installed sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.sink.0.take()
    }

    /// Whether a telemetry sink is installed.
    pub fn has_sink(&self) -> bool {
        self.sink.0.is_some()
    }

    /// Enables (or disables) LLC access profiling: with a sink installed,
    /// every demand access that reaches the LLC emits an
    /// [`EventKind::LlcAccess`] event carrying its set and line address —
    /// the reuse-distance profiler's input. Off by default.
    pub fn set_access_profiling(&mut self, on: bool) {
        self.profile_accesses = on;
    }

    /// Whether LLC access profiling is enabled.
    pub fn access_profiling(&self) -> bool {
        self.profile_accesses
    }

    /// Advances the instruction clock stamped onto telemetry events.
    /// Drivers call this with the total instructions committed across all
    /// cores; standalone use of the hierarchy can ignore it (events are
    /// then stamped 0).
    pub fn set_now(&mut self, instr: u64) {
        self.now_instr = instr;
    }

    /// Delivers `event` to the sink, if one is installed. Call sites that
    /// must *compute* context (e.g. a set index) guard on
    /// [`CacheHierarchy::has_sink`] first so disabled telemetry stays free.
    #[inline]
    fn emit(&mut self, event: TelemetryEvent) {
        if let Some(sink) = self.sink.0.as_mut() {
            sink.record(&event);
        }
    }

    /// A [`TelemetryEvent`] stamped with the current instruction clock.
    #[inline]
    fn event(&self, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent::global(kind, self.now_instr)
    }

    /// Whether `line` is currently resident in any cache of `core`.
    pub fn core_holds(&self, core: CoreId, line: LineAddr) -> bool {
        self.cores[core.index()].holds(line, true, true, true)
    }

    /// Runs one demand access from `core` for the line containing nothing
    /// but `line` (the simulator is line-granular) and returns where the
    /// data came from.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`AccessKind::Prefetch`] (prefetches are
    /// generated internally by the L2 stream prefetcher) or if `core` is out
    /// of range.
    pub fn access(&mut self, core: CoreId, line: LineAddr, kind: AccessKind) -> DataSource {
        assert!(
            kind.is_demand(),
            "prefetches are issued internally, not via access()"
        );
        let ci = core.index();
        let is_ifetch = kind.is_ifetch();
        let write = kind.is_write();

        // L1 lookup.
        {
            let cc = &mut self.cores[ci];
            let pc = &mut self.per_core[ci];
            let l1 = if is_ifetch { &mut cc.l1i } else { &mut cc.l1d };
            if is_ifetch {
                pc.l1i_accesses += 1;
            } else {
                pc.l1d_accesses += 1;
            }
            if l1.touch(line) {
                if write {
                    l1.mark_dirty(line);
                }
                self.send_tlh(core, line, is_ifetch, false);
                return DataSource::L1;
            }
            if is_ifetch {
                pc.l1i_misses += 1;
            } else {
                pc.l1d_misses += 1;
            }
        }

        // L2 lookup.
        self.per_core[ci].l2_accesses += 1;
        if self.cores[ci].l2.touch(line) {
            self.send_tlh(core, line, is_ifetch, true);
            self.fill_l1(core, line, is_ifetch, write);
            return DataSource::L2;
        }
        self.per_core[ci].l2_misses += 1;

        // Attribute the core-cache miss: cold, capacity, or an inclusion
        // victim the LLC created — and if the latter, charge the policy
        // decision that killed the line.
        match self.trackers[ci].classify(line) {
            MissClass::Cold => self.per_core[ci].misses_cold += 1,
            MissClass::Capacity => self.per_core[ci].misses_capacity += 1,
            MissClass::InclusionVictim(cause) => {
                self.per_core[ci].misses_inclusion_victim += 1;
                match cause {
                    VictimCause::Replacement => self.global.victim_misses_replacement += 1,
                    VictimCause::QbsLimit => self.global.victim_misses_qbs_limit += 1,
                    VictimCause::Eci => self.global.victim_misses_eci += 1,
                    VictimCause::VictimCacheOverflow => self.global.victim_misses_vc += 1,
                    VictimCause::IoInjection => {
                        // Charged to the injection subsystem, not to the
                        // per-policy global counters (those sum to the
                        // app-side victim_misses() the reports pin).
                        if let Some(io) = self.io.as_mut() {
                            io.stats.victim_misses_io += 1;
                        }
                    }
                }
            }
        }

        // Train the stream prefetcher on the L2 demand miss; prefetches are
        // issued after the demand miss completes (they ride in its shadow).
        let mut pf_lines = std::mem::take(&mut self.pf_buf);
        pf_lines.clear();
        if let Some(pf) = self.cores[ci].prefetcher.as_mut() {
            pf.on_l2_miss(line, &mut pf_lines);
        }

        // LLC and beyond. An exclusive-LLC hit surrenders the line to the
        // core caches along with its dirty bit: the upward fill must carry
        // that dirtiness or the eventual writeback is silently lost.
        let (src, dirty_up) = self.llc_demand(core, line);

        // Fill the private caches. In the exclusive hierarchy new lines are
        // "inserted into the core caches first" (§IV-A): they go to the L1
        // and reach the L2 and LLC only as victims of the level above.
        if self.inclusion != InclusionPolicy::Exclusive {
            self.fill_l2(core, line);
        }
        self.fill_l1(core, line, is_ifetch, write || dirty_up);

        // Issue the prefetches into the L2 (accounting lives in
        // `prefetch`, which knows whether a request actually went out).
        for pl in pf_lines.drain(..) {
            self.prefetch(core, pl);
        }
        self.pf_buf = pf_lines;

        src
    }

    // ------------------------------------------------------------------
    // LLC demand path
    // ------------------------------------------------------------------

    /// Returns where the data came from and whether a dirty copy moved up
    /// out of the LLC with it (exclusive hits only): the caller must fill
    /// the L1 dirty in that case, mirroring how `handle_l1_victim` keeps
    /// dirtiness alive on the way down.
    fn llc_demand(&mut self, core: CoreId, line: LineAddr) -> (DataSource, bool) {
        let ci = core.index();
        self.per_core[ci].llc_accesses += 1;

        if self.profile_accesses && self.has_sink() {
            let set = self.llc.set_of(line) as u32;
            self.emit(
                self.event(EventKind::LlcAccess)
                    .with_core(core)
                    .with_set(set)
                    .with_addr(line),
            );
        }

        if self.inclusion == InclusionPolicy::Exclusive {
            if self.llc.touch(line) {
                // Exclusive hit: the line moves up into the core caches and
                // leaves the LLC, taking its dirty bit with it.
                let dirty = self.llc.invalidate(line).is_some_and(|ev| ev.dirty);
                return (DataSource::Llc, dirty);
            }
            self.per_core[ci].llc_misses += 1;
            self.per_core[ci].memory_accesses += 1;
            // Without the inclusion guarantee, an LLC miss says nothing
            // about the other cores' caches: coherence must probe them.
            self.global.snoop_probes += self.cores.len() as u64 - 1;
            // Exclusive miss: memory data bypasses the LLC.
            return (DataSource::Memory, false);
        }

        if self.llc.touch(line) {
            if self.llc.take_tag(line) == Some(true) {
                // An early-invalidated line was re-referenced in time: ECI
                // derived its temporal locality (a "hot line rescue").
                self.global.eci_rescues += 1;
                if self.has_sink() {
                    let set = self.llc.set_of(line) as u32;
                    self.emit(
                        self.event(EventKind::EciRescue)
                            .with_core(core)
                            .with_set(set),
                    );
                }
            }
            self.llc.add_sharer(line, core);
            return (DataSource::Llc, false);
        }
        self.per_core[ci].llc_misses += 1;
        if self.inclusion == InclusionPolicy::NonInclusive {
            // The non-inclusive LLC is no snoop filter: every miss must
            // probe the other cores (§II — the cost the TLA policies avoid
            // by keeping inclusion).
            self.global.snoop_probes += self.cores.len() as u64 - 1;
        }

        // Victim-cache rescue (§VI comparison).
        if let Some(vc) = self.victim.as_mut() {
            if let Some(entry) = vc.take(line) {
                self.global.victim_cache_rescues += 1;
                self.emit(self.event(EventKind::VictimCacheRescue).with_core(core));
                let mut cores = entry.cores;
                cores.insert(core);
                self.insert_into_llc(line, entry.dirty, cores);
                return (DataSource::Llc, false);
            }
        }

        self.per_core[ci].memory_accesses += 1;
        self.insert_into_llc(line, false, CoreBitmap::single(core));
        (DataSource::Memory, false)
    }

    /// Inserts `line` into the LLC, running the configured TLA victim
    /// selection and the configured inclusion behaviour on the eviction.
    fn insert_into_llc(&mut self, line: LineAddr, dirty: bool, sharers: CoreBitmap) {
        let set = self.llc.set_of(line);

        // Under a static app/IO way partition demand fills stay out of the
        // injection ways. `None` (the io-disabled and unpartitioned cases)
        // takes the unmasked path, keeping it bit-identical to a hierarchy
        // built without the feature.
        let allowed = match self.io.as_ref() {
            Some(io) if io.partitioned => Some(io.app_ways),
            _ => None,
        };

        let invalid = match &allowed {
            Some(m) => self.llc.invalid_way_in(set, m),
            None => self.llc.invalid_way(set),
        };
        if let Some(way) = invalid {
            self.llc.fill_way(set, way, line, dirty, sharers);
            // ECI fires on every LLC miss: with an invalid victim the "next
            // LRU line" is the set's current replacement victim (Fig. 3c —
            // 'I' is evicted, 'a' is early-invalidated).
            if self.tla == TlaPolicy::Eci {
                let next = match &allowed {
                    Some(m) => self.llc.victim_way_in(set, m),
                    None => self.llc.victim_way(set),
                };
                if let Some((_, target)) = next {
                    if target != line {
                        self.eci_invalidate(target);
                    }
                }
            }
            return;
        }

        let mut order = std::mem::take(&mut self.order_buf);
        match &allowed {
            Some(m) => self.llc.victim_order_in_into(set, m, &mut order),
            None => self.llc.victim_order_into(set, &mut order),
        }
        debug_assert!(!order.is_empty());

        let (chosen, cause) = match self.tla {
            TlaPolicy::Qbs(cfg) => {
                let (i, limit_forced) = self.qbs_select(&order, cfg);
                let cause = if limit_forced {
                    VictimCause::QbsLimit
                } else {
                    VictimCause::Replacement
                };
                (i, cause)
            }
            _ => (0, VictimCause::Replacement),
        };
        let (way, _) = order[chosen];

        let ev = self
            .llc
            .evict_way(set, way)
            .expect("victim way must be valid");
        self.global.llc_evictions += 1;
        self.emit(
            self.event(EventKind::LlcEviction)
                .with_level(CacheLevel::Llc)
                .with_set(set as u32),
        );
        if ev.dirty {
            self.global.llc_writebacks += 1;
        }
        self.handle_llc_eviction(ev, cause);

        self.llc.fill_way(set, way, line, dirty, sharers);

        // ECI: pick the *next* potential victim and invalidate it early in
        // the core caches, keeping it in the LLC (§III-B). `order` was
        // computed before the fill, so order[chosen] was the victim and
        // order[chosen + 1] is the next LRU line.
        if self.tla == TlaPolicy::Eci {
            if let Some(&(_, target)) = order.get(chosen + 1) {
                self.eci_invalidate(target);
            }
        }

        self.order_buf = order;
    }

    // ------------------------------------------------------------------
    // Device (DDIO-style) injection path
    // ------------------------------------------------------------------

    /// Runs one device injection from I/O `agent` for `line`: the line
    /// allocates directly in the LLC (never in the core caches), constrained
    /// to the configured injection ways. A `write` deposits DMA data and
    /// leaves the line dirty; evicting a core-resident victim back-invalidates
    /// it like any other inclusive eviction, attributed to
    /// [`VictimCause::IoInjection`].
    ///
    /// Injections are plain LLC fills, not demand misses: they never train
    /// the prefetcher, trigger ECI early-invalidation, consult the victim
    /// cache, or touch the per-core demand counters.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy was built without an I/O configuration.
    pub fn io_inject(&mut self, agent: usize, line: LineAddr, write: bool) {
        let io_ways = {
            let io = self
                .io
                .as_mut()
                .expect("io_inject requires an io configuration");
            io.stats.injections += 1;
            if let Some(a) = io.per_agent.get_mut(agent) {
                a.injections += 1;
            }
            io.io_ways
        };

        if self.llc.touch(line) {
            if write {
                self.llc.mark_dirty(line);
            }
            let io = self.io.as_mut().expect("checked above");
            io.stats.inject_hits += 1;
            if let Some(a) = io.per_agent.get_mut(agent) {
                a.hits += 1;
            }
            return;
        }

        {
            let io = self.io.as_mut().expect("checked above");
            io.stats.inject_fills += 1;
            if let Some(a) = io.per_agent.get_mut(agent) {
                a.fills += 1;
            }
        }

        let set = self.llc.set_of(line);
        if let Some(way) = self.llc.invalid_way_in(set, &io_ways) {
            self.llc.fill_way(set, way, line, write, CoreBitmap::EMPTY);
            return;
        }

        // Every injection way is valid: evict within the injection ways
        // under the LLC's replacement order (DDIO behaviour — device fills
        // recycle the device ways before touching app ways).
        let (way, _) = self
            .llc
            .victim_way_in(set, &io_ways)
            .expect("non-empty injection mask with no invalid way has a victim");
        let ev = self
            .llc
            .evict_way(set, way)
            .expect("victim way must be valid");
        self.global.llc_evictions += 1;
        {
            let io = self.io.as_mut().expect("checked above");
            io.stats.llc_evictions += 1;
            if let Some(a) = io.per_agent.get_mut(agent) {
                a.evictions += 1;
            }
        }
        self.emit(
            self.event(EventKind::LlcEviction)
                .with_level(CacheLevel::Llc)
                .with_set(set as u32),
        );
        if ev.dirty {
            self.global.llc_writebacks += 1;
            if let Some(io) = self.io.as_mut() {
                io.stats.writebacks += 1;
            }
        }
        self.handle_llc_eviction(ev, VictimCause::IoInjection);
        self.llc.fill_way(set, way, line, write, CoreBitmap::EMPTY);
    }

    /// Aggregate device-injection counters, if injection is configured.
    pub fn io_stats(&self) -> Option<&IoStats> {
        self.io.as_ref().map(|io| &io.stats)
    }

    /// Per-agent device-injection counters, if injection is configured.
    pub fn io_agent_stats(&self) -> Option<&[IoAgentStats]> {
        self.io.as_ref().map(|io| io.per_agent.as_slice())
    }

    /// QBS victim selection: walk candidates in replacement order, querying
    /// the core caches; rejected candidates are promoted to MRU. Returns the
    /// index into `order` of the line to evict, and whether the pick was
    /// *limit-forced* — evicted despite (possibly) being core-resident
    /// because the query budget ran out (attribution tags such kills
    /// [`VictimCause::QbsLimit`]).
    fn qbs_select(&mut self, order: &[(usize, LineAddr)], cfg: QbsConfig) -> (usize, bool) {
        // All candidates share one set; resolve it once for telemetry.
        let set = if self.has_sink() {
            order.first().map(|&(_, l)| self.llc.set_of(l) as u32)
        } else {
            None
        };
        for (i, &(_, cand)) in order.iter().enumerate() {
            // `i` queries have been issued so far, one per prior candidate.
            if i >= cfg.max_queries {
                // Query budget exhausted: evict this candidate unqueried.
                self.global.qbs_limit_hits += 1;
                if let Some(s) = set {
                    self.emit(self.event(EventKind::QbsLimitHit).with_set(s));
                }
                return (i, true);
            }
            self.global.qbs_queries += 1;
            if let Some(s) = set {
                self.emit(self.event(EventKind::QbsQuery).with_set(s));
            }
            let resident = self
                .cores
                .iter()
                .any(|cc| cc.holds(cand, cfg.check_l1i, cfg.check_l1d, cfg.check_l2));
            if !resident {
                return (i, false);
            }
            self.global.qbs_rejections += 1;
            if let Some(s) = set {
                self.emit(self.event(EventKind::QbsRejection).with_set(s));
            }
            self.llc.promote(cand);
            if cfg.invalidate_on_query {
                // "Modified QBS" (§V-E footnote 6): also evict the rejected
                // candidate from the core caches, like ECI would.
                self.eci_invalidate(cand);
            }
        }
        // Every line in the set is resident in a core cache (only possible
        // when the core caches cover the set, i.e. toy geometries or very
        // low associativity). Evict the *last* candidate: the walk just
        // re-promoted every line in walk order, so the recency stack now
        // mirrors the old victim order and the last candidate was the
        // set's most-recently-used line before the miss. Evicting it is
        // the same call a thrash-protecting policy makes when a working
        // set exceeds the cache — sacrifice the newest line, keep the
        // established ones — and, unlike evicting candidate 0, it does not
        // throw away the coldest line QBS queried first and deliberately
        // protected (§III-C keeps query-rejected LRU lines resident).
        self.global.qbs_limit_hits += 1;
        if let Some(s) = set {
            self.emit(self.event(EventKind::QbsLimitHit).with_set(s));
        }
        (order.len() - 1, true)
    }

    /// Sends an early invalidation for `target` to the cores in its
    /// directory bits; the line stays in the LLC (tagged so a rescue can be
    /// counted) and its directory bits are cleared.
    fn eci_invalidate(&mut self, target: LineAddr) {
        let Some(sharers) = self.llc.sharers(target) else {
            return;
        };
        let set = if self.has_sink() {
            Some(self.llc.set_of(target) as u32)
        } else {
            None
        };
        for c in sharers.iter() {
            self.global.eci_invalidates += 1;
            if let Some(s) = set {
                self.emit(
                    self.event(EventKind::EciInvalidate)
                        .with_core(c)
                        .with_set(s),
                );
            }
            if self.invalidate_in_core(c, target, false) {
                self.trackers[c.index()].note_kill(target, VictimCause::Eci);
            }
        }
        self.llc.clear_sharers(target);
        self.llc.set_tag(target, true);
    }

    /// Applies the configured inclusion behaviour to an LLC eviction.
    /// `cause` is the policy decision that picked the victim, carried into
    /// the attribution trackers by the back-invalidates it triggers.
    fn handle_llc_eviction(&mut self, ev: tla_cache::Evicted, cause: VictimCause) {
        match self.inclusion {
            InclusionPolicy::Inclusive => {
                if let Some(vc) = self.victim.as_mut() {
                    // Park in the victim cache; inclusion back-invalidation
                    // is deferred until the line leaves the victim cache —
                    // so a kill that does fire is charged to the
                    // displacement, not to the original eviction decision.
                    let displaced = vc.insert(VictimEntry {
                        addr: ev.addr,
                        dirty: ev.dirty,
                        cores: ev.cores,
                    });
                    if let Some(d) = displaced {
                        self.back_invalidate(d.addr, d.cores, VictimCause::VictimCacheOverflow);
                    }
                } else {
                    self.back_invalidate(ev.addr, ev.cores, cause);
                }
            }
            // Non-inclusive / exclusive: core-cache copies survive.
            InclusionPolicy::NonInclusive | InclusionPolicy::Exclusive => {}
        }
    }

    /// Back-invalidates `line` from the caches of every core in `cores`,
    /// counting inclusion victims and recording `cause` against each core
    /// the removal actually took a copy from.
    fn back_invalidate(&mut self, line: LineAddr, cores: CoreBitmap, cause: VictimCause) {
        // `set_of` is pure index arithmetic, valid even though the line has
        // already left the LLC.
        let set = if self.has_sink() {
            Some(self.llc.set_of(line) as u32)
        } else {
            None
        };
        for c in cores.iter() {
            self.global.back_invalidates += 1;
            if cause == VictimCause::IoInjection {
                if let Some(io) = self.io.as_mut() {
                    io.stats.back_invalidates += 1;
                }
            }
            if let Some(s) = set {
                self.emit(
                    self.event(EventKind::BackInvalidate)
                        .with_core(c)
                        .with_set(s),
                );
            }
            if self.invalidate_in_core(c, line, true) {
                self.trackers[c.index()].note_kill(line, cause);
            }
        }
    }

    /// Removes `line` from one core's caches, returning whether any copy
    /// was actually removed. `count_victims` distinguishes inclusion
    /// back-invalidation (counted as inclusion victims) from ECI early
    /// invalidation (counted separately by the caller).
    fn invalidate_in_core(&mut self, core: CoreId, line: LineAddr, count_victims: bool) -> bool {
        let ci = core.index();
        let cc = &mut self.cores[ci];
        let mut in_l1 = false;
        let mut dirty = false;
        if let Some(e) = cc.l1i.invalidate(line) {
            in_l1 = true;
            dirty |= e.dirty;
        }
        if let Some(e) = cc.l1d.invalidate(line) {
            in_l1 = true;
            dirty |= e.dirty;
        }
        let mut in_l2 = false;
        if let Some(e) = cc.l2.invalidate(line) {
            in_l2 = true;
            dirty |= e.dirty;
        }
        if count_victims {
            if in_l1 {
                self.per_core[ci].inclusion_victims_l1 += 1;
            }
            if in_l2 {
                self.per_core[ci].inclusion_victims_l2 += 1;
            }
        }
        if dirty {
            // The dirty core copy is written back to memory on its way out.
            self.global.llc_writebacks += 1;
        }
        in_l1 || in_l2
    }

    // ------------------------------------------------------------------
    // Private-cache fills and victim handling
    // ------------------------------------------------------------------

    fn fill_l1(&mut self, core: CoreId, line: LineAddr, is_ifetch: bool, write: bool) {
        let ci = core.index();
        let cc = &mut self.cores[ci];
        let l1 = if is_ifetch { &mut cc.l1i } else { &mut cc.l1d };
        if l1.probe(line) {
            if write {
                l1.mark_dirty(line);
            }
            return;
        }
        let ev = l1.fill(line, write);
        if let Some(e) = ev {
            self.handle_l1_victim(core, e);
        }
    }

    fn fill_l2(&mut self, core: CoreId, line: LineAddr) {
        let ci = core.index();
        if self.cores[ci].l2.probe(line) {
            return;
        }
        let ev = self.cores[ci].l2.fill(line, false);
        if let Some(e) = ev {
            self.handle_l2_victim(core, e);
        }
    }

    /// A line displaced from an L1.
    ///
    /// Inclusive/non-inclusive: clean victims are dropped (the L2 is
    /// non-inclusive); dirty victims are written into the L2, allocating on
    /// an L2 miss. Exclusive: *every* L1 victim moves into the L2 — the
    /// lower levels are the victim store of the level above, which is what
    /// gives the exclusive hierarchy its sum-of-all-caches capacity (and its
    /// extra write bandwidth, §II).
    fn handle_l1_victim(&mut self, core: CoreId, ev: tla_cache::Evicted) {
        let ci = core.index();
        if self.inclusion == InclusionPolicy::Exclusive {
            if self.cores[ci].l2.probe(ev.addr) {
                if ev.dirty {
                    self.cores[ci].l2.mark_dirty(ev.addr);
                }
                return;
            }
            let l2ev = self.cores[ci].l2.fill(ev.addr, ev.dirty);
            if let Some(e) = l2ev {
                self.handle_l2_victim(core, e);
            }
            return;
        }
        if !ev.dirty {
            return;
        }
        if self.cores[ci].l2.mark_dirty(ev.addr) {
            return;
        }
        let l2ev = self.cores[ci].l2.fill(ev.addr, true);
        if let Some(e) = l2ev {
            self.handle_l2_victim(core, e);
        }
    }

    /// A line displaced from an L2; behaviour depends on the inclusion
    /// policy (§II / §IV-A).
    fn handle_l2_victim(&mut self, core: CoreId, ev: tla_cache::Evicted) {
        match self.inclusion {
            InclusionPolicy::Inclusive => {
                // Inclusion guarantees the line is still in the LLC — or
                // parked in the victim cache with its back-invalidation
                // deferred.
                if ev.dirty {
                    let present = self.llc.mark_dirty(ev.addr)
                        || self
                            .victim
                            .as_mut()
                            .is_some_and(|vc| vc.mark_dirty(ev.addr));
                    debug_assert!(present, "inclusion violated: dirty L2 victim not in LLC/VC");
                    if !present {
                        self.global.llc_writebacks += 1;
                    }
                }
            }
            InclusionPolicy::NonInclusive => {
                // The paper's non-inclusive model differs from inclusive
                // only by not sending back-invalidates (§IV-A): dirty L2
                // victims update a surviving LLC copy, or write through to
                // memory without re-allocating.
                let _ = core;
                if ev.dirty && !self.llc.mark_dirty(ev.addr) {
                    self.global.llc_writebacks += 1;
                }
            }
            InclusionPolicy::Exclusive => {
                // Exclusive LLC is the victim store for the core caches:
                // clean and dirty L2 victims insert once the line has left
                // the core caches entirely. If any core cache still holds
                // the line (this core's L1s — the L2 is non-inclusive of
                // them — or, for shared lines, another core) it stays
                // core-side; dirtiness transfers to a surviving copy.
                if self
                    .cores
                    .iter()
                    .any(|cc| cc.holds(ev.addr, true, true, true))
                {
                    if ev.dirty {
                        let ci = core.index();
                        let cc = &mut self.cores[ci];
                        if !cc.l1d.mark_dirty(ev.addr) && !cc.l1i.mark_dirty(ev.addr) {
                            for other in self.cores.iter_mut() {
                                if other.l1d.mark_dirty(ev.addr)
                                    || other.l1i.mark_dirty(ev.addr)
                                    || other.l2.mark_dirty(ev.addr)
                                {
                                    break;
                                }
                            }
                        }
                    }
                    return;
                }
                if self.llc.probe(ev.addr) {
                    if ev.dirty {
                        self.llc.mark_dirty(ev.addr);
                    }
                } else {
                    self.insert_into_llc(ev.addr, ev.dirty, CoreBitmap::EMPTY);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Prefetch path
    // ------------------------------------------------------------------

    /// Runs one hardware prefetch: fills the L2 (not the L1s), going through
    /// the LLC like any other request but without touching demand counters.
    /// Prefetches that find the line already L2-resident are dropped here
    /// and never counted: `global.prefetches` is lines actually requested
    /// below the L2, not lines the prefetcher nominated.
    fn prefetch(&mut self, core: CoreId, line: LineAddr) {
        let ci = core.index();
        if self.cores[ci].l2.touch_prefetch(line) {
            return;
        }
        self.global.prefetches += 1;
        self.emit(
            self.event(EventKind::Prefetch)
                .with_core(core)
                .with_level(CacheLevel::L2),
        );
        let mut dirty = false;
        match self.inclusion {
            InclusionPolicy::Exclusive => {
                if self.llc.touch_prefetch(line) {
                    // The line leaves the LLC for the L2; keep its dirty
                    // bit alive in the upward fill.
                    dirty = self.llc.invalidate(line).is_some_and(|ev| ev.dirty);
                }
                // On LLC miss the prefetched data bypasses the LLC.
            }
            InclusionPolicy::Inclusive | InclusionPolicy::NonInclusive => {
                if self.llc.touch_prefetch(line) {
                    self.llc.add_sharer(line, core);
                } else {
                    let rescued = self.victim.as_mut().and_then(|vc| vc.take(line));
                    if let Some(entry) = rescued {
                        self.global.victim_cache_rescues += 1;
                        self.emit(self.event(EventKind::VictimCacheRescue).with_core(core));
                        let mut cores = entry.cores;
                        cores.insert(core);
                        self.insert_into_llc(line, entry.dirty, cores);
                    } else {
                        self.insert_into_llc(line, false, CoreBitmap::single(core));
                    }
                }
            }
        }
        let ev = self.cores[ci].l2.fill(line, dirty);
        if let Some(e) = ev {
            self.handle_l2_victim(core, e);
        }
    }

    // ------------------------------------------------------------------
    // Temporal Locality Hints
    // ------------------------------------------------------------------

    /// Sends a TLH to the LLC for a core-cache hit, subject to the policy's
    /// level selection and filtering probability.
    fn send_tlh(&mut self, core: CoreId, line: LineAddr, is_ifetch: bool, from_l2: bool) {
        let TlaPolicy::Tlh(cfg) = self.tla else {
            return;
        };
        let eligible = if from_l2 {
            cfg.from_l2
        } else if is_ifetch {
            cfg.from_l1i
        } else {
            cfg.from_l1d
        };
        if !eligible {
            return;
        }
        if cfg.probability < 1.0 && self.rng.gen_f64() >= cfg.probability {
            return;
        }
        self.per_core[core.index()].tlh_hints += 1;
        self.global.tlh_hints += 1;
        let level = if from_l2 {
            CacheLevel::L2
        } else if is_ifetch {
            CacheLevel::L1I
        } else {
            CacheLevel::L1D
        };
        self.emit(
            self.event(EventKind::TlhHint)
                .with_core(core)
                .with_level(level),
        );
        self.llc.promote(line);
    }

    // ------------------------------------------------------------------
    // Inspection helpers for tests and invariant checks
    // ------------------------------------------------------------------

    /// Verifies the inclusion invariant: in inclusive mode every line in a
    /// core cache must be present in the LLC (or parked in the victim
    /// cache). Returns the first violating line, if any. O(cache size).
    pub fn find_inclusion_violation(&self) -> Option<(CoreId, LineAddr)> {
        if self.inclusion != InclusionPolicy::Inclusive {
            return None;
        }
        for (i, cc) in self.cores.iter().enumerate() {
            for cache in [&cc.l1i, &cc.l1d, &cc.l2] {
                for l in cache.iter_valid() {
                    let in_vc = self.victim.as_ref().is_some_and(|vc| vc.probe(l.addr));
                    if !self.llc.probe(l.addr) && !in_vc {
                        return Some((CoreId::new(i), l.addr));
                    }
                }
            }
        }
        None
    }

    /// Verifies the exclusion invariant: in exclusive mode no line may be in
    /// both the LLC and any core cache. Returns the first violating line.
    pub fn find_exclusion_violation(&self) -> Option<(CoreId, LineAddr)> {
        if self.inclusion != InclusionPolicy::Exclusive {
            return None;
        }
        for (i, cc) in self.cores.iter().enumerate() {
            for cache in [&cc.l1i, &cc.l1d, &cc.l2] {
                for l in cache.iter_valid() {
                    if self.llc.probe(l.addr) {
                        return Some((CoreId::new(i), l.addr));
                    }
                }
            }
        }
        None
    }

    /// Read-only view of one core's L1 data cache (for white-box tests).
    pub fn l1d(&self, core: CoreId) -> &SetAssocCache {
        &self.cores[core.index()].l1d
    }

    /// Read-only view of one core's L1 instruction cache.
    pub fn l1i(&self, core: CoreId) -> &SetAssocCache {
        &self.cores[core.index()].l1i
    }

    /// Read-only view of one core's L2 cache.
    pub fn l2(&self, core: CoreId) -> &SetAssocCache {
        &self.cores[core.index()].l2
    }

    /// Read-only view of the shared LLC.
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }
}

/// Checkpoint coverage for the whole hierarchy.
///
/// Serialized: every cache array, the victim cache, the prefetchers, the
/// per-core and global counters, the TLH filtering RNG, the telemetry
/// instruction clock, the per-core attribution trackers (sorted, so
/// identical logical state always produces identical bytes) and — only when
/// device injection is configured — the injection counters. Transient
/// (rebuilt from configuration or run scoped): `inclusion`, `tla`, the
/// `pf_buf`/`order_buf` scratch buffers, the `profile_accesses` flag and
/// the telemetry sink. The policy fields are deliberately *not*
/// pinned: warm-start fan-out resumes one warmed image under several TLA
/// policies, which is exactly a change of `tla`/LLC replacement on an
/// otherwise identical state.
impl Snapshot for CacheHierarchy {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.cores.len());
        for cc in &self.cores {
            cc.l1i.write_state(w);
            cc.l1d.write_state(w);
            cc.l2.write_state(w);
            w.write_bool(cc.prefetcher.is_some());
            if let Some(pf) = cc.prefetcher.as_ref() {
                pf.write_state(w);
            }
        }
        self.llc.write_state(w);
        w.write_bool(self.victim.is_some());
        if let Some(vc) = self.victim.as_ref() {
            vc.write_state(w);
        }
        for pc in &self.per_core {
            pc.write_state(w);
        }
        self.global.write_state(w);
        self.rng.write_state(w);
        w.write_u64(self.now_instr);
        for t in &self.trackers {
            t.write_state(w);
        }
        // Injection state rides at the tail, gated on configuration: a
        // hierarchy built without it writes nothing here, so io-disabled
        // snapshots stay byte-identical to pre-io builds. The way masks are
        // config-derived and not serialized.
        if let Some(io) = self.io.as_ref() {
            io.stats.write_state(w);
            w.write_usize(io.per_agent.len());
            for a in &io.per_agent {
                a.write_state(w);
            }
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let n = r.read_usize()?;
        if n != self.cores.len() {
            return Err(SnapshotError::Mismatch(format!(
                "hierarchy: snapshot has {n} cores, this configuration has {}",
                self.cores.len()
            )));
        }
        for cc in &mut self.cores {
            cc.l1i.read_state(r)?;
            cc.l1d.read_state(r)?;
            cc.l2.read_state(r)?;
            let has_pf = r.read_bool()?;
            match (has_pf, cc.prefetcher.as_mut()) {
                (true, Some(pf)) => pf.read_state(r)?,
                (false, None) => {}
                (snap, _) => {
                    return Err(SnapshotError::Mismatch(format!(
                        "hierarchy: snapshot was taken {} a prefetcher, \
                         this configuration runs {} one",
                        if snap { "with" } else { "without" },
                        if snap { "without" } else { "with" },
                    )));
                }
            }
        }
        self.llc.read_state(r)?;
        let has_vc = r.read_bool()?;
        match (has_vc, self.victim.as_mut()) {
            (true, Some(vc)) => vc.read_state(r)?,
            (false, None) => {}
            (snap, _) => {
                return Err(SnapshotError::Mismatch(format!(
                    "hierarchy: snapshot was taken {} a victim cache, \
                     this configuration runs {} one",
                    if snap { "with" } else { "without" },
                    if snap { "without" } else { "with" },
                )));
            }
        }
        for pc in &mut self.per_core {
            pc.read_state(r)?;
        }
        self.global.read_state(r)?;
        self.rng.read_state(r)?;
        self.now_instr = r.read_u64()?;
        for t in &mut self.trackers {
            t.read_state(r)?;
        }
        if let Some(io) = self.io.as_mut() {
            io.stats.read_state(r)?;
            let n = r.read_usize()?;
            if n != io.per_agent.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "hierarchy: snapshot has {n} io agents, this \
                     configuration has {}",
                    io.per_agent.len()
                )));
            }
            for a in &mut io.per_agent {
                a.read_state(r)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VictimCacheConfig;

    fn load(h: &mut CacheHierarchy, core: usize, line: u64) -> DataSource {
        h.access(CoreId::new(core), LineAddr::new(line), AccessKind::Load)
    }

    fn store(h: &mut CacheHierarchy, core: usize, line: u64) -> DataSource {
        h.access(CoreId::new(core), LineAddr::new(line), AccessKind::Store)
    }

    /// 1-core tiny hierarchy (Fig. 3 geometry), configurable policy.
    fn tiny(tla: TlaPolicy) -> CacheHierarchy {
        CacheHierarchy::new(&HierarchyConfig::tiny_fig3().tla(tla))
    }

    fn tiny_mode(inclusion: InclusionPolicy) -> CacheHierarchy {
        CacheHierarchy::new(&HierarchyConfig::tiny_fig3().inclusion_policy(inclusion))
    }

    /// Runs the paper's Figure 3 reference pattern a,b,a,c,a,d,a,e,a,f,a.
    fn fig3_pattern(h: &mut CacheHierarchy) {
        for x in [1u64, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1] {
            load(h, 0, x);
        }
    }

    #[test]
    fn miss_hit_latency_sources() {
        let mut h = tiny(TlaPolicy::Baseline);
        assert_eq!(load(&mut h, 0, 1), DataSource::Memory);
        assert_eq!(load(&mut h, 0, 1), DataSource::L1);
        // Sequence 1,2,1,3 leaves L1 = {1,3} and L2 = {2,3}: line 2 misses
        // the L1 but hits the 2-entry L2.
        load(&mut h, 0, 2);
        load(&mut h, 0, 1);
        load(&mut h, 0, 3);
        assert_eq!(load(&mut h, 0, 2), DataSource::L2);
    }

    #[test]
    fn baseline_fig3_pattern_creates_inclusion_victims() {
        let mut h = tiny(TlaPolicy::Baseline);
        fig3_pattern(&mut h);
        let s = h.per_core_stats(CoreId::new(0));
        assert!(
            s.inclusion_victims_l1 > 0,
            "hot line 'a' must be victimized"
        );
        assert!(h.global_stats().back_invalidates > 0);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn fig3_misses_are_attributed() {
        let mut h = tiny(TlaPolicy::Baseline);
        fig3_pattern(&mut h);
        let s = h.per_core_stats(CoreId::new(0));
        // Every L2 miss is classified exactly once.
        assert_eq!(
            s.misses_cold + s.misses_capacity + s.misses_inclusion_victim,
            s.l2_misses
        );
        // Lines a..f are cold once each; the hot line's re-misses are the
        // LLC's fault.
        assert_eq!(s.misses_cold, 6);
        assert!(
            s.misses_inclusion_victim > 0,
            "hot line re-misses must be charged to inclusion"
        );
        // Baseline kills come from ordinary replacement decisions only.
        let g = h.global_stats();
        assert_eq!(g.victim_misses_replacement, s.misses_inclusion_victim);
        assert_eq!(g.victim_misses(), s.misses_inclusion_victim);
        assert_eq!(g.victim_misses_eci, 0);
        assert_eq!(g.victim_misses_qbs_limit, 0);
        assert_eq!(g.victim_misses_vc, 0);
    }

    #[test]
    fn eci_victim_misses_are_tagged_with_eci() {
        let mut h = tiny(TlaPolicy::eci());
        fig3_pattern(&mut h);
        let g = h.global_stats();
        assert!(
            g.victim_misses_eci > 0,
            "re-reference to an early-invalidated line is an ECI-caused miss"
        );
        let s = h.per_core_stats(CoreId::new(0));
        assert_eq!(g.victim_misses(), s.misses_inclusion_victim);
        assert_eq!(
            s.misses_cold + s.misses_capacity + s.misses_inclusion_victim,
            s.l2_misses
        );
    }

    #[test]
    fn qbs_limit_victim_misses_are_tagged() {
        // Two hot lines pinned in the L1s (line 1 in the L1D, line 2 in
        // the L1I) stay LLC-LRU while a stream forces evictions. With a
        // 1-query budget QBS rejects the first hot candidate but must
        // evict the second unqueried — a limit-forced kill of a resident
        // line, whose next miss is charged to the query limit.
        let mut h =
            CacheHierarchy::new(&HierarchyConfig::tiny_fig3().tla(TlaPolicy::qbs_limited(1)));
        for i in 0..30u64 {
            load(&mut h, 0, 1);
            h.access(CoreId::new(0), LineAddr::new(2), AccessKind::IFetch);
            load(&mut h, 0, 10 + i);
        }
        let g = h.global_stats();
        assert!(g.qbs_limit_hits > 0);
        assert!(
            g.victim_misses_qbs_limit > 0,
            "limit-forced evictions of resident lines must surface as \
             qbs_limit victim misses"
        );
        let s = h.per_core_stats(CoreId::new(0));
        assert_eq!(g.victim_misses(), s.misses_inclusion_victim);
    }

    #[test]
    fn victim_cache_overflow_misses_are_tagged() {
        let mut h = CacheHierarchy::new(
            &HierarchyConfig::tiny_fig3().victim_cache(VictimCacheConfig { entries: 2 }),
        );
        // Keep line 1 hot in the L1 while streaming pushes it out of the
        // LLC and through the 2-entry victim cache: the deferred
        // back-invalidate fires on victim-cache displacement.
        for i in 0..20u64 {
            load(&mut h, 0, 1);
            load(&mut h, 0, 10 + i);
        }
        let g = h.global_stats();
        assert!(
            g.victim_misses_vc > 0,
            "hot-line misses after a victim-cache displacement must be \
             charged to the displacement"
        );
        let s = h.per_core_stats(CoreId::new(0));
        assert_eq!(g.victim_misses(), s.misses_inclusion_victim);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn non_inclusive_and_exclusive_have_no_victim_misses() {
        for mode in [InclusionPolicy::NonInclusive, InclusionPolicy::Exclusive] {
            let mut h = tiny_mode(mode);
            fig3_pattern(&mut h);
            let s = h.per_core_stats(CoreId::new(0));
            assert_eq!(s.misses_inclusion_victim, 0, "{mode:?}");
            assert_eq!(h.global_stats().victim_misses(), 0, "{mode:?}");
            assert_eq!(
                s.misses_cold + s.misses_capacity,
                s.l2_misses,
                "{mode:?}: every miss is cold or capacity"
            );
        }
    }

    #[test]
    fn llc_access_events_require_profiling_flag() {
        use tla_telemetry::{CountingSink, SharedSink};
        let shared = SharedSink::new(CountingSink::default());
        let mut h = tiny(TlaPolicy::Baseline);
        h.set_sink(shared.clone());
        fig3_pattern(&mut h);
        assert_eq!(
            shared.with(|c| c.count(EventKind::LlcAccess)),
            0,
            "no LlcAccess events while profiling is off"
        );

        let shared = SharedSink::new(CountingSink::default());
        let mut h = tiny(TlaPolicy::Baseline);
        h.set_sink(shared.clone());
        h.set_access_profiling(true);
        assert!(h.access_profiling());
        fig3_pattern(&mut h);
        let llc_accesses = h.per_core_stats(CoreId::new(0)).llc_accesses;
        assert_eq!(
            shared.with(|c| c.count(EventKind::LlcAccess)),
            llc_accesses,
            "one LlcAccess event per LLC demand access"
        );
    }

    #[test]
    fn tlh_prevents_fig3_inclusion_victims() {
        let mut h = tiny(TlaPolicy::tlh_l1());
        fig3_pattern(&mut h);
        let s = h.per_core_stats(CoreId::new(0));
        assert_eq!(s.inclusion_victims_l1, 0, "TLH keeps 'a' MRU in the LLC");
        assert!(s.tlh_hints > 0);
        assert_eq!(h.global_stats().tlh_hints, s.tlh_hints);
    }

    #[test]
    fn qbs_prevents_fig3_inclusion_victims() {
        let mut h = tiny(TlaPolicy::qbs());
        fig3_pattern(&mut h);
        assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims_l1, 0);
        let g = h.global_stats();
        assert!(g.qbs_queries > 0);
        assert!(g.qbs_rejections > 0);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn eci_rescues_hot_line_via_llc_hit() {
        let mut h = tiny(TlaPolicy::eci());
        fig3_pattern(&mut h);
        let g = h.global_stats();
        assert!(g.eci_invalidates > 0, "ECI must early-invalidate");
        assert!(g.eci_rescues > 0, "re-reference to 'a' must rescue it");
        // ECI converts some L1 hits into LLC hits but must avoid most
        // memory misses for 'a': fewer memory accesses than baseline.
        let mut base = tiny(TlaPolicy::Baseline);
        fig3_pattern(&mut base);
        assert!(
            h.per_core_stats(CoreId::new(0)).memory_accesses
                <= base.per_core_stats(CoreId::new(0)).memory_accesses
        );
    }

    #[test]
    fn non_inclusive_sends_no_back_invalidates() {
        let mut h = tiny_mode(InclusionPolicy::NonInclusive);
        fig3_pattern(&mut h);
        let g = h.global_stats();
        assert_eq!(g.back_invalidates, 0);
        assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims(), 0);
        // 'a' stays in the L1 throughout: after warm-up every access hits.
        assert!(h.l1d(CoreId::new(0)).probe(LineAddr::new(1)));
    }

    #[test]
    fn non_inclusive_line_survives_llc_eviction() {
        let mut h = tiny_mode(InclusionPolicy::NonInclusive);
        load(&mut h, 0, 1);
        // Evict 1 from the 4-entry LLC with 4 more lines.
        for x in 10..14 {
            load(&mut h, 0, x);
        }
        assert!(!h.llc_holds(LineAddr::new(1)));
        // The L1 copy (if capacity allowed) was not invalidated; with a
        // 2-entry L1 line 1 fell out by capacity, but no back-invalidate
        // message was ever sent.
        assert_eq!(h.global_stats().back_invalidates, 0);
    }

    #[test]
    fn exclusive_hit_moves_line_up_and_invalidates_llc() {
        let mut h = tiny_mode(InclusionPolicy::Exclusive);
        load(&mut h, 0, 1); // memory -> L1 only (bypasses L2 and LLC)
        assert!(!h.llc_holds(LineAddr::new(1)));
        assert!(h.l1d(CoreId::new(0)).probe(LineAddr::new(1)));
        // Walk 1 down the victim chain: L1 -> L2 -> LLC.
        for x in 2..=5 {
            load(&mut h, 0, x);
        }
        assert!(h.llc_holds(LineAddr::new(1)));
        assert_eq!(h.find_exclusion_violation(), None);
        // Re-access: LLC hit moves it up and removes the LLC copy.
        assert_eq!(load(&mut h, 0, 1), DataSource::Llc);
        assert!(!h.llc_holds(LineAddr::new(1)));
        assert!(h.core_holds(CoreId::new(0), LineAddr::new(1)));
        assert_eq!(h.find_exclusion_violation(), None);
    }

    #[test]
    fn exclusive_capacity_exceeds_inclusive() {
        // Working set of 6 lines: inclusive capacity = LLC = 4 lines, so it
        // thrashes; exclusive capacity = L2 + LLC = 6 lines, so after
        // warm-up it fits (2-entry L1 + 2-entry L2 + 4-entry LLC).
        let ws: Vec<u64> = (0..6).collect();
        let mut incl = tiny_mode(InclusionPolicy::Inclusive);
        let mut excl = tiny_mode(InclusionPolicy::Exclusive);
        for _ in 0..50 {
            for &x in &ws {
                load(&mut incl, 0, x);
                load(&mut excl, 0, x);
            }
        }
        let mi = incl.per_core_stats(CoreId::new(0)).memory_accesses;
        let me = excl.per_core_stats(CoreId::new(0)).memory_accesses;
        assert!(me < mi, "exclusive ({me}) must out-cache inclusive ({mi})");
    }

    #[test]
    fn qbs_query_limit_forces_eviction() {
        let mut h =
            CacheHierarchy::new(&HierarchyConfig::tiny_fig3().tla(TlaPolicy::qbs_limited(1)));
        fig3_pattern(&mut h);
        let g = h.global_stats();
        // With a 1-query limit QBS sometimes evicts unqueried candidates.
        assert!(g.qbs_queries > 0);
        assert!(g.qbs_queries <= g.qbs_rejections + g.llc_evictions);
    }

    #[test]
    fn modified_qbs_invalidates_rejected_candidates() {
        let mut h = tiny(TlaPolicy::qbs_invalidating());
        fig3_pattern(&mut h);
        let g = h.global_stats();
        assert!(g.qbs_rejections > 0);
        // Each rejection back-invalidated the candidate from the cores.
        assert!(g.eci_invalidates > 0);
        // Hot line is preserved in the LLC, so misses stay low, like QBS.
        let mut plain = tiny(TlaPolicy::qbs());
        fig3_pattern(&mut plain);
        assert_eq!(
            h.per_core_stats(CoreId::new(0)).llc_misses,
            plain.per_core_stats(CoreId::new(0)).llc_misses
        );
    }

    #[test]
    fn victim_cache_rescues_llc_victims() {
        let mut h = CacheHierarchy::new(
            &HierarchyConfig::tiny_fig3().victim_cache(VictimCacheConfig { entries: 4 }),
        );
        load(&mut h, 0, 1);
        for x in 10..14 {
            load(&mut h, 0, x); // evicts 1 from the LLC into the VC
        }
        assert!(!h.llc_holds(LineAddr::new(1)));
        // Re-access: rescued from the victim cache, not memory.
        assert_eq!(load(&mut h, 0, 1), DataSource::Llc);
        assert_eq!(h.global_stats().victim_cache_rescues, 1);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn dirty_l1_victim_written_into_l2() {
        let mut h = tiny(TlaPolicy::Baseline);
        store(&mut h, 0, 1);
        // Push 1 out of the 2-entry L1D.
        load(&mut h, 0, 2);
        load(&mut h, 0, 3);
        assert!(!h.l1d(CoreId::new(0)).probe(LineAddr::new(1)));
        // The dirty copy must survive in L2 (or deeper) — re-store and
        // evict everything; the writeback chain must reach the LLC.
        assert_eq!(load(&mut h, 0, 1), DataSource::L2);
    }

    #[test]
    fn dirty_eviction_reaches_memory_counter() {
        let mut h = tiny(TlaPolicy::Baseline);
        store(&mut h, 0, 1);
        // Thrash everything out of the whole hierarchy.
        for x in 10..30 {
            load(&mut h, 0, x);
        }
        assert!(h.global_stats().llc_writebacks > 0);
    }

    #[test]
    fn two_core_inclusion_victims_cross_core() {
        // Core 0 keeps a hot line in its L1; core 1 thrashes the LLC.
        let cfg = HierarchyConfig::tiny_fig3().cores(2);
        let mut h = CacheHierarchy::new(&cfg);
        load(&mut h, 0, 1);
        for i in 0..20u64 {
            load(&mut h, 0, 1); // hot in core 0's L1, invisible to LLC
            load(&mut h, 1, 100 + i); // streaming in core 1
        }
        let s0 = h.per_core_stats(CoreId::new(0));
        assert!(
            s0.inclusion_victims_l1 > 0,
            "core 1's streaming must victimize core 0's hot line"
        );
        // And QBS protects it.
        let mut h = CacheHierarchy::new(&cfg.clone().tla(TlaPolicy::qbs()));
        load(&mut h, 0, 1);
        for i in 0..20u64 {
            load(&mut h, 0, 1);
            load(&mut h, 1, 100 + i);
        }
        assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims_l1, 0);
    }

    #[test]
    fn directory_filters_back_invalidates() {
        let cfg = HierarchyConfig::tiny_fig3().cores(2);
        let mut h = CacheHierarchy::new(&cfg);
        // Only core 1 streams; core 0 never touches those lines, so no
        // back-invalidate should ever be sent to core 0.
        for i in 0..50u64 {
            load(&mut h, 1, i);
        }
        // Back-invalidates were sent (to core 1) but none created victims
        // in core 0.
        assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims(), 0);
    }

    #[test]
    fn prefetch_panics_via_access() {
        let mut h = tiny(TlaPolicy::Baseline);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.access(CoreId::new(0), LineAddr::new(1), AccessKind::Prefetch);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut h = tiny(TlaPolicy::Baseline);
        h.access(CoreId::new(0), LineAddr::new(7), AccessKind::IFetch);
        assert!(h.l1i(CoreId::new(0)).probe(LineAddr::new(7)));
        assert!(!h.l1d(CoreId::new(0)).probe(LineAddr::new(7)));
        let s = h.per_core_stats(CoreId::new(0));
        assert_eq!(s.l1i_accesses, 1);
        assert_eq!(s.l1d_accesses, 0);
    }

    #[test]
    fn prefetcher_fills_l2_not_l1() {
        // Scaled-down realistic hierarchy with the prefetcher on.
        let cfg = HierarchyConfig::scaled(1, 8);
        let mut h = CacheHierarchy::new(&cfg);
        // Sequential streaming trains the prefetcher.
        for i in 0..64u64 {
            load(&mut h, 0, i); // consecutive lines
        }
        assert!(h.global_stats().prefetches > 0);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn tlh_probability_filters_hints() {
        let cfg = HierarchyConfig::tiny_fig3().tla(TlaPolicy::tlh_l1_filtered(0.0));
        let mut h = CacheHierarchy::new(&cfg);
        fig3_pattern(&mut h);
        assert_eq!(h.global_stats().tlh_hints, 0);

        let cfg = HierarchyConfig::tiny_fig3().tla(TlaPolicy::tlh_l1_filtered(1.0));
        let mut h = CacheHierarchy::new(&cfg);
        fig3_pattern(&mut h);
        let all = h.global_stats().tlh_hints;
        assert!(all > 0);
    }

    #[test]
    fn tlh_l2_only_hints_on_l2_hits() {
        let mut h = tiny(TlaPolicy::tlh_l2());
        load(&mut h, 0, 1);
        load(&mut h, 0, 1); // L1 hit: no hint under TLH-L2
        assert_eq!(h.global_stats().tlh_hints, 0);
        // Sequence leaves L1 = {1,3}, L2 = {2,3}; line 2 then hits the L2.
        load(&mut h, 0, 2);
        load(&mut h, 0, 1);
        load(&mut h, 0, 3);
        load(&mut h, 0, 2); // L2 hit: hint
        assert_eq!(h.global_stats().tlh_hints, 1);
    }

    #[test]
    fn stats_snapshot_since() {
        let mut h = tiny(TlaPolicy::Baseline);
        load(&mut h, 0, 1);
        let snap = *h.per_core_stats(CoreId::new(0));
        load(&mut h, 0, 2);
        let delta = h.per_core_stats(CoreId::new(0)).since(&snap);
        assert_eq!(delta.l1d_accesses, 1);
        assert_eq!(delta.memory_accesses, 1);
    }

    #[test]
    fn eci_line_stays_in_llc_after_early_invalidation() {
        let mut h = tiny(TlaPolicy::eci());
        // Fill the LLC: 1,2,3,4. Then miss on 5: victim is 1 (LRU),
        // ECI target is 2.
        for x in 1..=4 {
            load(&mut h, 0, x);
        }
        load(&mut h, 0, 5);
        // Target 2 was early-invalidated from the cores but kept in LLC.
        assert!(h.llc_holds(LineAddr::new(2)));
        assert!(!h.core_holds(CoreId::new(0), LineAddr::new(2)));
        assert!(h.global_stats().eci_invalidates > 0);
    }

    #[test]
    fn inclusive_invariant_random_storm() {
        let mut rng = tla_rng::SmallRng::seed_from_u64(42);
        for tla in [
            TlaPolicy::baseline(),
            TlaPolicy::tlh_l1(),
            TlaPolicy::eci(),
            TlaPolicy::qbs(),
        ] {
            let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(tla);
            let mut h = CacheHierarchy::new(&cfg);
            for _ in 0..500 {
                let core = rng.gen_range(0usize..2);
                let line = rng.gen_range(0..16u64);
                let kind = if rng.gen_bool(0.3) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                h.access(CoreId::new(core), LineAddr::new(line), kind);
                assert_eq!(h.find_inclusion_violation(), None, "policy {tla}");
            }
        }
    }

    #[test]
    fn tla_on_non_inclusive_base_is_nearly_inert() {
        // Figure 9b: applying TLA policies on a non-inclusive hierarchy
        // must change little (no inclusion victims to avoid).
        let run = |tla: TlaPolicy| {
            let cfg = HierarchyConfig::tiny_fig3()
                .cores(2)
                .inclusion_policy(InclusionPolicy::NonInclusive)
                .tla(tla);
            let mut h = CacheHierarchy::new(&cfg);
            for i in 0..200u64 {
                load(&mut h, 0, i % 3); // hot in core 0
                load(&mut h, 1, 100 + i); // streaming in core 1
            }
            (
                h.per_core_stats(CoreId::new(0)).memory_accesses,
                h.per_core_stats(CoreId::new(1)).memory_accesses,
            )
        };
        let base = run(TlaPolicy::baseline());
        let qbs = run(TlaPolicy::qbs());
        assert_eq!(
            base, qbs,
            "QBS on a non-inclusive base changes nothing here"
        );
    }

    #[test]
    fn victim_cache_composes_with_qbs() {
        let cfg = HierarchyConfig::tiny_fig3()
            .cores(2)
            .tla(TlaPolicy::qbs())
            .victim_cache(VictimCacheConfig { entries: 4 });
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..300u64 {
            load(&mut h, 0, i % 3);
            load(&mut h, 1, 100 + i);
        }
        assert_eq!(h.find_inclusion_violation(), None);
        // QBS protects core 0's hot lines even before the victim cache.
        assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims_l1, 0);
    }

    #[test]
    fn exclusive_mode_with_prefetcher_keeps_invariant() {
        let cfg = HierarchyConfig::scaled(2, 8).inclusion_policy(InclusionPolicy::Exclusive);
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..2000u64 {
            load(&mut h, (i % 2) as usize, i / 2); // two interleaved streams
        }
        assert!(h.global_stats().prefetches > 0);
        assert_eq!(h.find_exclusion_violation(), None);
    }

    #[test]
    fn eight_core_qbs_protects_everyone() {
        // A 64-entry fully-associative LLC over 8 cores' tiny caches, with
        // a query budget wide enough to walk past every hot line (the
        // paper's unlimited-query configuration).
        let line = tla_types::LINE_BYTES;
        let fa = |name: &str, lines: usize| {
            tla_cache::CacheConfig::new(name, lines * line, lines, tla_cache::Policy::Lru)
                .expect("valid geometry")
        };
        let cfg = HierarchyConfig::tiny_fig3()
            .cores(8)
            .geometries(fa("L1I", 2), fa("L1D", 2), fa("L2", 2), fa("LLC", 64))
            .expect("valid geometries")
            .tla(TlaPolicy::Qbs(crate::policy::QbsConfig {
                max_queries: 64,
                ..crate::policy::QbsConfig::L1_L2
            }));
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..500u64 {
            for c in 0..7 {
                load(&mut h, c, (c as u64) * 1000 + i % 2); // hot pairs
            }
            load(&mut h, 7, 100_000 + i); // one thrasher
        }
        for c in 0..7 {
            let v = h.per_core_stats(CoreId::new(c)).inclusion_victims();
            assert_eq!(v, 0, "core {c} suffered {v} victims under QBS");
        }
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn dirty_writeback_to_line_parked_in_victim_cache() {
        // Regression (found by proptest): under QBS + victim cache, a
        // core-resident line can be evicted from the LLC into the victim
        // cache (QBS's query-limit fallback) with its back-invalidation
        // deferred; a later dirty L2 writeback of that line must land in
        // the victim cache, not violate inclusion.
        let cfg = HierarchyConfig::tiny_fig3()
            .cores(2)
            .tla(TlaPolicy::qbs())
            .victim_cache(VictimCacheConfig { entries: 4 });
        let mut h = CacheHierarchy::new(&cfg);
        store(&mut h, 0, 16);
        load(&mut h, 0, 0);
        store(&mut h, 0, 0);
        load(&mut h, 1, 1);
        store(&mut h, 0, 2);
        load(&mut h, 0, 47);
        assert_eq!(h.find_inclusion_violation(), None);
        // The parked line (now held only by the victim cache) is rescued
        // on re-access without a memory trip.
        assert_eq!(load(&mut h, 0, 16), DataSource::Llc);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn snoop_filter_accounting() {
        // Inclusive: LLC misses need no core snoops. Non-inclusive and
        // exclusive: every demand LLC miss broadcasts to the other cores.
        let runs = [
            (InclusionPolicy::Inclusive, false),
            (InclusionPolicy::NonInclusive, true),
            (InclusionPolicy::Exclusive, true),
        ];
        for (mode, snoops_expected) in runs {
            let cfg = HierarchyConfig::tiny_fig3().cores(2).inclusion_policy(mode);
            let mut h = CacheHierarchy::new(&cfg);
            for i in 0..50u64 {
                load(&mut h, 0, i);
            }
            let probes = h.global_stats().snoop_probes;
            if snoops_expected {
                assert!(probes > 0, "{mode:?} must pay snoop broadcasts");
                // One probe per other core per demand LLC miss.
                assert_eq!(probes, h.per_core_stats(CoreId::new(0)).llc_misses);
            } else {
                assert_eq!(probes, 0, "{mode:?} is a natural snoop filter");
            }
        }
    }

    #[test]
    fn exclusive_llc_hit_preserves_dirty_bit() {
        // Regression: an exclusive-LLC hit used to discard the `Evicted`
        // returned by `invalidate`, so a dirty line moved up *clean* and
        // its writeback vanished. The dirty bit must survive the full
        // round trip L1 -> L2 -> LLC -> L1 and still reach the writeback
        // counter when the line finally dies.
        let mut h = tiny_mode(InclusionPolicy::Exclusive);
        store(&mut h, 0, 1); // the only store in this test
        for x in 2..=5 {
            load(&mut h, 0, x); // walk line 1 down: L1 -> L2 -> LLC (dirty)
        }
        assert!(h.llc_holds(LineAddr::new(1)));
        // Exclusive hit: the line moves back up and must come up dirty.
        assert_eq!(load(&mut h, 0, 1), DataSource::Llc);
        assert!(!h.llc_holds(LineAddr::new(1)));
        assert_eq!(h.find_exclusion_violation(), None);
        // Thrash the whole hierarchy with clean lines: the one dirty line
        // must be written back exactly once on its way out.
        for x in 10..30 {
            load(&mut h, 0, x);
        }
        assert!(!h.core_holds(CoreId::new(0), LineAddr::new(1)));
        assert!(!h.llc_holds(LineAddr::new(1)));
        assert_eq!(
            h.global_stats().llc_writebacks,
            1,
            "the dirty bit was lost on the upward move"
        );
    }

    #[test]
    fn qbs_exhausted_set_evicts_last_candidate() {
        // Regression: when every candidate in the set is core-resident the
        // fallback used to return index 0 — evicting the coldest line the
        // walk had just promoted to MRU. It must evict the *last*
        // candidate instead.
        let cfg = HierarchyConfig::tiny_fig3().cores(2).tla(TlaPolicy::qbs());
        let mut h = CacheHierarchy::new(&cfg);
        load(&mut h, 0, 1);
        load(&mut h, 0, 2);
        load(&mut h, 1, 3);
        load(&mut h, 1, 4);
        // LLC (LRU, 4-entry) holds 1,2,3,4 in that recency order, and
        // every line is still resident in a core cache: the QBS walk
        // rejects all four candidates.
        load(&mut h, 0, 5);
        let g = h.global_stats();
        assert_eq!(g.qbs_limit_hits, 1, "full-set rejection must fall back");
        assert_eq!(g.qbs_rejections, 4);
        assert!(g.qbs_queries <= g.qbs_rejections + g.llc_evictions);
        // Victim order was [1, 2, 3, 4]: the last candidate (4) dies, the
        // first (1) survives with the MRU grant the walk gave it.
        assert!(h.llc_holds(LineAddr::new(1)), "candidate 0 must survive");
        assert!(!h.llc_holds(LineAddr::new(4)), "last candidate must die");
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn prefetch_counter_skips_l2_resident_lines() {
        // Regression: `access()` used to count a prefetch (and emit its
        // event) before `prefetch()` noticed the line was already in the
        // L2. The counter must equal lines actually requested below the
        // L2, i.e. the L2's prefetch *misses*, not its prefetch lookups.
        let cfg = HierarchyConfig::scaled(1, 8);
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..64u64 {
            load(&mut h, 0, i); // sequential stream: windows overlap
        }
        let l2 = h.l2(CoreId::new(0)).stats();
        assert!(
            l2.prefetch_accesses > l2.prefetch_misses,
            "stream overlap must nominate some already-resident lines"
        );
        assert_eq!(h.global_stats().prefetches, l2.prefetch_misses);
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        // Warm a hierarchy, snapshot it, restore into a freshly built twin,
        // then drive both with the same tail: every counter must agree.
        let cfg = HierarchyConfig::scaled(2, 8).tla(TlaPolicy::tlh_l1_filtered(0.5));
        let mut h = CacheHierarchy::new(&cfg);
        let mut rng = tla_rng::SmallRng::seed_from_u64(7);
        let drive = |h: &mut CacheHierarchy, rng: &mut tla_rng::SmallRng, n: usize| {
            for _ in 0..n {
                let core = rng.gen_range(0usize..2);
                let line = rng.gen_range(0..4096u64);
                let kind = if rng.gen_bool(0.3) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                h.access(CoreId::new(core), LineAddr::new(line), kind);
            }
        };
        drive(&mut h, &mut rng, 3000);
        h.set_now(3000);

        let mut w = SnapshotWriter::new();
        h.write_state(&mut w);
        let bytes = w.finish();

        let mut twin = CacheHierarchy::new(&cfg);
        let mut r = SnapshotReader::new(&bytes).expect("valid snapshot");
        twin.read_state(&mut r).expect("restore succeeds");

        let mut rng_a = rng.clone();
        let mut rng_b = rng;
        drive(&mut h, &mut rng_a, 2000);
        drive(&mut twin, &mut rng_b, 2000);
        for c in 0..2 {
            assert_eq!(
                h.per_core_stats(CoreId::new(c)),
                twin.per_core_stats(CoreId::new(c)),
                "core {c} counters diverged after resume"
            );
        }
        assert_eq!(h.global_stats(), twin.global_stats());
        assert_eq!(h.find_inclusion_violation(), None);
        assert_eq!(twin.find_inclusion_violation(), None);
    }

    #[test]
    fn snapshot_rejects_mismatched_configuration() {
        let mut h = CacheHierarchy::new(&HierarchyConfig::tiny_fig3().cores(2));
        fig3_pattern(&mut h);
        let mut w = SnapshotWriter::new();
        h.write_state(&mut w);
        let bytes = w.finish();

        // Wrong core count.
        let mut one = CacheHierarchy::new(&HierarchyConfig::tiny_fig3());
        let mut r = SnapshotReader::new(&bytes).expect("valid snapshot");
        let err = one.read_state(&mut r).unwrap_err();
        assert!(matches!(err, tla_snapshot::SnapshotError::Mismatch(_)));
        assert!(err.to_string().contains("cores"), "got: {err}");

        // Victim-cache presence differs.
        let mut vc = CacheHierarchy::new(
            &HierarchyConfig::tiny_fig3()
                .cores(2)
                .victim_cache(VictimCacheConfig { entries: 4 }),
        );
        let mut r = SnapshotReader::new(&bytes).expect("valid snapshot");
        let err = vc.read_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("victim cache"), "got: {err}");
    }

    #[test]
    fn snapshot_resumes_across_policies() {
        // The fan-out contract: a baseline-warmed image restores into a
        // hierarchy running a different TLA policy.
        let warm_cfg = HierarchyConfig::tiny_fig3().cores(2);
        let mut h = CacheHierarchy::new(&warm_cfg);
        fig3_pattern(&mut h);
        let mut w = SnapshotWriter::new();
        h.write_state(&mut w);
        let bytes = w.finish();

        for tla in [TlaPolicy::tlh_l1(), TlaPolicy::eci(), TlaPolicy::qbs()] {
            let mut t = CacheHierarchy::new(&warm_cfg.clone().tla(tla));
            let mut r = SnapshotReader::new(&bytes).expect("valid snapshot");
            t.read_state(&mut r).expect("cross-policy restore succeeds");
            // The restored image carries the warm contents.
            assert!(
                t.llc_holds(LineAddr::new(1)) || t.core_holds(CoreId::new(0), LineAddr::new(1))
            );
            fig3_pattern(&mut t);
            assert_eq!(t.find_inclusion_violation(), None, "policy {tla}");
        }
    }

    #[test]
    fn io_injection_fills_llc_not_core_caches() {
        let cfg = HierarchyConfig::tiny_fig3().io(crate::config::IoInjectConfig {
            agents: 1,
            inject_ways: None,
            partition: false,
        });
        let mut h = CacheHierarchy::new(&cfg);
        h.io_inject(0, LineAddr::new(100), true);
        assert!(h.llc_holds(LineAddr::new(100)));
        assert!(!h.core_holds(CoreId::new(0), LineAddr::new(100)));
        let io = h.io_stats().unwrap();
        assert_eq!(io.injections, 1);
        assert_eq!(io.inject_fills, 1);
        assert_eq!(io.inject_hits, 0);
        // Re-injection of the same line hits in place.
        h.io_inject(0, LineAddr::new(100), false);
        assert_eq!(h.io_stats().unwrap().inject_hits, 1);
        let agents = h.io_agent_stats().unwrap();
        assert_eq!(agents[0].injections, 2);
        assert_eq!(agents[0].fills, 1);
        assert_eq!(agents[0].hits, 1);
    }

    #[test]
    fn io_injection_creates_attributed_inclusion_victims() {
        // Keep line 1 hot in core 0's L1 while unlimited injections thrash
        // the 4-entry LLC: the back-invalidates and the hot line's re-misses
        // must be charged to the injection subsystem.
        let cfg = HierarchyConfig::tiny_fig3().io(crate::config::IoInjectConfig {
            agents: 1,
            inject_ways: None,
            partition: false,
        });
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..20u64 {
            load(&mut h, 0, 1);
            h.io_inject(0, LineAddr::new(1000 + i), true);
        }
        let io = *h.io_stats().unwrap();
        assert!(io.llc_evictions > 0, "injections must evict");
        assert!(io.back_invalidates > 0, "evicting the hot line must b-inv");
        assert!(
            io.victim_misses_io > 0,
            "hot-line re-misses must be charged to injection"
        );
        let s = h.per_core_stats(CoreId::new(0));
        assert!(s.misses_inclusion_victim >= io.victim_misses_io);
        // The app-policy attribution counters stay clear of io damage.
        assert_eq!(h.global_stats().victim_misses(), 0);
        assert!(io.writebacks > 0, "dirty DMA lines write back on eviction");
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn io_injection_way_limit_confines_device_fills() {
        // 4-way LLC, injections limited to way 0: device traffic recycles
        // one way and never evicts the app's lines in ways 1..3.
        let cfg = HierarchyConfig::tiny_fig3().io(crate::config::IoInjectConfig {
            agents: 1,
            inject_ways: Some(1),
            partition: false,
        });
        let mut h = CacheHierarchy::new(&cfg);
        // Device traffic claims way 0 first; the app's lines then fill the
        // remaining invalid ways and stay out of the device's reach.
        h.io_inject(0, LineAddr::new(999), true);
        load(&mut h, 0, 1);
        load(&mut h, 0, 2);
        for i in 0..50u64 {
            h.io_inject(0, LineAddr::new(1000 + i), true);
        }
        assert!(h.llc_holds(LineAddr::new(1)), "app line survives");
        assert!(h.llc_holds(LineAddr::new(2)), "app line survives");
        let io = h.io_stats().unwrap();
        assert_eq!(io.back_invalidates, 0);
        assert_eq!(h.per_core_stats(CoreId::new(0)).inclusion_victims(), 0);
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn io_partition_keeps_app_out_of_device_ways() {
        // Partitioned: app fills avoid injection way 0, so a device line
        // parked there survives arbitrary app streaming.
        let cfg = HierarchyConfig::tiny_fig3().io(crate::config::IoInjectConfig {
            agents: 1,
            inject_ways: Some(1),
            partition: true,
        });
        let mut h = CacheHierarchy::new(&cfg);
        h.io_inject(0, LineAddr::new(500), true);
        for i in 0..50u64 {
            load(&mut h, 0, i);
        }
        assert!(
            h.llc_holds(LineAddr::new(500)),
            "app streaming must not evict the partitioned device line"
        );
        assert_eq!(h.find_inclusion_violation(), None);
    }

    #[test]
    fn io_disabled_hierarchy_is_bit_identical() {
        // A hierarchy with the io feature compiled in but not configured
        // must produce byte-identical snapshots to one that never heard of
        // it (the feature is presence-gated everywhere).
        let cfg = HierarchyConfig::tiny_fig3().cores(2);
        let mut a = CacheHierarchy::new(&cfg);
        let mut b = CacheHierarchy::new(&cfg);
        fig3_pattern(&mut a);
        fig3_pattern(&mut b);
        let bytes = |h: &CacheHierarchy| {
            let mut w = SnapshotWriter::new();
            h.write_state(&mut w);
            w.finish()
        };
        assert_eq!(bytes(&a), bytes(&b));
        assert!(a.io_stats().is_none());
    }

    #[test]
    fn io_snapshot_round_trips_counters() {
        let cfg = HierarchyConfig::tiny_fig3().io(crate::config::IoInjectConfig {
            agents: 2,
            inject_ways: Some(2),
            partition: true,
        });
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..10u64 {
            load(&mut h, 0, i % 3);
            h.io_inject((i % 2) as usize, LineAddr::new(2000 + i), true);
        }
        let mut w = SnapshotWriter::new();
        h.write_state(&mut w);
        let bytes = w.finish();

        let mut twin = CacheHierarchy::new(&cfg);
        let mut r = SnapshotReader::new(&bytes).expect("valid snapshot");
        twin.read_state(&mut r).expect("restore succeeds");
        assert_eq!(twin.io_stats(), h.io_stats());
        assert_eq!(twin.io_agent_stats(), h.io_agent_stats());
    }

    #[test]
    fn exclusive_invariant_random_storm() {
        let mut rng = tla_rng::SmallRng::seed_from_u64(43);
        let cfg = HierarchyConfig::tiny_fig3()
            .cores(2)
            .inclusion_policy(InclusionPolicy::Exclusive);
        let mut h = CacheHierarchy::new(&cfg);
        for _ in 0..500 {
            let core = rng.gen_range(0usize..2);
            let line = rng.gen_range(0..16u64);
            h.access(CoreId::new(core), LineAddr::new(line), AccessKind::Load);
            assert_eq!(h.find_exclusion_violation(), None);
        }
    }
}
