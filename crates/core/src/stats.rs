//! Hierarchy statistics.
//!
//! The counter structs themselves live in [`tla_types::counters`] so the
//! telemetry layer can consume them without depending on this crate; the
//! hierarchy re-exports them here for backwards compatibility.

pub use tla_types::counters::{GlobalStats, PerCoreStats};
