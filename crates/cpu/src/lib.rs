//! Trace-driven out-of-order core timing model.
//!
//! Reimplements CMP$im's simplified core (§IV-A): each core is a 4-way
//! out-of-order processor with a 128-entry reorder buffer, load-to-use
//! latencies of 1 / 10 / 24 cycles for L1 / L2 / LLC, a 150-cycle memory
//! penalty and 32 outstanding misses to memory.
//!
//! Instead of simulating cycle by cycle, [`CoreModel`] is an O(1)-per-
//! instruction analytic model:
//!
//! * an instruction enters the ROB no earlier than one fetch slot after its
//!   predecessor (width-limited) and no earlier than the retirement of the
//!   instruction `ROB` entries before it (occupancy-limited);
//! * loads complete `latency(source)` cycles after entry; memory-sourced
//!   loads additionally contend for the MSHR pool;
//! * retirement is in order;
//! * an instruction-fetch miss stalls the front end until the fetch
//!   completes.
//!
//! The model advances monotonically, so multiple cores can be interleaved
//! by always stepping the core with the smallest [`CoreModel::now`].
//!
//! # Examples
//!
//! ```
//! use tla_cpu::{CoreModel, CoreModelConfig};
//! use tla_types::{AccessKind, DataSource};
//!
//! let mut core = CoreModel::new(CoreModelConfig::default());
//! for _ in 0..1000 {
//!     core.step(None, None); // 1000 non-memory instructions
//! }
//! let ipc = core.ipc();
//! assert!(ipc > 3.5 && ipc <= 4.0); // 4-wide core, no stalls
//! ```

use tla_cache::MshrFile;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{AccessKind, Cycle, DataSource};

/// Load-to-use latencies of the hierarchy (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 hit latency in cycles.
    pub l1: Cycle,
    /// L2 hit latency.
    pub l2: Cycle,
    /// LLC hit latency.
    pub llc: Cycle,
    /// Main-memory penalty.
    pub memory: Cycle,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l1: 1,
            l2: 10,
            llc: 24,
            memory: 150,
        }
    }
}

impl Latencies {
    /// The load-to-use latency for data arriving from `source`.
    pub fn of(&self, source: DataSource) -> Cycle {
        match source {
            DataSource::L1 => self.l1,
            DataSource::L2 => self.l2,
            DataSource::Llc => self.llc,
            DataSource::Memory => self.memory,
        }
    }
}

/// Configuration of one modelled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreModelConfig {
    /// Fetch/retire width (instructions per cycle).
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Outstanding misses to memory.
    pub mshrs: usize,
    /// Hierarchy latencies.
    pub latencies: Latencies,
}

impl Default for CoreModelConfig {
    fn default() -> Self {
        CoreModelConfig {
            width: 4,
            rob_entries: 128,
            mshrs: 32,
            latencies: Latencies::default(),
        }
    }
}

/// The analytic core model. Feed it one call to [`CoreModel::step`] per
/// committed instruction.
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreModelConfig,
    /// Ring buffer of the retire times of the last `rob_entries`
    /// instructions.
    rob: Vec<Cycle>,
    rob_idx: usize,
    retired: u64,
    /// Cycle in which the next instruction will be fetched.
    fetch_cycle: Cycle,
    /// Instructions already fetched in `fetch_cycle`.
    fetch_slot: usize,
    last_retire: Cycle,
    mshr: MshrFile,
}

impl CoreModel {
    /// Creates an idle core at cycle zero.
    ///
    /// # Panics
    ///
    /// Panics if `width`, `rob_entries` or `mshrs` is zero.
    pub fn new(cfg: CoreModelConfig) -> Self {
        assert!(cfg.width > 0, "width must be at least 1");
        assert!(cfg.rob_entries > 0, "ROB must have at least 1 entry");
        CoreModel {
            rob: vec![0; cfg.rob_entries],
            rob_idx: 0,
            retired: 0,
            fetch_cycle: 0,
            fetch_slot: 0,
            last_retire: 0,
            mshr: MshrFile::new(cfg.mshrs),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreModelConfig {
        &self.cfg
    }

    /// The core's current front-end time — the cycle the next instruction
    /// would be fetched. Multi-core drivers step the core with the smallest
    /// `now()` to keep shared-cache access order timestamp-accurate.
    pub fn now(&self) -> Cycle {
        self.fetch_cycle
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycles elapsed from cycle 0 to the last retirement.
    pub fn cycles(&self) -> Cycle {
        self.last_retire
    }

    /// Retired instructions per cycle so far (0 if nothing retired).
    pub fn ipc(&self) -> f64 {
        if self.last_retire == 0 {
            0.0
        } else {
            self.retired as f64 / self.last_retire as f64
        }
    }

    /// MSHR occupancy stalls observed (transactions that waited).
    pub fn mshr_stalls(&self) -> u64 {
        self.mshr.stalls()
    }

    /// Accounts for one committed instruction and returns its retire time.
    ///
    /// * `ifetch` — where the instruction's code line came from, if this
    ///   instruction touched a new code line (most instructions fetch from
    ///   the already-resident line and pass `None`).
    /// * `mem` — the data access the instruction performed, if any, with
    ///   the level that serviced it.
    pub fn step(
        &mut self,
        ifetch: Option<DataSource>,
        mem: Option<(AccessKind, DataSource)>,
    ) -> Cycle {
        // Front-end: an instruction-cache miss stalls fetch until the line
        // arrives (memory-sourced fetches also hold an MSHR).
        if let Some(src) = ifetch {
            if src != DataSource::L1 {
                let lat = self.cfg.latencies.of(src);
                let done = if src == DataSource::Memory {
                    self.mshr.issue(self.fetch_cycle, lat)
                } else {
                    self.fetch_cycle + lat
                };
                if done > self.fetch_cycle {
                    self.fetch_cycle = done;
                    self.fetch_slot = 0;
                }
            }
        }

        // ROB occupancy: cannot enter until the instruction `rob_entries`
        // ago has retired.
        let rob_free = self.rob[self.rob_idx];
        if rob_free > self.fetch_cycle {
            self.fetch_cycle = rob_free;
            self.fetch_slot = 0;
        }
        let enter = self.fetch_cycle;

        // Width limit: `width` instructions per fetch cycle.
        self.fetch_slot += 1;
        if self.fetch_slot >= self.cfg.width {
            self.fetch_cycle += 1;
            self.fetch_slot = 0;
        }

        // Execute.
        let complete = match mem {
            None => enter + 1,
            Some((kind, src)) => {
                let lat = self.cfg.latencies.of(src);
                if kind.is_write() {
                    // Stores retire without waiting for the line, but a
                    // memory-bound store still occupies an MSHR; when the
                    // pool is full the store buffer backs up and stalls the
                    // front end until a register frees.
                    if src == DataSource::Memory {
                        let done = self.mshr.issue(enter, lat);
                        let start = done - lat;
                        if start > enter {
                            self.fetch_cycle = self.fetch_cycle.max(start);
                            self.fetch_slot = 0;
                        }
                        start.max(enter) + 1
                    } else {
                        enter + 1
                    }
                } else if src == DataSource::Memory {
                    self.mshr.issue(enter, lat)
                } else {
                    enter + lat
                }
            }
        };

        // In-order retirement.
        let retire = complete.max(self.last_retire);
        self.last_retire = retire;
        self.rob[self.rob_idx] = retire;
        self.rob_idx = (self.rob_idx + 1) % self.cfg.rob_entries;
        self.retired += 1;
        retire
    }
}

impl Snapshot for CoreModel {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64_slice(&self.rob);
        w.write_usize(self.rob_idx);
        w.write_u64(self.retired);
        w.write_u64(self.fetch_cycle);
        w.write_usize(self.fetch_slot);
        w.write_u64(self.last_retire);
        self.mshr.write_state(w);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.read_u64_slice_into(&mut self.rob, "ROB ring buffer")?;
        let rob_idx = r.read_usize()?;
        if rob_idx >= self.cfg.rob_entries {
            return Err(SnapshotError::Mismatch(format!(
                "ROB index {rob_idx} out of range for {} entries",
                self.cfg.rob_entries
            )));
        }
        self.rob_idx = rob_idx;
        self.retired = r.read_u64()?;
        self.fetch_cycle = r.read_u64()?;
        self.fetch_slot = r.read_usize()?;
        self.last_retire = r.read_u64()?;
        self.mshr.read_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreModel {
        CoreModel::new(CoreModelConfig::default())
    }

    #[test]
    fn ideal_ipc_is_width() {
        let mut c = core();
        for _ in 0..100_000 {
            c.step(None, None);
        }
        assert!((c.ipc() - 4.0).abs() < 0.01, "ipc = {}", c.ipc());
    }

    #[test]
    fn l1_loads_barely_slow_retirement() {
        let mut c = core();
        for _ in 0..10_000 {
            c.step(None, Some((AccessKind::Load, DataSource::L1)));
        }
        assert!(c.ipc() > 3.5, "ipc = {}", c.ipc());
    }

    #[test]
    fn serial_memory_misses_overlap_in_rob_window() {
        // 1 memory load per 32 instructions: the 128-entry ROB lets four
        // such loads overlap, so throughput is far better than serialized
        // 150-cycle stalls.
        let mut c = core();
        let n = 32_000u64;
        for i in 0..n {
            if i % 32 == 0 {
                c.step(None, Some((AccessKind::Load, DataSource::Memory)));
            } else {
                c.step(None, None);
            }
        }
        let serial_cycles = (n / 32) * 150;
        assert!(
            c.cycles() < serial_cycles,
            "ROB must overlap misses: {} vs serial {}",
            c.cycles(),
            serial_cycles
        );
        // But it cannot beat the width limit either.
        assert!(c.cycles() >= n / 4);
    }

    #[test]
    fn rob_limits_overlap() {
        // Two memory loads 200 instructions apart cannot overlap (ROB is
        // 128): with a 128-gap they can.
        let run = |gap: u64| {
            let mut c = core();
            c.step(None, Some((AccessKind::Load, DataSource::Memory)));
            for _ in 0..gap {
                c.step(None, None);
            }
            c.step(None, Some((AccessKind::Load, DataSource::Memory)));
            c.cycles()
        };
        let tight = run(100); // second load enters while first in flight
        let loose = run(200); // ROB drained: no overlap
        assert!(tight < loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn stores_do_not_stall_retirement() {
        // A sparse memory store is invisible to timing; a sparse memory
        // load pays the full 150-cycle penalty.
        let run = |kind: AccessKind| {
            let mut c = core();
            c.step(None, Some((kind, DataSource::Memory)));
            for _ in 0..200 {
                c.step(None, None);
            }
            c.cycles()
        };
        let store_time = run(AccessKind::Store);
        let load_time = run(AccessKind::Load);
        assert!(store_time < 70, "store_time = {store_time}");
        assert!(load_time >= 150, "load_time = {load_time}");
    }

    #[test]
    fn store_bursts_exhaust_mshrs() {
        // Back-to-back memory stores fill the 32 MSHRs and throttle.
        let mut c = core();
        for _ in 0..10_000 {
            c.step(None, Some((AccessKind::Store, DataSource::Memory)));
        }
        assert!(c.mshr_stalls() > 0);
        // Sustained rate is bounded by 32 outstanding / 150 cycles.
        let max_rate = 32.0 / 150.0;
        assert!(c.ipc() < max_rate * 1.1, "ipc = {}", c.ipc());
    }

    #[test]
    fn ifetch_miss_stalls_frontend() {
        let mut hit = core();
        let mut miss = core();
        for i in 0..1000u64 {
            let src = if i % 16 == 0 {
                Some(DataSource::Memory)
            } else {
                None
            };
            miss.step(src, None);
            hit.step(None, None);
        }
        assert!(miss.cycles() > hit.cycles() * 5);
    }

    #[test]
    fn ifetch_l1_hits_cost_nothing_extra() {
        let mut a = core();
        let mut b = core();
        for _ in 0..1000 {
            a.step(Some(DataSource::L1), None);
            b.step(None, None);
        }
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn latency_ordering_respected() {
        let run = |src: DataSource| {
            let mut c = core();
            for _ in 0..1000 {
                c.step(None, Some((AccessKind::Load, src)));
            }
            c.cycles()
        };
        let l1 = run(DataSource::L1);
        let l2 = run(DataSource::L2);
        let llc = run(DataSource::Llc);
        let mem = run(DataSource::Memory);
        assert!(l1 < l2 && l2 < llc && llc < mem);
    }

    #[test]
    fn now_is_monotonic() {
        let mut c = core();
        let mut last = 0;
        for i in 0..5000u64 {
            let mem = if i % 7 == 0 {
                Some((AccessKind::Load, DataSource::Memory))
            } else {
                None
            };
            c.step(None, mem);
            assert!(c.now() >= last);
            last = c.now();
        }
    }

    #[test]
    fn retire_times_are_monotonic() {
        let mut c = core();
        let mut last = 0;
        for i in 0..5000u64 {
            let mem = match i % 11 {
                0 => Some((AccessKind::Load, DataSource::Memory)),
                5 => Some((AccessKind::Load, DataSource::L2)),
                _ => None,
            };
            let r = c.step(None, mem);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = CoreModelConfig::default();
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.rob_entries, 128);
        assert_eq!(cfg.mshrs, 32);
        assert_eq!(
            cfg.latencies,
            Latencies {
                l1: 1,
                l2: 10,
                llc: 24,
                memory: 150
            }
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = CoreModel::new(CoreModelConfig {
            width: 0,
            ..Default::default()
        });
    }
}

// Randomized invariant tests: deterministic seeded streams stand in for
// the proptest strategies the offline workspace cannot depend on.
#[cfg(test)]
mod randomized_tests {
    use super::*;
    use tla_rng::SmallRng;

    const SOURCES: [DataSource; 4] = [
        DataSource::L1,
        DataSource::L2,
        DataSource::Llc,
        DataSource::Memory,
    ];

    fn mem_op(rng: &mut SmallRng) -> Option<(AccessKind, DataSource)> {
        // 3:1 in favour of non-memory instructions, like real traces.
        if rng.gen_range(0u32..4) < 3 {
            return None;
        }
        let kind = if rng.gen_bool(0.5) {
            AccessKind::Load
        } else {
            AccessKind::Store
        };
        Some((kind, SOURCES[rng.gen_range(0usize..4)]))
    }

    fn ifetch(rng: &mut SmallRng) -> Option<DataSource> {
        if rng.gen_range(0u32..9) < 8 {
            None
        } else {
            Some(SOURCES[rng.gen_range(0usize..4)])
        }
    }

    /// Retire times never go backwards and `now()` is monotone for any
    /// instruction stream.
    #[test]
    fn timing_is_monotone() {
        for case in 0..48u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0DE_0000 + case);
            let len = rng.gen_range(1usize..500);
            let mut c = CoreModel::new(CoreModelConfig::default());
            let mut last_retire = 0;
            let mut last_now = 0;
            for _ in 0..len {
                let (f, m) = (ifetch(&mut rng), mem_op(&mut rng));
                let r = c.step(f, m);
                assert!(r >= last_retire, "case {case}: retire went backwards");
                assert!(c.now() >= last_now, "case {case}: now went backwards");
                last_retire = r;
                last_now = c.now();
            }
        }
    }

    /// IPC is bounded by the fetch width for any stream.
    #[test]
    fn ipc_bounded_by_width() {
        for case in 0..48u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0DE_1000 + case);
            let len = rng.gen_range(50usize..500);
            let mut c = CoreModel::new(CoreModelConfig::default());
            for _ in 0..len {
                let (f, m) = (ifetch(&mut rng), mem_op(&mut rng));
                c.step(f, m);
            }
            assert!(c.ipc() <= c.config().width as f64 + 1e-9, "case {case}");
            assert!(c.retired() > 0, "case {case}");
        }
    }

    /// Inserting extra memory loads can only slow a stream down.
    #[test]
    fn extra_misses_never_speed_up() {
        for case in 0..48u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0DE_2000 + case);
            let n = rng.gen_range(50usize..300);
            let every = rng.gen_range(2usize..20);
            let mut fast = CoreModel::new(CoreModelConfig::default());
            let mut slow = CoreModel::new(CoreModelConfig::default());
            for i in 0..n {
                fast.step(None, None);
                let m = if i % every == 0 {
                    Some((AccessKind::Load, DataSource::Memory))
                } else {
                    None
                };
                slow.step(None, m);
            }
            assert!(
                slow.cycles() >= fast.cycles(),
                "case {case}: n={n} every={every}"
            );
        }
    }
}
