//! A small fully-associative victim cache.
//!
//! §VI compares ECI/QBS against "an inclusive LLC backed by a 32-entry
//! victim cache" (the Fletcher et al. approach): lines evicted from the LLC
//! park here with their directory bits, inclusion back-invalidation is
//! deferred until a line falls out of the victim cache, and an LLC miss that
//! hits the victim cache is rescued back into the LLC.

use crate::line::CoreBitmap;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::LineAddr;

/// One parked line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimEntry {
    /// The parked line.
    pub addr: LineAddr,
    /// Whether it is dirty.
    pub dirty: bool,
    /// Directory bits it carried when evicted from the LLC.
    pub cores: CoreBitmap,
}

/// Fully-associative LRU victim cache.
#[derive(Debug, Clone)]
pub struct VictimCache {
    entries: Vec<(VictimEntry, u64)>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    lookups: u64,
}

impl VictimCache {
    /// Creates an empty victim cache holding up to `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim cache capacity must be at least 1");
        VictimCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the victim cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Inserts a line evicted from the LLC. If the victim cache is full its
    /// LRU entry is displaced and returned — the caller must then perform
    /// the deferred inclusion back-invalidation for that entry.
    pub fn insert(&mut self, entry: VictimEntry) -> Option<VictimEntry> {
        debug_assert!(
            !self.entries.iter().any(|(e, _)| e.addr == entry.addr),
            "line already parked in victim cache"
        );
        self.stamp += 1;
        let displaced = if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("full victim cache has entries");
            Some(self.entries.swap_remove(lru).0)
        } else {
            None
        };
        self.entries.push((entry, self.stamp));
        displaced
    }

    /// Removes and returns `line` if parked here (an LLC miss rescuing the
    /// line back). Counts as a lookup.
    pub fn take(&mut self, line: LineAddr) -> Option<VictimEntry> {
        self.lookups += 1;
        let pos = self.entries.iter().position(|(e, _)| e.addr == line)?;
        self.hits += 1;
        Some(self.entries.swap_remove(pos).0)
    }

    /// Whether `line` is parked here, without removing it.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|(e, _)| e.addr == line)
    }

    /// Marks a parked line dirty (a core wrote back while the line was
    /// parked with deferred back-invalidation). Returns `true` if the line
    /// was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.entries.iter_mut().find(|(e, _)| e.addr == line) {
            Some((e, _)) => {
                e.dirty = true;
                true
            }
            None => false,
        }
    }
}

impl Snapshot for VictimCache {
    // `swap_remove` makes entry order part of the state (it decides future
    // swap positions), so entries travel in Vec order with their stamps.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.entries.len() as u64);
        for (e, stamp) in &self.entries {
            w.write_u64(e.addr.raw());
            w.write_bool(e.dirty);
            w.write_u64(e.cores.to_raw());
            w.write_u64(*stamp);
        }
        w.write_u64(self.stamp);
        w.write_u64(self.hits);
        w.write_u64(self.lookups);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let n = r.read_usize()?;
        if n > self.capacity {
            return Err(SnapshotError::Mismatch(format!(
                "victim cache: snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            let entry = VictimEntry {
                addr: LineAddr::new(r.read_u64()?),
                dirty: r.read_bool()?,
                cores: CoreBitmap::from_raw(r.read_u64()?),
            };
            let stamp = r.read_u64()?;
            self.entries.push((entry, stamp));
        }
        self.stamp = r.read_u64()?;
        self.hits = r.read_u64()?;
        self.lookups = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> VictimEntry {
        VictimEntry {
            addr: LineAddr::new(n),
            dirty: n % 2 == 1,
            cores: CoreBitmap::EMPTY,
        }
    }

    #[test]
    fn insert_then_take() {
        let mut vc = VictimCache::new(4);
        assert!(vc.insert(entry(1)).is_none());
        assert_eq!(vc.len(), 1);
        let got = vc.take(LineAddr::new(1)).unwrap();
        assert_eq!(got.addr, LineAddr::new(1));
        assert!(got.dirty);
        assert!(vc.is_empty());
        assert_eq!(vc.hits(), 1);
        assert_eq!(vc.lookups(), 1);
    }

    #[test]
    fn take_missing_counts_lookup() {
        let mut vc = VictimCache::new(2);
        assert!(vc.take(LineAddr::new(9)).is_none());
        assert_eq!(vc.lookups(), 1);
        assert_eq!(vc.hits(), 0);
    }

    #[test]
    fn overflows_displace_lru() {
        let mut vc = VictimCache::new(2);
        vc.insert(entry(1));
        vc.insert(entry(2));
        let displaced = vc.insert(entry(3)).unwrap();
        assert_eq!(displaced.addr, LineAddr::new(1));
        assert!(vc.probe(LineAddr::new(2)));
        assert!(vc.probe(LineAddr::new(3)));
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn take_refreshes_nothing_but_removal_order_respected() {
        let mut vc = VictimCache::new(2);
        vc.insert(entry(1));
        vc.insert(entry(2));
        // Rescue 1; inserting 3 then 4 should displace 2 first.
        vc.take(LineAddr::new(1));
        vc.insert(entry(3));
        let displaced = vc.insert(entry(4)).unwrap();
        assert_eq!(displaced.addr, LineAddr::new(2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = VictimCache::new(0);
    }
}

#[cfg(test)]
mod dirty_tests {
    use super::*;

    #[test]
    fn mark_dirty_on_parked_line() {
        let mut vc = VictimCache::new(2);
        vc.insert(VictimEntry {
            addr: LineAddr::new(4),
            dirty: false,
            cores: CoreBitmap::EMPTY,
        });
        assert!(vc.mark_dirty(LineAddr::new(4)));
        assert!(!vc.mark_dirty(LineAddr::new(5)));
        let e = vc.take(LineAddr::new(4)).unwrap();
        assert!(e.dirty, "dirty writeback must stick to the parked line");
    }
}
