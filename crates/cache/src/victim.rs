//! A small fully-associative victim cache.
//!
//! §VI compares ECI/QBS against "an inclusive LLC backed by a 32-entry
//! victim cache" (the Fletcher et al. approach): lines evicted from the LLC
//! park here with their directory bits, inclusion back-invalidation is
//! deferred until a line falls out of the victim cache, and an LLC miss that
//! hits the victim cache is rescued back into the LLC.
//!
//! Entries are stored struct-of-arrays so the fully-associative address scan
//! runs over a dense `LineAddr` slice through [`probe::find_index`] — the
//! same SIMD-or-scalar kernel the set-associative caches use. At the
//! paper's 32 entries the scan is cheap either way; the >64-entry sweeps in
//! EXPERIMENTS.md are where the kernel pays.

use crate::line::CoreBitmap;
use crate::probe;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::LineAddr;

/// One parked line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimEntry {
    /// The parked line.
    pub addr: LineAddr,
    /// Whether it is dirty.
    pub dirty: bool,
    /// Directory bits it carried when evicted from the LLC.
    pub cores: CoreBitmap,
}

/// Fully-associative LRU victim cache.
///
/// Parallel arrays indexed by entry slot; `addrs` is the dense probe target,
/// the other arrays carry the per-entry payload. All four always have the
/// same length.
#[derive(Debug, Clone)]
pub struct VictimCache {
    addrs: Vec<LineAddr>,
    dirty: Vec<bool>,
    cores: Vec<CoreBitmap>,
    stamps: Vec<u64>,
    capacity: usize,
    stamp: u64,
    hits: u64,
    lookups: u64,
}

impl VictimCache {
    /// Creates an empty victim cache holding up to `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim cache capacity must be at least 1");
        VictimCache {
            addrs: Vec::with_capacity(capacity),
            dirty: Vec::with_capacity(capacity),
            cores: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in lines.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the victim cache is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    fn swap_remove(&mut self, i: usize) -> VictimEntry {
        let e = VictimEntry {
            addr: self.addrs.swap_remove(i),
            dirty: self.dirty.swap_remove(i),
            cores: self.cores.swap_remove(i),
        };
        self.stamps.swap_remove(i);
        e
    }

    /// Inserts a line evicted from the LLC. If the victim cache is full its
    /// LRU entry is displaced and returned — the caller must then perform
    /// the deferred inclusion back-invalidation for that entry.
    pub fn insert(&mut self, entry: VictimEntry) -> Option<VictimEntry> {
        debug_assert!(
            probe::find_index(&self.addrs, entry.addr).is_none(),
            "line already parked in victim cache"
        );
        self.stamp += 1;
        let displaced = if self.addrs.len() == self.capacity {
            // The stamps are unique, so the min-reduce kernel's
            // first-minimum pick is exactly the LRU entry.
            let lru = probe::min_index(&self.stamps).expect("full victim cache has entries");
            Some(self.swap_remove(lru))
        } else {
            None
        };
        self.addrs.push(entry.addr);
        self.dirty.push(entry.dirty);
        self.cores.push(entry.cores);
        self.stamps.push(self.stamp);
        displaced
    }

    /// Removes and returns `line` if parked here (an LLC miss rescuing the
    /// line back). Counts as a lookup.
    pub fn take(&mut self, line: LineAddr) -> Option<VictimEntry> {
        self.lookups += 1;
        let pos = probe::find_index(&self.addrs, line)?;
        self.hits += 1;
        Some(self.swap_remove(pos))
    }

    /// Whether `line` is parked here, without removing it.
    pub fn probe(&self, line: LineAddr) -> bool {
        probe::find_index(&self.addrs, line).is_some()
    }

    /// Marks a parked line dirty (a core wrote back while the line was
    /// parked with deferred back-invalidation). Returns `true` if the line
    /// was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match probe::find_index(&self.addrs, line) {
            Some(i) => {
                self.dirty[i] = true;
                true
            }
            None => false,
        }
    }
}

impl Snapshot for VictimCache {
    // `swap_remove` makes entry order part of the state (it decides future
    // swap positions), so entries travel in slot order with their stamps.
    // The interleaved per-entry layout predates the struct-of-arrays
    // storage and is kept so existing images stay byte-compatible.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.addrs.len() as u64);
        for i in 0..self.addrs.len() {
            w.write_u64(self.addrs[i].raw());
            w.write_bool(self.dirty[i]);
            w.write_u64(self.cores[i].to_raw());
            w.write_u64(self.stamps[i]);
        }
        w.write_u64(self.stamp);
        w.write_u64(self.hits);
        w.write_u64(self.lookups);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let n = r.read_usize()?;
        if n > self.capacity {
            return Err(SnapshotError::Mismatch(format!(
                "victim cache: snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        self.addrs.clear();
        self.dirty.clear();
        self.cores.clear();
        self.stamps.clear();
        for _ in 0..n {
            self.addrs.push(LineAddr::new(r.read_u64()?));
            self.dirty.push(r.read_bool()?);
            self.cores.push(CoreBitmap::from_raw(r.read_u64()?));
            self.stamps.push(r.read_u64()?);
        }
        self.stamp = r.read_u64()?;
        self.hits = r.read_u64()?;
        self.lookups = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> VictimEntry {
        VictimEntry {
            addr: LineAddr::new(n),
            dirty: n % 2 == 1,
            cores: CoreBitmap::EMPTY,
        }
    }

    #[test]
    fn insert_then_take() {
        let mut vc = VictimCache::new(4);
        assert!(vc.insert(entry(1)).is_none());
        assert_eq!(vc.len(), 1);
        let got = vc.take(LineAddr::new(1)).unwrap();
        assert_eq!(got.addr, LineAddr::new(1));
        assert!(got.dirty);
        assert!(vc.is_empty());
        assert_eq!(vc.hits(), 1);
        assert_eq!(vc.lookups(), 1);
    }

    #[test]
    fn take_missing_counts_lookup() {
        let mut vc = VictimCache::new(2);
        assert!(vc.take(LineAddr::new(9)).is_none());
        assert_eq!(vc.lookups(), 1);
        assert_eq!(vc.hits(), 0);
    }

    #[test]
    fn overflows_displace_lru() {
        let mut vc = VictimCache::new(2);
        vc.insert(entry(1));
        vc.insert(entry(2));
        let displaced = vc.insert(entry(3)).unwrap();
        assert_eq!(displaced.addr, LineAddr::new(1));
        assert!(vc.probe(LineAddr::new(2)));
        assert!(vc.probe(LineAddr::new(3)));
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn take_refreshes_nothing_but_removal_order_respected() {
        let mut vc = VictimCache::new(2);
        vc.insert(entry(1));
        vc.insert(entry(2));
        // Rescue 1; inserting 3 then 4 should displace 2 first.
        vc.take(LineAddr::new(1));
        vc.insert(entry(3));
        let displaced = vc.insert(entry(4)).unwrap();
        assert_eq!(displaced.addr, LineAddr::new(2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = VictimCache::new(0);
    }

    #[test]
    fn large_victim_cache_scans_correctly() {
        // 128 entries exercises the kernel's chunked scan well past one
        // 8-lane step (§VI high-associativity sweep geometry).
        let mut vc = VictimCache::new(128);
        for i in 0..128 {
            vc.insert(entry(i));
        }
        assert_eq!(vc.len(), 128);
        for i in [0u64, 7, 63, 64, 65, 127] {
            assert!(vc.probe(LineAddr::new(i)), "entry {i}");
        }
        assert!(!vc.probe(LineAddr::new(500)));
        // Full: next insert displaces the LRU entry (stamp 1 = line 0).
        let displaced = vc.insert(entry(200)).unwrap();
        assert_eq!(displaced.addr, LineAddr::new(0));
        let got = vc.take(LineAddr::new(127)).unwrap();
        assert_eq!(got.addr, LineAddr::new(127));
        assert!(got.dirty);
    }

    #[test]
    fn snapshot_roundtrip_preserves_slot_order() {
        let mut vc = VictimCache::new(8);
        for i in 0..8 {
            vc.insert(entry(i));
        }
        vc.take(LineAddr::new(3)); // swap_remove scrambles slot order
        vc.insert(entry(20));
        let mut w = SnapshotWriter::new();
        vc.write_state(&mut w);
        let bytes = w.finish();
        let mut fresh = VictimCache::new(8);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        fresh.read_state(&mut r).unwrap();
        assert_eq!(fresh.addrs, vc.addrs);
        assert_eq!(fresh.stamps, vc.stamps);
        let mut w2 = SnapshotWriter::new();
        fresh.write_state(&mut w2);
        assert_eq!(
            bytes,
            w2.finish(),
            "restored state reserializes identically"
        );
    }
}

#[cfg(test)]
mod dirty_tests {
    use super::*;

    #[test]
    fn mark_dirty_on_parked_line() {
        let mut vc = VictimCache::new(2);
        vc.insert(VictimEntry {
            addr: LineAddr::new(4),
            dirty: false,
            cores: CoreBitmap::EMPTY,
        });
        assert!(vc.mark_dirty(LineAddr::new(4)));
        assert!(!vc.mark_dirty(LineAddr::new(5)));
        let e = vc.take(LineAddr::new(4)).unwrap();
        assert!(e.dirty, "dirty writeback must stick to the parked line");
    }
}
