//! Explicit SIMD set-probe kernels and the multi-word way bitmap.
//!
//! Every simulated access funnels through a tag scan of one set's dense
//! address array. The scan used to be a scalar match-mask loop the compiler
//! *happened* to auto-vectorize; this module makes the vectorization a
//! guarantee: hand-written kernels compare tags against the needle and
//! return the hit-way mask, selected once per process by runtime feature
//! detection behind a [`ProbeKernel`] function-pointer table.
//!
//! * x86-64 with AVX2: [`probe_avx2`] compares 8 tags per step via
//!   `core::arch` intrinsics (`_mm256_cmpeq_epi64` over two 256-bit lanes).
//! * Everywhere else (and under `TLA_FORCE_SCALAR`): [`probe_portable`], a
//!   4-lane unrolled scalar kernel.
//!
//! Setting the `TLA_FORCE_SCALAR` environment variable (to anything but
//! `0` or the empty string) pins the portable kernel, which CI uses to
//! check both dispatch paths produce bit-identical simulations.
//!
//! The kernels return a [`WayMask`]: a `[u64; 4]` multi-word bitmap that
//! lifts the associativity ceiling from 64 to [`MAX_WAYS`] = 256 ways.
//! [`SetAssocCache`](crate::SetAssocCache) and
//! [`Replacer`](crate::Replacer) store and exchange per-set state as
//! `WayMask`es; the fully-associative [`VictimCache`](crate::VictimCache)
//! reuses the kernels for its linear scans via [`find_index`].

use crate::config::MAX_WAYS;
use std::sync::OnceLock;
use tla_types::LineAddr;

/// Words in a [`WayMask`] (`MAX_WAYS / 64`).
pub const WAY_WORDS: usize = MAX_WAYS / 64;

/// A bitmap over the ways of one set: bit `w` of word `w / 64` describes
/// way `w`. Supports up to [`MAX_WAYS`] ways.
///
/// The single-`u64` per-set bitmaps this replaces capped associativity at
/// 64; `WayMask` keeps the packed-bitmap layout (presence scans walk set
/// bits, clearing a way is a bit-and) while widening it to four words.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct WayMask {
    words: [u64; WAY_WORDS],
}

impl WayMask {
    /// The empty mask.
    pub const EMPTY: WayMask = WayMask {
        words: [0; WAY_WORDS],
    };

    /// A mask with bits `0..ways` set.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if `ways` exceeds [`MAX_WAYS`]
    /// (silent truncation would make a too-wide config misbehave subtly).
    pub fn all(ways: usize) -> WayMask {
        assert!(
            ways <= MAX_WAYS,
            "WayMask::all({ways}): associativity exceeds the {MAX_WAYS}-way \
             limit of the multi-word set bitmaps"
        );
        let mut words = [0u64; WAY_WORDS];
        for (i, word) in words.iter_mut().enumerate() {
            let lo = i * 64;
            if ways >= lo + 64 {
                *word = u64::MAX;
            } else if ways > lo {
                *word = (1u64 << (ways - lo)) - 1;
            }
        }
        WayMask { words }
    }

    /// A mask with only bit `way` set.
    pub fn single(way: usize) -> WayMask {
        let mut m = WayMask::EMPTY;
        m.set(way);
        m
    }

    /// Sets bit `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way >= MAX_WAYS`.
    #[inline]
    pub fn set(&mut self, way: usize) {
        debug_assert!(
            way < MAX_WAYS,
            "way {way} out of range for the {MAX_WAYS}-way bitmap"
        );
        self.words[way >> 6] |= 1u64 << (way & 63);
    }

    /// Clears bit `way`.
    #[inline]
    pub fn clear(&mut self, way: usize) {
        self.words[way >> 6] &= !(1u64 << (way & 63));
    }

    /// Whether bit `way` is set.
    #[inline]
    pub fn contains(&self, way: usize) -> bool {
        self.words[way >> 6] & (1u64 << (way & 63)) != 0
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The lowest set bit, if any — the hardware's left-to-right scan.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Bitwise AND.
    #[inline]
    #[must_use]
    pub fn and(&self, other: &WayMask) -> WayMask {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words) {
            *a &= b;
        }
        WayMask { words }
    }

    /// Bitwise OR.
    #[inline]
    #[must_use]
    pub fn or(&self, other: &WayMask) -> WayMask {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words) {
            *a |= b;
        }
        WayMask { words }
    }

    /// `self & !other` — e.g. the invalid ways of a set as
    /// `WayMask::all(ways).and_not(valid)`.
    #[inline]
    #[must_use]
    pub fn and_not(&self, other: &WayMask) -> WayMask {
        let mut words = self.words;
        for (a, b) in words.iter_mut().zip(other.words) {
            *a &= !b;
        }
        WayMask { words }
    }

    /// Iterates the set bits in ascending way order.
    #[inline]
    pub fn iter(&self) -> WayIter {
        WayIter {
            words: self.words,
            word: 0,
        }
    }

    /// The raw words, lowest ways first (for checkpointing; callers decide
    /// how many words a given associativity needs).
    #[inline]
    pub fn words(&self) -> &[u64; WAY_WORDS] {
        &self.words
    }

    /// Mutable raw-word access (checkpoint decode).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64; WAY_WORDS] {
        &mut self.words
    }
}

impl std::fmt::Debug for WayMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WayMask({:#x},{:#x},{:#x},{:#x})",
            self.words[0], self.words[1], self.words[2], self.words[3]
        )
    }
}

/// Iterator over the set bits of a [`WayMask`] in ascending way order.
pub struct WayIter {
    words: [u64; WAY_WORDS],
    word: usize,
}

impl Iterator for WayIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word < WAY_WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] &= w - 1;
                return Some(self.word * 64 + bit);
            }
            self.word += 1;
        }
        None
    }
}

/// Signature of a probe kernel: compare every element of `addrs` (one set's
/// dense per-way address array, at most [`MAX_WAYS`] long) against `needle`
/// and return the match mask. Invalid slots may hold stale addresses — the
/// caller ANDs the result with the set's valid mask.
pub type ProbeFn = fn(addrs: &[LineAddr], needle: LineAddr) -> WayMask;

/// A named probe kernel, selected once per process by [`probe_kernel`].
pub struct ProbeKernel {
    /// Kernel name for reports (`"avx2"` / `"scalar4"`).
    pub name: &'static str,
    /// The kernel function.
    pub func: ProbeFn,
}

impl std::fmt::Debug for ProbeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeKernel")
            .field("name", &self.name)
            .finish()
    }
}

/// Naive reference kernel: the obvious one-way-at-a-time loop. Only used by
/// the differential tests as ground truth.
pub fn probe_naive(addrs: &[LineAddr], needle: LineAddr) -> WayMask {
    debug_assert!(addrs.len() <= MAX_WAYS);
    let mut m = WayMask::EMPTY;
    for (w, &a) in addrs.iter().enumerate() {
        if a == needle {
            m.set(w);
        }
    }
    m
}

/// Arrays at least this long take the 8-lane portable tier; shorter ones
/// keep the 4-lane loop, whose lighter prologue wins at common (≤ 16-way)
/// associativities.
const PORTABLE_WIDE_THRESHOLD: usize = 64;

/// The width tier [`probe_portable`] picks for an array of `len` tags:
/// `"lanes4"` below [`PORTABLE_WIDE_THRESHOLD`], `"lanes8"` at or above
/// it. Exposed so the differential tests can assert the tier actually
/// exercised at each associativity.
pub fn portable_tier(len: usize) -> &'static str {
    if len >= PORTABLE_WIDE_THRESHOLD {
        "lanes8"
    } else {
        "lanes4"
    }
}

/// Portable kernel (reported as `scalar4`): a branchless match-mask loop,
/// width-tiered by array length. The default off x86-64 and under
/// `TLA_FORCE_SCALAR`.
///
/// Short arrays use a 4-lane unroll; arrays of [`PORTABLE_WIDE_THRESHOLD`]
/// tags or more use an 8-lane unroll whole-word accumulator, which closes
/// the gap to the naive loop at 128/256 ways (the 4-lane loop's
/// per-chunk word-indexed read-modify-write stalled there). Both tiers
/// never straddle a mask word inside a chunk (64 is a multiple of 4 and
/// of 8), so each chunk's bits land in a single word.
pub fn probe_portable(addrs: &[LineAddr], needle: LineAddr) -> WayMask {
    debug_assert!(addrs.len() <= MAX_WAYS);
    if addrs.len() >= PORTABLE_WIDE_THRESHOLD {
        return probe_portable_wide(addrs, needle);
    }
    let mut m = WayMask::EMPTY;
    let n = addrs.len();
    let mut i = 0;
    while i + 4 <= n {
        let b0 = (addrs[i] == needle) as u64;
        let b1 = (addrs[i + 1] == needle) as u64;
        let b2 = (addrs[i + 2] == needle) as u64;
        let b3 = (addrs[i + 3] == needle) as u64;
        let bits = b0 | (b1 << 1) | (b2 << 2) | (b3 << 3);
        m.words[i >> 6] |= bits << (i & 63);
        i += 4;
    }
    while i < n {
        m.words[i >> 6] |= ((addrs[i] == needle) as u64) << (i & 63);
        i += 1;
    }
    m
}

/// Wide tier of the portable kernel: 8 lanes per step, accumulating each
/// mask word in a register across its eight chunks and storing it once.
fn probe_portable_wide(addrs: &[LineAddr], needle: LineAddr) -> WayMask {
    debug_assert!(addrs.len() <= MAX_WAYS);
    let mut m = WayMask::EMPTY;
    let n = addrs.len();
    let mut i = 0;
    let mut word = 0u64;
    while i + 8 <= n {
        let b0 = (addrs[i] == needle) as u64;
        let b1 = (addrs[i + 1] == needle) as u64;
        let b2 = (addrs[i + 2] == needle) as u64;
        let b3 = (addrs[i + 3] == needle) as u64;
        let b4 = (addrs[i + 4] == needle) as u64;
        let b5 = (addrs[i + 5] == needle) as u64;
        let b6 = (addrs[i + 6] == needle) as u64;
        let b7 = (addrs[i + 7] == needle) as u64;
        let bits =
            b0 | (b1 << 1) | (b2 << 2) | (b3 << 3) | (b4 << 4) | (b5 << 5) | (b6 << 6) | (b7 << 7);
        word |= bits << (i & 63);
        i += 8;
        if i & 63 == 0 {
            m.words[(i - 1) >> 6] = word;
            word = 0;
        }
    }
    while i < n {
        word |= ((addrs[i] == needle) as u64) << (i & 63);
        i += 1;
        if i & 63 == 0 {
            m.words[(i - 1) >> 6] = word;
            word = 0;
        }
    }
    if i & 63 != 0 {
        m.words[i >> 6] = word;
    }
    m
}

/// AVX2 kernel: 8 tags per step via two 256-bit compares.
///
/// Safe wrapper — [`probe_kernel`] only selects it after
/// `is_x86_feature_detected!("avx2")` succeeded, so the `target_feature`
/// inner function is always called on capable hardware.
#[cfg(target_arch = "x86_64")]
pub fn probe_avx2(addrs: &[LineAddr], needle: LineAddr) -> WayMask {
    // SAFETY: only reachable when AVX2 was detected at dispatch time (or
    // explicitly, from tests that performed the same detection).
    unsafe { probe_avx2_impl(addrs, needle) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn probe_avx2_impl(addrs: &[LineAddr], needle: LineAddr) -> WayMask {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::{
        __m256i, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_set1_epi64x,
    };
    debug_assert!(addrs.len() <= MAX_WAYS);
    let mut m = WayMask::EMPTY;
    let n = addrs.len();
    let needle_v = _mm256_set1_epi64x(needle.raw() as i64);
    // `LineAddr` is repr(transparent) over u64, so the dense address slice
    // loads directly as packed 64-bit lanes.
    let base = addrs.as_ptr().cast::<u64>();
    let mut i = 0;
    // 8 tags per step: two unaligned 256-bit loads, compare, and pack the
    // two 4-bit movemasks into one byte. 64 is a multiple of 8, so a step's
    // bits always land in a single mask word.
    while i + 8 <= n {
        let lo = _mm256_loadu_si256(base.add(i).cast::<__m256i>());
        let hi = _mm256_loadu_si256(base.add(i + 4).cast::<__m256i>());
        let eq_lo = _mm256_cmpeq_epi64(lo, needle_v);
        let eq_hi = _mm256_cmpeq_epi64(hi, needle_v);
        // Each 64-bit lane of the compare result is all-ones or all-zeros;
        // movemask_pd extracts one bit per lane.
        let bits_lo = _mm256_movemask_pd(_mm256_castsi256_pd(eq_lo)) as u64;
        let bits_hi = _mm256_movemask_pd(_mm256_castsi256_pd(eq_hi)) as u64;
        let bits = bits_lo | (bits_hi << 4);
        m.words[i >> 6] |= bits << (i & 63);
        i += 8;
    }
    while i < n {
        m.words[i >> 6] |= ((addrs[i] == needle) as u64) << (i & 63);
        i += 1;
    }
    m
}

static SCALAR_KERNEL: ProbeKernel = ProbeKernel {
    name: "scalar4",
    func: probe_portable,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: ProbeKernel = ProbeKernel {
    name: "avx2",
    func: probe_avx2,
};

static SELECTED: OnceLock<&'static ProbeKernel> = OnceLock::new();

/// Whether `TLA_FORCE_SCALAR` requests the portable kernel.
fn force_scalar() -> bool {
    match std::env::var("TLA_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The probe kernel for this process, selected once on first use:
/// `TLA_FORCE_SCALAR` pins the portable kernel; otherwise x86-64 with AVX2
/// gets the 8-wide intrinsics kernel and everything else the portable one.
pub fn probe_kernel() -> &'static ProbeKernel {
    SELECTED.get_or_init(|| {
        if force_scalar() {
            return &SCALAR_KERNEL;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return &AVX2_KERNEL;
        }
        &SCALAR_KERNEL
    })
}

/// Name of the selected kernel (for run/bench reports).
pub fn kernel_name() -> &'static str {
    probe_kernel().name
}

/// One dense-set probe through the dispatched kernel: the first way of
/// `addrs` (one set's per-way tag array, at most [`MAX_WAYS`] long) that
/// equals `needle` *and* is marked in `valid`. Invalid slots may hold
/// stale tags — the valid mask screens them out, exactly as the simulated
/// caches do. This is the batch entry point the set-sharded replays feed:
/// one call per queued reference, tags resident across the whole run.
pub fn probe_first(addrs: &[LineAddr], needle: LineAddr, valid: &WayMask) -> Option<usize> {
    debug_assert!(addrs.len() <= MAX_WAYS);
    (probe_kernel().func)(addrs, needle).and(valid).first()
}

/// Position of the first element of `addrs` equal to `needle`, scanning with
/// the selected kernel in [`MAX_WAYS`]-wide chunks. The fully-associative
/// victim cache's linear scans use this; `addrs` may be any length.
pub fn find_index(addrs: &[LineAddr], needle: LineAddr) -> Option<usize> {
    let kernel = probe_kernel().func;
    for (chunk_idx, chunk) in addrs.chunks(MAX_WAYS).enumerate() {
        if let Some(w) = kernel(chunk, needle).first() {
            return Some(chunk_idx * MAX_WAYS + w);
        }
    }
    None
}

/// Signature of a min-reduce kernel: position of the smallest element of
/// `vals` (the first one on ties), or `None` when the slice is empty.
pub type MinIndexFn = fn(vals: &[u64]) -> Option<usize>;

/// Naive reference min-reduce: the obvious `min_by_key` scan. Ground truth
/// for the differential tests.
pub fn min_index_naive(vals: &[u64]) -> Option<usize> {
    vals.iter()
        .enumerate()
        .min_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
}

/// Portable min-reduce: 4 independent strided lanes, reduced at the end.
///
/// Each lane keeps its first minimum (strict `<`), and the final reduce
/// breaks value ties by the lower index, so the result is always the
/// *first* global minimum — the same element `min_by_key` picks.
pub fn min_index_portable(vals: &[u64]) -> Option<usize> {
    if vals.is_empty() {
        return None;
    }
    let n = vals.len();
    let mut lane_val = [u64::MAX; 4];
    let mut lane_idx = [0usize; 4];
    let mut i = 0;
    while i + 4 <= n {
        for j in 0..4 {
            if vals[i + j] < lane_val[j] {
                lane_val[j] = vals[i + j];
                lane_idx[j] = i + j;
            }
        }
        i += 4;
    }
    let mut best = u64::MAX;
    let mut best_i = 0usize;
    for j in 0..4 {
        if lane_val[j] < best || (lane_val[j] == best && lane_idx[j] < best_i) {
            best = lane_val[j];
            best_i = lane_idx[j];
        }
    }
    while i < n {
        if vals[i] < best {
            best = vals[i];
            best_i = i;
        }
        i += 1;
    }
    Some(best_i)
}

/// AVX2 min-reduce: 4 lanes per step via sign-biased signed compares
/// (AVX2 has no unsigned 64-bit compare; XOR-ing both operands with the
/// sign bit makes `_mm256_cmpgt_epi64` order unsigned values correctly).
///
/// Safe wrapper — dispatch only selects it after AVX2 detection.
#[cfg(target_arch = "x86_64")]
pub fn min_index_avx2(vals: &[u64]) -> Option<usize> {
    // SAFETY: only reachable when AVX2 was detected at dispatch time (or
    // explicitly, from tests that performed the same detection).
    unsafe { min_index_avx2_impl(vals) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_index_avx2_impl(vals: &[u64]) -> Option<usize> {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_blendv_epi8, _mm256_cmpgt_epi64, _mm256_loadu_si256,
        _mm256_set1_epi64x, _mm256_setr_epi64x, _mm256_storeu_si256, _mm256_xor_si256,
    };
    let n = vals.len();
    if n < 8 {
        return min_index_portable(vals);
    }
    let bias = _mm256_set1_epi64x(i64::MIN);
    let step = _mm256_set1_epi64x(4);
    // Lane j tracks the first minimum over the stride-4 column j, j+4, ...
    // (strict less-than keeps the earliest occurrence within a lane).
    let mut min_v = _mm256_xor_si256(_mm256_loadu_si256(vals.as_ptr().cast::<__m256i>()), bias);
    let mut min_i = _mm256_setr_epi64x(0, 1, 2, 3);
    let mut cur_i = _mm256_add_epi64(min_i, step);
    let mut i = 4;
    while i + 4 <= n {
        let v = _mm256_xor_si256(
            _mm256_loadu_si256(vals.as_ptr().add(i).cast::<__m256i>()),
            bias,
        );
        let lt = _mm256_cmpgt_epi64(min_v, v);
        min_v = _mm256_blendv_epi8(min_v, v, lt);
        min_i = _mm256_blendv_epi8(min_i, cur_i, lt);
        cur_i = _mm256_add_epi64(cur_i, step);
        i += 4;
    }
    let mut lane_val = [0u64; 4];
    let mut lane_idx = [0u64; 4];
    _mm256_storeu_si256(lane_val.as_mut_ptr().cast::<__m256i>(), min_v);
    _mm256_storeu_si256(lane_idx.as_mut_ptr().cast::<__m256i>(), min_i);
    let mut best = u64::MAX;
    let mut best_i = 0usize;
    for j in 0..4 {
        let v = lane_val[j] ^ (1u64 << 63);
        let idx = lane_idx[j] as usize;
        if v < best || (v == best && idx < best_i) {
            best = v;
            best_i = idx;
        }
    }
    // Tail elements sit past every vector-processed index, so on a value
    // tie the vector candidate (lower index) must win: strict less-than.
    while i < n {
        if vals[i] < best {
            best = vals[i];
            best_i = i;
        }
        i += 1;
    }
    Some(best_i)
}

static MIN_SELECTED: OnceLock<MinIndexFn> = OnceLock::new();

/// Position of the smallest element of `vals` (first on ties), computed
/// with the min-reduce kernel selected once per process under the same
/// rules as [`probe_kernel`] (`TLA_FORCE_SCALAR` pins the portable lanes).
/// The victim cache's LRU displacement scan uses this.
pub fn min_index(vals: &[u64]) -> Option<usize> {
    let f = MIN_SELECTED.get_or_init(|| {
        if force_scalar() {
            return min_index_portable as MinIndexFn;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return min_index_avx2 as MinIndexFn;
        }
        min_index_portable
    });
    f(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_rng::SmallRng;

    #[test]
    fn waymask_all_and_edges() {
        assert!(WayMask::all(0).is_empty());
        assert_eq!(WayMask::all(1).count(), 1);
        assert_eq!(WayMask::all(64).count(), 64);
        assert_eq!(WayMask::all(65).count(), 65);
        assert_eq!(WayMask::all(256).count(), 256);
        assert_eq!(WayMask::all(64).words()[0], u64::MAX);
        assert_eq!(WayMask::all(64).words()[1], 0);
        assert_eq!(WayMask::all(65).words()[1], 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the 256-way limit")]
    fn waymask_all_rejects_too_wide() {
        let _ = WayMask::all(257);
    }

    #[test]
    fn waymask_set_clear_contains_iter() {
        let mut m = WayMask::EMPTY;
        for w in [0, 63, 64, 127, 128, 255] {
            m.set(w);
        }
        assert_eq!(m.count(), 6);
        assert!(m.contains(64) && m.contains(255) && !m.contains(1));
        assert_eq!(m.first(), Some(0));
        let ways: Vec<usize> = m.iter().collect();
        assert_eq!(ways, vec![0, 63, 64, 127, 128, 255]);
        m.clear(0);
        assert_eq!(m.first(), Some(63));
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn waymask_bit_algebra() {
        let a = WayMask::all(100);
        let b = WayMask::all(70);
        assert_eq!(a.and(&b), b);
        assert_eq!(a.or(&b), a);
        let inv = a.and_not(&b);
        assert_eq!(inv.count(), 30);
        assert_eq!(inv.first(), Some(70));
        assert_eq!(WayMask::single(199).first(), Some(199));
    }

    /// The satellite differential sweep: for every edge associativity, on
    /// random address streams, the naive reference, the portable kernel
    /// (both width tiers), the AVX2 kernel (when the host supports it) and
    /// the dispatched kernel agree way-for-way on the full match mask —
    /// and the width tier the portable kernel picks at each associativity
    /// is the expected one.
    #[test]
    fn kernels_agree_on_random_streams() {
        let mut rng = SmallRng::seed_from_u64(0x5e7_980be);
        for &ways in &[1usize, 7, 8, 63, 64, 65, 128, 256] {
            // The tier choice is a pure function of the array length:
            // 4-lane below the 64-way threshold, 8-lane at or above it.
            let expect_tier = if ways >= 64 { "lanes8" } else { "lanes4" };
            assert_eq!(
                portable_tier(ways),
                expect_tier,
                "wrong portable width tier at ways={ways}"
            );
            for round in 0..200 {
                // A small address universe makes multi-way duplicate
                // matches common (stale-tag territory the valid mask
                // normally hides — the kernels must still report them all).
                let universe = 1 + (round % 8) as u64;
                let addrs: Vec<LineAddr> = (0..ways)
                    .map(|_| LineAddr::new(rng.gen_range(0..=universe)))
                    .collect();
                let needle = LineAddr::new(rng.gen_range(0..=universe));
                let expect = probe_naive(&addrs, needle);
                assert_eq!(
                    probe_portable(&addrs, needle),
                    expect,
                    "portable kernel diverges at ways={ways}"
                );
                // The wide tier must agree even below its dispatch
                // threshold (its tail loop handles any length).
                assert_eq!(
                    probe_portable_wide(&addrs, needle),
                    expect,
                    "wide portable tier diverges at ways={ways}"
                );
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    assert_eq!(
                        probe_avx2(&addrs, needle),
                        expect,
                        "avx2 kernel diverges at ways={ways}"
                    );
                }
                assert_eq!(
                    (probe_kernel().func)(&addrs, needle),
                    expect,
                    "dispatched kernel diverges at ways={ways}"
                );
            }
        }
    }

    #[test]
    fn kernels_handle_empty_and_no_match() {
        let empty: Vec<LineAddr> = Vec::new();
        assert!(probe_portable(&empty, LineAddr::new(1)).is_empty());
        let addrs: Vec<LineAddr> = (0..16).map(LineAddr::new).collect();
        assert!(probe_portable(&addrs, LineAddr::new(99)).is_empty());
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            assert!(probe_avx2(&empty, LineAddr::new(1)).is_empty());
            assert!(probe_avx2(&addrs, LineAddr::new(99)).is_empty());
        }
    }

    #[test]
    fn probe_first_screens_stale_tags_with_the_valid_mask() {
        // Way 1 holds a stale copy of the needle; only way 3 is a live hit.
        let addrs: Vec<LineAddr> = [9, 5, 2, 5].iter().map(|&a| LineAddr::new(a)).collect();
        let needle = LineAddr::new(5);
        let mut valid = WayMask::all(4);
        assert_eq!(probe_first(&addrs, needle, &valid), Some(1));
        valid.clear(1);
        assert_eq!(probe_first(&addrs, needle, &valid), Some(3));
        valid.clear(3);
        assert_eq!(probe_first(&addrs, needle, &valid), None);
        assert_eq!(probe_first(&[], needle, &WayMask::EMPTY), None);
    }

    #[test]
    fn find_index_scans_beyond_a_chunk() {
        // 600 entries spans three MAX_WAYS-wide kernel chunks.
        let addrs: Vec<LineAddr> = (0..600).map(|i| LineAddr::new(i + 1000)).collect();
        assert_eq!(find_index(&addrs, LineAddr::new(1000)), Some(0));
        assert_eq!(find_index(&addrs, LineAddr::new(1255)), Some(255));
        assert_eq!(find_index(&addrs, LineAddr::new(1256)), Some(256));
        assert_eq!(find_index(&addrs, LineAddr::new(1599)), Some(599));
        assert_eq!(find_index(&addrs, LineAddr::new(7)), None);
        assert_eq!(find_index(&[], LineAddr::new(7)), None);
    }

    /// Differential sweep for the min-reduce kernels: on random streams —
    /// including heavy-duplicate streams where the first-minimum tie-break
    /// is load-bearing — the portable lanes, the AVX2 kernel (when the
    /// host supports it) and the dispatched kernel all agree with the
    /// naive `min_by_key` reference, index for index.
    #[test]
    fn min_kernels_agree_on_random_streams() {
        let mut rng = SmallRng::seed_from_u64(0x31171dec);
        for &len in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 32, 100, 257] {
            for round in 0..200 {
                // Small value universes force duplicate minima.
                let universe = 1 + (round % 6) as u64;
                let vals: Vec<u64> = (0..len).map(|_| rng.gen_range(0..=universe)).collect();
                let expect = min_index_naive(&vals);
                assert_eq!(
                    min_index_portable(&vals),
                    expect,
                    "portable min-reduce diverges at len={len}: {vals:?}"
                );
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    assert_eq!(
                        min_index_avx2(&vals),
                        expect,
                        "avx2 min-reduce diverges at len={len}: {vals:?}"
                    );
                }
                assert_eq!(
                    min_index(&vals),
                    expect,
                    "dispatched min-reduce diverges at len={len}: {vals:?}"
                );
            }
        }
    }

    #[test]
    fn min_index_edge_cases() {
        assert_eq!(min_index(&[]), None);
        assert_eq!(min_index(&[7]), Some(0));
        assert_eq!(min_index(&[5, 5, 5, 5, 5, 5, 5, 5, 5]), Some(0));
        assert_eq!(min_index(&[u64::MAX; 12]), Some(0));
        let mut v = vec![u64::MAX; 33];
        v[32] = 0;
        assert_eq!(min_index(&v), Some(32));
        // First-minimum semantics across lane and tail boundaries.
        let mut v = vec![9u64; 21];
        v[6] = 2;
        v[13] = 2;
        v[20] = 2;
        assert_eq!(min_index(&v), Some(6));
        assert_eq!(min_index_portable(&v), Some(6));
        assert_eq!(min_index_naive(&v), Some(6));
    }

    #[test]
    fn kernel_is_selected_and_named() {
        let k = probe_kernel();
        assert!(k.name == "avx2" || k.name == "scalar4");
        assert_eq!(kernel_name(), k.name);
        // Selection is per-process sticky.
        assert!(std::ptr::eq(k, probe_kernel()));
    }
}
