//! Hardware stream prefetcher.
//!
//! §IV-A: "We model a stream prefetcher that trains on L2 cache misses and
//! prefetches lines into the L2 cache. The prefetcher has 16 stream
//! detectors." Detection is region-based: a detector watches one 4 KB
//! region, learns the miss direction, and once confirmed issues `degree`
//! prefetches ahead of the miss stream.

use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::LineAddr;

/// Lines per 4 KB detection region.
const REGION_LINES: u64 = 64;

/// Configuration for [`StreamPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPrefetcherConfig {
    /// Number of stream detectors (paper: 16).
    pub detectors: usize,
    /// Prefetches issued per confirmed training miss.
    pub degree: usize,
    /// How far ahead of the miss stream prefetches run (in lines).
    pub distance: u64,
}

impl Default for StreamPrefetcherConfig {
    fn default() -> Self {
        StreamPrefetcherConfig {
            detectors: 16,
            degree: 2,
            distance: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    region: u64,
    last_line: LineAddr,
    /// +1 ascending, -1 descending, 0 untrained.
    dir: i64,
    confirmed: bool,
    lru: u64,
}

/// A per-core stream prefetcher. Feed it the L2 demand-miss stream via
/// [`StreamPrefetcher::on_l2_miss`]; it returns the lines to prefetch into
/// the L2.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: StreamPrefetcherConfig,
    streams: Vec<Stream>,
    stamp: u64,
    issued: u64,
    trainings: u64,
    /// Scratch stamp buffer for the LRU displacement min-reduce; derived
    /// state, so it is not serialized.
    lru_scratch: Vec<u64>,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `detectors` or `degree` is zero.
    pub fn new(cfg: StreamPrefetcherConfig) -> Self {
        assert!(cfg.detectors > 0, "need at least one stream detector");
        assert!(cfg.degree > 0, "prefetch degree must be at least 1");
        StreamPrefetcher {
            cfg,
            streams: Vec::with_capacity(cfg.detectors),
            stamp: 0,
            issued: 0,
            trainings: 0,
            lru_scratch: Vec::with_capacity(cfg.detectors),
        }
    }

    /// The prefetcher's configuration.
    pub fn config(&self) -> &StreamPrefetcherConfig {
        &self.cfg
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trains on an L2 demand miss and appends the lines to prefetch to
    /// `out` (a reusable buffer: it is *not* cleared here).
    pub fn on_l2_miss(&mut self, line: LineAddr, out: &mut Vec<LineAddr>) {
        self.trainings += 1;
        self.stamp += 1;
        let region = line.raw() / REGION_LINES;
        if let Some(s) = self.streams.iter_mut().find(|s| {
            s.region == region || s.region == region.wrapping_sub(1) || s.region == region + 1
        }) {
            s.lru = self.stamp;
            let delta = line.raw() as i64 - s.last_line.raw() as i64;
            if delta != 0 {
                let dir = delta.signum();
                if s.dir == dir {
                    s.confirmed = true;
                } else if !s.confirmed {
                    s.dir = dir;
                }
                s.last_line = line;
                s.region = region;
                if s.confirmed && s.dir == dir {
                    for k in 0..self.cfg.degree as u64 {
                        let ahead = (self.cfg.distance + k) as i64 * s.dir;
                        out.push(line.step(ahead));
                        self.issued += 1;
                    }
                }
            }
        } else {
            // Allocate a new detector, displacing the LRU one.
            let s = Stream {
                region,
                last_line: line,
                dir: 0,
                confirmed: false,
                lru: self.stamp,
            };
            if self.streams.len() < self.cfg.detectors {
                self.streams.push(s);
            } else {
                // Min-reduce over the stamps with the probe kernel (the
                // victim cache's displacement scan was converted in an
                // earlier pass; this site kept a scalar `min_by_key`).
                // `min_index` keeps the first minimum, the same detector
                // `min_by_key` picked.
                self.lru_scratch.clear();
                self.lru_scratch.extend(self.streams.iter().map(|s| s.lru));
                let lru = crate::probe::min_index(&self.lru_scratch)
                    .expect("detector table is non-empty");
                self.streams[lru] = s;
            }
        }
    }
}

impl Snapshot for StreamPrefetcher {
    // The detector table is ordered state: allocation order decides which
    // detector matches first, so entries are serialized in Vec order.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.streams.len() as u64);
        for s in &self.streams {
            w.write_u64(s.region);
            w.write_u64(s.last_line.raw());
            w.write_i64(s.dir);
            w.write_bool(s.confirmed);
            w.write_u64(s.lru);
        }
        w.write_u64(self.stamp);
        w.write_u64(self.issued);
        w.write_u64(self.trainings);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let n = r.read_usize()?;
        if n > self.cfg.detectors {
            return Err(SnapshotError::Mismatch(format!(
                "stream prefetcher: snapshot has {n} detectors, this configuration has {}",
                self.cfg.detectors
            )));
        }
        self.streams.clear();
        for _ in 0..n {
            self.streams.push(Stream {
                region: r.read_u64()?,
                last_line: LineAddr::new(r.read_u64()?),
                dir: r.read_i64()?,
                confirmed: r.read_bool()?,
                lru: r.read_u64()?,
            });
        }
        self.stamp = r.read_u64()?;
        self.issued = r.read_u64()?;
        self.trainings = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(p: &mut StreamPrefetcher, line: u64) -> Vec<LineAddr> {
        let mut out = Vec::new();
        p.on_l2_miss(LineAddr::new(line), &mut out);
        out
    }

    #[test]
    fn ascending_stream_confirms_then_prefetches() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        assert!(miss(&mut p, 100).is_empty()); // allocate
        assert!(miss(&mut p, 101).is_empty()); // learn direction
        let out = miss(&mut p, 102); // confirmed
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], LineAddr::new(106)); // distance 4
        assert_eq!(out[1], LineAddr::new(107));
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn descending_stream_prefetches_backward() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        miss(&mut p, 200);
        miss(&mut p, 199);
        let out = miss(&mut p, 198);
        assert_eq!(out[0], LineAddr::new(194));
    }

    #[test]
    fn random_misses_do_not_confirm() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        miss(&mut p, 100);
        miss(&mut p, 110);
        miss(&mut p, 90);
        let out = miss(&mut p, 105);
        assert!(out.is_empty());
    }

    #[test]
    fn streams_cross_region_boundaries() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        // Walk up to and across a 64-line region boundary.
        for l in 60..=63 {
            miss(&mut p, l);
        }
        let out = miss(&mut p, 64);
        assert!(!out.is_empty(), "stream should survive region crossing");
    }

    #[test]
    fn detector_table_replaces_lru() {
        let cfg = StreamPrefetcherConfig {
            detectors: 2,
            ..Default::default()
        };
        let mut p = StreamPrefetcher::new(cfg);
        miss(&mut p, 0); // stream A (region 0)
        miss(&mut p, 1000); // stream B (region 15)
        miss(&mut p, 2000); // displaces A (LRU)
                            // Re-touching stream A's region allocates fresh (no training left).
        miss(&mut p, 1);
        let out = miss(&mut p, 2);
        assert!(out.is_empty(), "displaced stream must retrain from scratch");
    }

    #[test]
    fn duplicate_miss_is_ignored() {
        let mut p = StreamPrefetcher::new(StreamPrefetcherConfig::default());
        miss(&mut p, 100);
        let out = miss(&mut p, 100);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "detector")]
    fn zero_detectors_panics() {
        let _ = StreamPrefetcher::new(StreamPrefetcherConfig {
            detectors: 0,
            ..Default::default()
        });
    }
}
