//! Miss attribution: cold / capacity / inclusion-victim classification.
//!
//! The paper's central claim is that inclusion's cost is concentrated in
//! *inclusion victims* — lines the LLC forcibly removed from the core
//! caches that the core then missed on (§II). End-of-run victim counts
//! show how many lines were back-invalidated, but not how many of those
//! removals actually *cost a miss*. This module observes the cost at the
//! point it is paid: each core keeps a [`VictimTracker`] that remembers
//! which of its lines the LLC killed (and why), and every core-cache
//! demand miss is classified as
//!
//! * **cold** — the core never touched the line before;
//! * **capacity** — the line was touched before and aged out of the core
//!   caches on its own (capacity/conflict, a normal miss);
//! * **inclusion victim** — the line was last removed by the LLC
//!   (back-invalidate, ECI early invalidate, or a deferred victim-cache
//!   displacement), tagged with the [`VictimCause`] of that removal.
//!
//! The cause taxonomy distinguishes the LLC policy decision behind the
//! kill, so reports can show e.g. how many of QBS's residual victim
//! misses come from its query limit rather than from approved evictions.

use std::collections::{HashMap, HashSet};
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::LineAddr;

/// The LLC policy decision that removed a line from a core's caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimCause {
    /// An ordinary replacement decision back-invalidated the line
    /// (including a QBS-*approved* eviction and the baseline NRU/LRU
    /// victim picks).
    Replacement,
    /// QBS hit its query limit and evicted a line the core caches still
    /// held — the paper's residual-victim case (§V-C).
    QbsLimit,
    /// ECI invalidated the line early, ahead of its LLC eviction (§V-B).
    Eci,
    /// The line's deferred back-invalidate fired when it fell out of the
    /// victim cache while still core-resident (§VI).
    VictimCacheOverflow,
    /// A device (DDIO-style DMA) injection into the LLC evicted the line
    /// while the core caches still held it — app damage caused by I/O
    /// traffic, not by any core's demand stream.
    IoInjection,
}

impl VictimCause {
    /// Every cause, in declaration order (stable encode indices).
    pub const ALL: [VictimCause; 5] = [
        VictimCause::Replacement,
        VictimCause::QbsLimit,
        VictimCause::Eci,
        VictimCause::VictimCacheOverflow,
        VictimCause::IoInjection,
    ];

    /// Stable machine-readable name (used as a report column).
    pub const fn name(self) -> &'static str {
        match self {
            VictimCause::Replacement => "replacement",
            VictimCause::QbsLimit => "qbs_limit",
            VictimCause::Eci => "eci",
            VictimCause::VictimCacheOverflow => "victim_cache",
            VictimCause::IoInjection => "io_injection",
        }
    }

    /// Dense index into [`VictimCause::ALL`] (snapshot encoding).
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`VictimCause::index`].
    pub fn from_index(i: u8) -> Option<VictimCause> {
        VictimCause::ALL.get(i as usize).copied()
    }
}

/// Classification of one core-cache demand miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// First touch of the line by this core.
    Cold,
    /// The line aged out of the core caches on its own.
    Capacity,
    /// The LLC removed the line; the cause of that removal.
    InclusionVictim(VictimCause),
}

/// Per-core miss-attribution state.
///
/// `note_kill` records that the LLC removed a line from this core's
/// caches (only called when the removal actually took something out);
/// `classify` consumes that record at the next demand miss on the line.
/// A kill that is never re-missed costs nothing and is simply overwritten
/// or left behind — the tracker charges misses, not messages.
#[derive(Debug, Clone, Default)]
pub struct VictimTracker {
    /// Lines the LLC removed from this core, with the policy decision
    /// responsible. Consumed by the next miss on the line.
    killed: HashMap<u64, VictimCause>,
    /// Every line this core ever demand-missed on (first touch marker).
    seen: HashSet<u64>,
}

impl VictimTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the LLC removed `line` from this core's caches
    /// because of `cause`. A later kill of the same line overwrites the
    /// earlier cause (the most recent removal is the one the next miss
    /// pays for).
    pub fn note_kill(&mut self, line: LineAddr, cause: VictimCause) {
        self.killed.insert(line.raw(), cause);
    }

    /// Classifies a demand miss on `line`, updating the tracker: an
    /// outstanding kill makes it an inclusion-victim miss (consuming the
    /// kill), a previously-seen line is a capacity miss, a never-seen
    /// line is cold.
    pub fn classify(&mut self, line: LineAddr) -> MissClass {
        if let Some(cause) = self.killed.remove(&line.raw()) {
            self.seen.insert(line.raw());
            return MissClass::InclusionVictim(cause);
        }
        if self.seen.insert(line.raw()) {
            MissClass::Cold
        } else {
            MissClass::Capacity
        }
    }

    /// Outstanding (unconsumed) kills.
    pub fn pending_kills(&self) -> usize {
        self.killed.len()
    }

    /// Distinct lines this core has missed on.
    pub fn lines_seen(&self) -> usize {
        self.seen.len()
    }
}

impl Snapshot for VictimTracker {
    // Hash containers iterate in arbitrary order; entries are sorted so
    // the same logical state always serializes to the same bytes.
    fn write_state(&self, w: &mut SnapshotWriter) {
        let mut killed: Vec<(u64, u8)> = self
            .killed
            .iter()
            .map(|(&line, &cause)| (line, cause.index()))
            .collect();
        killed.sort_unstable();
        w.write_u64(killed.len() as u64);
        for (line, cause) in killed {
            w.write_u64(line);
            w.write_u64(cause as u64);
        }
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        w.write_u64(seen.len() as u64);
        for line in seen {
            w.write_u64(line);
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let n = r.read_usize()?;
        self.killed.clear();
        self.killed.reserve(n);
        for _ in 0..n {
            let line = r.read_u64()?;
            let raw = r.read_u64()?;
            let cause = u8::try_from(raw)
                .ok()
                .and_then(VictimCause::from_index)
                .ok_or_else(|| {
                    SnapshotError::Mismatch(format!("victim tracker: unknown cause index {raw}"))
                })?;
            self.killed.insert(line, cause);
        }
        let n = r.read_usize()?;
        self.seen.clear();
        self.seen.reserve(n);
        for _ in 0..n {
            self.seen.insert(r.read_u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_cold_then_capacity() {
        let mut t = VictimTracker::new();
        let line = LineAddr::new(7);
        assert_eq!(t.classify(line), MissClass::Cold);
        assert_eq!(t.classify(line), MissClass::Capacity);
        assert_eq!(t.lines_seen(), 1);
    }

    #[test]
    fn kill_turns_next_miss_into_inclusion_victim_once() {
        let mut t = VictimTracker::new();
        let line = LineAddr::new(9);
        assert_eq!(t.classify(line), MissClass::Cold);
        t.note_kill(line, VictimCause::Replacement);
        assert_eq!(t.pending_kills(), 1);
        assert_eq!(
            t.classify(line),
            MissClass::InclusionVictim(VictimCause::Replacement)
        );
        // The kill is consumed: the next miss is an ordinary capacity miss.
        assert_eq!(t.classify(line), MissClass::Capacity);
        assert_eq!(t.pending_kills(), 0);
    }

    #[test]
    fn later_kill_overwrites_cause() {
        let mut t = VictimTracker::new();
        let line = LineAddr::new(3);
        t.note_kill(line, VictimCause::Eci);
        t.note_kill(line, VictimCause::VictimCacheOverflow);
        assert_eq!(
            t.classify(line),
            MissClass::InclusionVictim(VictimCause::VictimCacheOverflow)
        );
    }

    #[test]
    fn kill_before_first_touch_still_counts_as_victim() {
        // A kill can only be noted for a line the core held, so by
        // construction the core has seen it — but the tracker itself does
        // not assume that ordering.
        let mut t = VictimTracker::new();
        let line = LineAddr::new(11);
        t.note_kill(line, VictimCause::QbsLimit);
        assert_eq!(
            t.classify(line),
            MissClass::InclusionVictim(VictimCause::QbsLimit)
        );
    }

    #[test]
    fn cause_indices_round_trip() {
        for cause in VictimCause::ALL {
            assert_eq!(VictimCause::from_index(cause.index()), Some(cause));
        }
        assert_eq!(VictimCause::from_index(5), None);
        let names: std::collections::HashSet<_> =
            VictimCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), VictimCause::ALL.len());
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let mut t = VictimTracker::new();
        for i in (0..50).rev() {
            t.classify(LineAddr::new(i * 3));
        }
        t.note_kill(LineAddr::new(9), VictimCause::Eci);
        t.note_kill(LineAddr::new(3), VictimCause::Replacement);
        t.note_kill(LineAddr::new(141), VictimCause::QbsLimit);

        let mut w = SnapshotWriter::new();
        t.write_state(&mut w);
        let bytes = w.finish();

        let mut fresh = VictimTracker::new();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        fresh.read_state(&mut r).unwrap();
        assert_eq!(fresh.pending_kills(), 3);
        assert_eq!(fresh.lines_seen(), 50);
        assert_eq!(
            fresh.classify(LineAddr::new(9)),
            MissClass::InclusionVictim(VictimCause::Eci)
        );

        // Same logical state, different insertion order → same bytes.
        let mut t2 = VictimTracker::new();
        for i in 0..50 {
            t2.classify(LineAddr::new(i * 3));
        }
        t2.note_kill(LineAddr::new(141), VictimCause::QbsLimit);
        t2.note_kill(LineAddr::new(3), VictimCause::Replacement);
        t2.note_kill(LineAddr::new(9), VictimCause::Eci);
        let mut w2 = SnapshotWriter::new();
        t2.write_state(&mut w2);
        assert_eq!(bytes, w2.finish());
    }
}
