//! Replacement policies.
//!
//! The paper's baseline uses LRU in the core caches and NRU in the LLC
//! (§IV-A). Footnote 4 notes the inclusion problem is independent of the LLC
//! replacement policy and was verified with LRU and RRIP as well — this
//! module provides all of those plus FIFO, Random and tree-PLRU so the
//! `ablation_replacement` bench can reproduce that claim.
//!
//! A [`Replacer`] owns any cross-set policy state (LRU stamps, the DRRIP
//! PSEL counter, the Random policy's RNG) and operates on one set's packed
//! state: a `valid` [`WayMask`] plus the slice of per-way `repl` words (the
//! struct-of-arrays layout [`SetAssocCache`](crate::SetAssocCache) keeps).
//! Beyond the usual hit/fill/victim operations it exposes
//! [`Replacer::order_into`], the full eviction-priority ordering of a set,
//! because the TLA policies need it: ECI picks "the *next* LRU line" and QBS
//! walks victim candidates until the cores approve one. Both
//! [`Replacer::victim`] and [`Replacer::order_into`] are allocation-free —
//! victim selection scans the set directly and ordering fills a
//! caller-provided buffer — because they sit on the LLC miss path.

use crate::probe::WayMask;
use std::fmt;
use tla_rng::SmallRng;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// Maximum re-reference prediction value for the 2-bit RRIP policies.
const RRPV_MAX: u64 = 3;
/// BRRIP inserts at "long" (RRPV_MAX-1) rather than "distant" (RRPV_MAX)
/// once every this many fills.
const BRRIP_LONG_INTERVAL: u64 = 32;
/// DRRIP set-dueling: one in `DUEL_MODULUS` sets leads for SRRIP, one for
/// BRRIP.
const DUEL_MODULUS: usize = 32;
/// Saturation bound for the DRRIP PSEL counter.
const PSEL_MAX: i32 = 1 << 9;

/// A cache replacement policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Policy {
    /// Least recently used. The paper's core-cache policy.
    Lru,
    /// Not recently used (single reference bit per line). The paper's
    /// baseline LLC policy.
    #[default]
    Nru,
    /// First-in first-out.
    Fifo,
    /// Uniform random victim.
    Random,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    Plru,
    /// Static RRIP with 2-bit re-reference prediction values.
    Srrip,
    /// Bimodal RRIP (thrash-resistant insertion).
    Brrip,
    /// Dynamic RRIP: set-dueling between SRRIP and BRRIP.
    Drrip,
    /// LRU-Insertion Policy: fills enter at the LRU position and are only
    /// promoted on a subsequent hit (thrash protection).
    Lip,
    /// Bimodal Insertion Policy: LIP, except a small fraction of fills
    /// enters at MRU.
    Bip,
    /// Dynamic Insertion Policy: set-dueling between plain LRU and BIP
    /// (Qureshi et al. / the adaptive-insertion work the paper compares
    /// against in SVI).
    Dip,
    /// Second-chance clock: one reference bit per way plus a per-set hand.
    /// Hits set the bit; the hand sweeps forward clearing bits and evicts
    /// the first way it finds unreferenced. Fills insert with the bit
    /// *clear*, so a line must be re-referenced before it earns a second
    /// chance — the scan-resistant service policy `tla-kv` uses (cachekit's
    /// catalog calls this CLOCK; it is also S3-FIFO's main-queue rule).
    Clock,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Policy::Lru => "LRU",
            Policy::Nru => "NRU",
            Policy::Fifo => "FIFO",
            Policy::Random => "Random",
            Policy::Plru => "PLRU",
            Policy::Srrip => "SRRIP",
            Policy::Brrip => "BRRIP",
            Policy::Drrip => "DRRIP",
            Policy::Lip => "LIP",
            Policy::Bip => "BIP",
            Policy::Dip => "DIP",
            Policy::Clock => "Clock",
        };
        f.write_str(s)
    }
}

/// Runtime state for a [`Policy`] over one cache.
///
/// All operations take one set's `valid` [`WayMask`] and its `repl` slice
/// (one policy word per way) plus the set's index; the caller owns that
/// storage in struct-of-arrays form.
#[derive(Debug, Clone)]
pub struct Replacer {
    policy: Policy,
    /// Monotonic stamp source for LRU/FIFO.
    stamp: u64,
    /// Fill counter driving BRRIP's bimodal insertion.
    fills: u64,
    /// DRRIP policy-selection counter; >= 0 favours SRRIP.
    psel: i32,
    /// PLRU tree bits, [`Replacer::tree_words`] words per set (internal
    /// nodes 1..ways fit in `ways` bits, so one word per 64 ways).
    trees: Vec<u64>,
    /// Words per set in `trees` (0 for every policy but PLRU).
    tree_words: usize,
    /// Reusable shuffle buffer for the Random policy's victim selection
    /// (keeps `victim` allocation-free while consuming the RNG stream
    /// exactly like a full set shuffle).
    scratch: Vec<usize>,
    /// Per-set clock hand (empty for every policy but Clock). Deliberately
    /// *not* snapshotted: like `scratch` it is transient sweep position, and
    /// the warm-start fan-out resumes one warm image under arbitrary other
    /// policies whose replacers keep no hands. A resumed Clock cache
    /// restarts every hand at way 0, which only perturbs the first sweep.
    hands: Vec<u32>,
    rng: SmallRng,
}

impl Replacer {
    /// Creates replacement state for a cache with `sets` sets of `ways`
    /// ways (`ways` sizes the per-set PLRU tree storage).
    ///
    /// `seed` feeds the Random policy (and BRRIP/DRRIP tie-breaking); runs
    /// with equal seeds are fully deterministic.
    pub fn new(policy: Policy, sets: usize, ways: usize, seed: u64) -> Self {
        let tree_words = if policy == Policy::Plru {
            ways.div_ceil(64)
        } else {
            0
        };
        let hand_sets = if policy == Policy::Clock { sets } else { 0 };
        Replacer {
            policy,
            stamp: 0,
            fills: 0,
            psel: 0,
            trees: vec![0; sets * tree_words],
            tree_words,
            scratch: Vec::new(),
            hands: vec![0; hand_sets],
            rng: SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_71A5_EED0),
        }
    }

    /// The policy this replacer implements.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The PLRU tree words of `set_idx` (empty for other policies).
    fn tree(&self, set_idx: usize) -> &[u64] {
        &self.trees[set_idx * self.tree_words..(set_idx + 1) * self.tree_words]
    }

    /// Records a demand hit on `way`.
    pub fn on_hit(&mut self, set_idx: usize, valid: WayMask, repl: &mut [u64], way: usize) {
        match self.policy {
            Policy::Lru => {
                self.stamp += 1;
                repl[way] = self.stamp;
            }
            Policy::Nru => self.nru_touch(valid, repl, way),
            Policy::Fifo | Policy::Random => {}
            Policy::Plru => self.plru_touch(set_idx, repl.len(), way),
            Policy::Srrip | Policy::Brrip | Policy::Drrip => repl[way] = 0,
            Policy::Lip | Policy::Bip | Policy::Dip => {
                self.stamp += 1;
                repl[way] = self.stamp;
            }
            Policy::Clock => repl[way] = 1,
        }
    }

    /// Promotes `way` to the most-protected position without it being a
    /// demand hit — the operation Temporal Locality Hints and QBS perform on
    /// the LLC ("update its replacement state [to MRU]", §III-A/C).
    ///
    /// For every policy here promotion coincides with the hit update.
    pub fn promote(&mut self, set_idx: usize, valid: WayMask, repl: &mut [u64], way: usize) {
        self.on_hit(set_idx, valid, repl, way);
    }

    /// Records a fill into `way` (whose `repl` word the caller has reset to
    /// zero and whose `valid` bit is already set in the bitmap).
    pub fn on_fill(&mut self, set_idx: usize, valid: WayMask, repl: &mut [u64], way: usize) {
        match self.policy {
            Policy::Lru | Policy::Fifo => {
                self.stamp += 1;
                repl[way] = self.stamp;
            }
            Policy::Nru => self.nru_touch(valid, repl, way),
            Policy::Random => {}
            Policy::Plru => self.plru_touch(set_idx, repl.len(), way),
            Policy::Srrip => repl[way] = RRPV_MAX - 1,
            Policy::Brrip => repl[way] = self.brrip_insert_rrpv(),
            Policy::Drrip => {
                let srrip_mode = match set_idx % DUEL_MODULUS {
                    0 => true,           // SRRIP leader set
                    1 => false,          // BRRIP leader set
                    _ => self.psel >= 0, // follower sets
                };
                repl[way] = if srrip_mode {
                    RRPV_MAX - 1
                } else {
                    self.brrip_insert_rrpv()
                };
            }
            Policy::Lip => self.lru_insert(valid, repl, way, false),
            Policy::Bip => {
                let mru = self.bip_fill_is_mru();
                self.lru_insert(valid, repl, way, mru);
            }
            Policy::Dip => {
                let lru_mode = match set_idx % DUEL_MODULUS {
                    0 => true,           // LRU leader set
                    1 => false,          // BIP leader set
                    _ => self.psel >= 0, // follower sets
                };
                let mru = lru_mode || self.bip_fill_is_mru();
                self.lru_insert(valid, repl, way, mru);
            }
            // Insert unreferenced: a brand-new line is the hand's next prey
            // unless it proves reuse first (scan resistance; classic CLOCK
            // page replacement inserts referenced, caches insert clear).
            Policy::Clock => repl[way] = 0,
        }
    }

    /// Records a demand miss in `set_idx` (used by DRRIP's set dueling; a
    /// miss in a leader set votes against that leader's policy).
    pub fn on_miss(&mut self, set_idx: usize) {
        if matches!(self.policy, Policy::Drrip | Policy::Dip) {
            match set_idx % DUEL_MODULUS {
                // A miss in a leader set votes against that leader's
                // policy (SRRIP/LRU lead even sets, BRRIP/BIP odd ones).
                0 => self.psel = (self.psel - 1).max(-PSEL_MAX),
                1 => self.psel = (self.psel + 1).min(PSEL_MAX),
                _ => {}
            }
        }
    }

    /// Notifies the policy that `way` is being evicted. RRIP ages the set so
    /// the victim's RRPV reaches the distant value, mirroring the hardware
    /// "increment all until a distant line exists" loop even when the TLA
    /// policy skipped over better candidates.
    pub fn on_evict(&mut self, set_idx: usize, valid: WayMask, repl: &mut [u64], way: usize) {
        if matches!(self.policy, Policy::Srrip | Policy::Brrip | Policy::Drrip) {
            let delta = RRPV_MAX.saturating_sub(repl[way]);
            if delta > 0 {
                for w in valid.iter() {
                    repl[w] = (repl[w] + delta).min(RRPV_MAX);
                }
            }
        }
        if self.policy == Policy::Clock {
            // Commit the sweep [`Replacer::victim`] simulated: clear the
            // reference bits the hand passed over on its way to `way`. A
            // victim whose bit is still set means the pure scan wrapped a
            // fully-referenced set — the hand swept everything once, so
            // every bit clears (second chance granted to all survivors).
            let ways = repl.len();
            if repl[way] != 0 {
                for w in valid.iter() {
                    repl[w] = 0;
                }
            } else {
                let mut w = self.hands[set_idx] as usize % ways;
                while w != way {
                    repl[w] = 0;
                    w = (w + 1) % ways;
                }
            }
            self.hands[set_idx] = ((way + 1) % ways) as u32;
        }
    }

    /// The way the policy would evict next, considering only valid ways.
    /// Allocation-free: a direct scan of the set (the Random policy runs
    /// its shuffle in a persistent internal buffer so the RNG stream is
    /// identical to a full [`Replacer::order_into`] call).
    ///
    /// Returns `None` if the set has no valid line.
    pub fn victim(&mut self, set_idx: usize, valid: WayMask, repl: &[u64]) -> Option<usize> {
        match self.policy {
            // Lowest stamp wins; ties (possible via LIP's saturating
            // LRU-end insertion) go to the lowest way, like the stable
            // sort in `order_into`.
            Policy::Lru | Policy::Fifo | Policy::Lip | Policy::Bip | Policy::Dip => {
                let mut best: Option<(u64, usize)> = None;
                for w in valid.iter() {
                    if best.is_none_or(|(k, _)| repl[w] < k) {
                        best = Some((repl[w], w));
                    }
                }
                best.map(|(_, w)| w)
            }
            // First candidate (bit set) in way order, else first valid way.
            Policy::Nru => {
                let mut first = None;
                for w in valid.iter() {
                    if repl[w] != 0 {
                        return Some(w);
                    }
                    if first.is_none() {
                        first = Some(w);
                    }
                }
                first
            }
            Policy::Random => {
                self.scratch.clear();
                self.scratch.extend(valid.iter());
                for i in (1..self.scratch.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    self.scratch.swap(i, j);
                }
                self.scratch.first().copied()
            }
            Policy::Plru => plru_first_valid(self.tree(set_idx), 1, repl.len(), valid),
            // First unreferenced valid way at/after the hand; a fully
            // referenced set wraps and the hand's own way loses (its bit —
            // and everyone else's — is cleared by `on_evict`). Pure: the
            // sweep's bit-clearing is deferred to `on_evict`.
            Policy::Clock => {
                let ways = repl.len();
                let hand = self.hands[set_idx] as usize % ways;
                let mut first_valid = None;
                for i in 0..ways {
                    let w = (hand + i) % ways;
                    if !valid.contains(w) {
                        continue;
                    }
                    if repl[w] == 0 {
                        return Some(w);
                    }
                    if first_valid.is_none() {
                        first_valid = Some(w);
                    }
                }
                first_valid
            }
            // Highest RRPV is evicted first; ties go to the lowest way
            // (the hardware's left-to-right scan).
            Policy::Srrip | Policy::Brrip | Policy::Drrip => {
                let mut best: Option<(u64, usize)> = None;
                for w in valid.iter() {
                    if best.is_none_or(|(k, _)| repl[w] > k) {
                        best = Some((repl[w], w));
                    }
                }
                best.map(|(_, w)| w)
            }
        }
    }

    /// Writes all valid ways of the set into `out` in eviction-priority
    /// order: element 0 is the victim, element 1 the "next LRU line" ECI
    /// would pick, and so on. `out` is cleared first; with a reused buffer
    /// the call performs no allocation in steady state.
    ///
    /// The ordering is a snapshot; it does not age or otherwise mutate
    /// per-way state (aging happens in [`Replacer::on_evict`]).
    pub fn order_into(
        &mut self,
        set_idx: usize,
        valid: WayMask,
        repl: &[u64],
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match self.policy {
            Policy::Lru | Policy::Fifo | Policy::Lip | Policy::Bip | Policy::Dip => {
                out.extend(valid.iter());
                // Way index in the key reproduces the stable scan order on
                // equal stamps.
                out.sort_unstable_by_key(|&w| (repl[w], w));
            }
            Policy::Nru => {
                // Candidates (bit == 1, stored as repl == 1) first, each
                // group in way order — the hardware scan order.
                out.extend(valid.iter());
                out.sort_unstable_by_key(|&w| (repl[w] == 0, w));
            }
            Policy::Random => {
                // Fisher-Yates over the valid ways.
                out.extend(valid.iter());
                for i in (1..out.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    out.swap(i, j);
                }
            }
            Policy::Plru => {
                // The tree walk emits leaves in eviction-rank order;
                // filtering to valid ways preserves it.
                plru_walk_into(self.tree(set_idx), 1, repl.len(), valid, out);
            }
            Policy::Srrip | Policy::Brrip | Policy::Drrip => {
                // Higher RRPV is evicted sooner; ties broken by way index
                // (the hardware's left-to-right scan).
                out.extend(valid.iter());
                out.sort_unstable_by_key(|&w| (std::cmp::Reverse(repl[w]), w));
            }
            Policy::Clock => {
                // Unreferenced ways in sweep order from the hand, then
                // referenced ways in sweep order (they survive one pass).
                let ways = repl.len();
                let hand = self.hands[set_idx] as usize % ways;
                out.extend(valid.iter());
                out.sort_unstable_by_key(|&w| (repl[w] != 0, (w + ways - hand) % ways));
            }
        }
    }

    // --- NRU ---------------------------------------------------------

    /// NRU reference-bit update: `repl == 1` means "not recently used"
    /// (eviction candidate); touching clears the bit, and when no candidate
    /// remains all *other* valid lines become candidates again.
    fn nru_touch(&mut self, valid: WayMask, repl: &mut [u64], way: usize) {
        repl[way] = 0;
        if valid.iter().all(|w| repl[w] == 0) {
            for w in valid.iter() {
                if w != way {
                    repl[w] = 1;
                }
            }
        }
    }

    // --- BRRIP -------------------------------------------------------

    fn brrip_insert_rrpv(&mut self) -> u64 {
        self.fills += 1;
        if self.fills.is_multiple_of(BRRIP_LONG_INTERVAL) {
            RRPV_MAX - 1
        } else {
            RRPV_MAX
        }
    }

    // --- LIP / BIP / DIP ----------------------------------------------

    /// Inserts `way` into the LRU stack: at MRU (fresh stamp) or at the
    /// LRU end (just below the current set minimum, so the line is the
    /// next victim unless it gets a hit first).
    fn lru_insert(&mut self, valid: WayMask, repl: &mut [u64], way: usize, mru: bool) {
        if mru {
            self.stamp += 1;
            repl[way] = self.stamp;
        } else {
            let min = valid
                .iter()
                .filter(|&w| w != way)
                .map(|w| repl[w])
                .min()
                .unwrap_or(1);
            repl[way] = min.saturating_sub(1);
        }
    }

    /// BIP inserts at MRU once every [`BRRIP_LONG_INTERVAL`] fills.
    fn bip_fill_is_mru(&mut self) -> bool {
        self.fills += 1;
        self.fills.is_multiple_of(BRRIP_LONG_INTERVAL)
    }

    // --- PLRU --------------------------------------------------------
    //
    // Classic binary-tree PLRU: node bits select the colder child
    // (0 = left, 1 = right). Nodes are stored heap-style in `tree_words`
    // words per set: node 1 is the root, node n has children 2n and 2n+1;
    // for `ways` leaves, nodes 1..ways are internal and leaf w corresponds
    // to heap position ways + w. Internal-node bits fit in `ways` bits, so
    // associativities past 64 simply span more words.

    fn plru_touch(&mut self, set_idx: usize, ways: usize, way: usize) {
        let base = set_idx * self.tree_words;
        let tree = &mut self.trees[base..base + self.tree_words];
        let mut node = ways + way;
        while node > 1 {
            let parent = node / 2;
            let came_from_right = node & 1 == 1;
            // Point the bit away from the touched leaf.
            if came_from_right {
                tree[parent >> 6] &= !(1u64 << (parent & 63));
            } else {
                tree[parent >> 6] |= 1u64 << (parent & 63);
            }
            node = parent;
        }
    }
}

impl Snapshot for Replacer {
    // The policy itself and the scratch buffer are configuration/transient
    // state: the receiver is constructed with its own policy (the warm-start
    // fan-out deliberately resumes one warm state under *different* LLC
    // policies), and scratch contents never outlive a call. `tree_words` is
    // geometry, rebuilt from the config; for up to 64 ways the tree stride
    // is one word per set, so pre-multi-word images decode unchanged.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.stamp);
        w.write_u64(self.fills);
        w.write_i64(i64::from(self.psel));
        w.write_u64_slice(&self.trees);
        self.rng.write_state(w);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.stamp = r.read_u64()?;
        self.fills = r.read_u64()?;
        let psel = r.read_i64()?;
        self.psel = i32::try_from(psel)
            .map_err(|_| SnapshotError::Corrupt(format!("PSEL value {psel} out of range")))?;
        let trees = r.read_u64_vec()?;
        // PLRU keeps tree words per set, every other policy keeps none.
        // A PLRU replacer can only resume a snapshot taken under PLRU with
        // the same geometry; non-PLRU replacers interchange freely.
        if trees.len() != self.trees.len() && !trees.is_empty() && !self.trees.is_empty() {
            return Err(SnapshotError::Mismatch(format!(
                "PLRU trees: snapshot has {} words, this cache has {}",
                trees.len(),
                self.trees.len()
            )));
        }
        if !self.trees.is_empty() {
            if trees.is_empty() {
                // Resuming a non-PLRU snapshot under PLRU: start from the
                // freshly constructed (all-zero) trees.
                self.trees.fill(0);
            } else {
                self.trees.copy_from_slice(&trees);
            }
        }
        self.rng.read_state(r)
    }
}

/// Reads bit `node` of a multi-word PLRU tree.
#[inline]
fn tree_bit(tree: &[u64], node: usize) -> usize {
    ((tree[node >> 6] >> (node & 63)) & 1) as usize
}

/// Walks the PLRU tree emitting *valid* leaves in eviction-rank order:
/// within a subtree, the pointed-to child's leaves all come before the
/// other child's leaves. Recursion depth is log2(ways) <= 8.
fn plru_walk_into(tree: &[u64], node: usize, ways: usize, valid: WayMask, out: &mut Vec<usize>) {
    if node >= ways {
        let w = node - ways;
        if valid.contains(w) {
            out.push(w);
        }
        return;
    }
    let bit = tree_bit(tree, node);
    plru_walk_into(tree, 2 * node + bit, ways, valid, out);
    plru_walk_into(tree, 2 * node + 1 - bit, ways, valid, out);
}

/// The first valid leaf the PLRU tree walk reaches — the victim — without
/// materializing the full order.
fn plru_first_valid(tree: &[u64], node: usize, ways: usize, valid: WayMask) -> Option<usize> {
    if node >= ways {
        let w = node - ways;
        return valid.contains(w).then_some(w);
    }
    let bit = tree_bit(tree, node);
    plru_first_valid(tree, 2 * node + bit, ways, valid)
        .or_else(|| plru_first_valid(tree, 2 * node + 1 - bit, ways, valid))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A full set of `n` ways with zeroed policy words.
    fn set_of(n: usize) -> (WayMask, Vec<u64>) {
        (WayMask::all(n), vec![0; n])
    }

    /// A way mask from a low-word bit pattern (test shorthand).
    fn mask(bits_pattern: u64) -> WayMask {
        let mut m = WayMask::EMPTY;
        let mut v = bits_pattern;
        while v != 0 {
            let w = v.trailing_zeros() as usize;
            v &= v - 1;
            m.set(w);
        }
        m
    }

    /// Convenience wrapper collecting `order_into` output.
    fn order(r: &mut Replacer, set_idx: usize, valid: WayMask, repl: &[u64]) -> Vec<usize> {
        let mut out = Vec::new();
        r.order_into(set_idx, valid, repl, &mut out);
        out
    }

    #[test]
    fn lru_orders_by_recency() {
        let mut r = Replacer::new(Policy::Lru, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        for w in 0..4 {
            r.on_fill(0, valid, &mut repl, w);
        }
        // Touch way 0 -> it becomes MRU, way 1 is now LRU.
        r.on_hit(0, valid, &mut repl, 0);
        assert_eq!(order(&mut r, 0, valid, &repl), vec![1, 2, 3, 0]);
        assert_eq!(r.victim(0, valid, &repl), Some(1));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut r = Replacer::new(Policy::Fifo, 1, 3, 0);
        let (valid, mut repl) = set_of(3);
        for w in 0..3 {
            r.on_fill(0, valid, &mut repl, w);
        }
        r.on_hit(0, valid, &mut repl, 0);
        assert_eq!(r.victim(0, valid, &repl), Some(0)); // still oldest fill
    }

    #[test]
    fn nru_scan_order_and_refresh() {
        let mut r = Replacer::new(Policy::Nru, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        repl.fill(1); // all candidates initially
        r.on_hit(0, valid, &mut repl, 2);
        // way 2 is protected; scan finds way 0 first.
        assert_eq!(r.victim(0, valid, &repl), Some(0));
        // Touch everything: last touch refreshes others back to candidates.
        for w in 0..4 {
            r.on_hit(0, valid, &mut repl, w);
        }
        // way 3 touched last, so ways 0..=2 are candidates again.
        assert_eq!(repl[3], 0);
        assert_eq!(r.victim(0, valid, &repl), Some(0));
    }

    #[test]
    fn nru_order_puts_candidates_first() {
        let mut r = Replacer::new(Policy::Nru, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        repl.fill(1);
        r.on_hit(0, valid, &mut repl, 0);
        r.on_hit(0, valid, &mut repl, 1);
        assert_eq!(order(&mut r, 0, valid, &repl), vec![2, 3, 0, 1]);
    }

    #[test]
    fn srrip_inserts_long_hits_reset() {
        let mut r = Replacer::new(Policy::Srrip, 1, 2, 0);
        let (valid, mut repl) = set_of(2);
        r.on_fill(0, valid, &mut repl, 0);
        assert_eq!(repl[0], RRPV_MAX - 1);
        r.on_hit(0, valid, &mut repl, 0);
        assert_eq!(repl[0], 0);
        r.on_fill(0, valid, &mut repl, 1);
        // way 1 (rrpv 2) evicts before way 0 (rrpv 0).
        assert_eq!(r.victim(0, valid, &repl), Some(1));
    }

    #[test]
    fn srrip_eviction_ages_set() {
        let mut r = Replacer::new(Policy::Srrip, 1, 2, 0);
        let (valid, mut repl) = set_of(2);
        r.on_fill(0, valid, &mut repl, 0);
        r.on_fill(0, valid, &mut repl, 1);
        r.on_hit(0, valid, &mut repl, 0); // rrpv 0
        r.on_evict(0, valid, &mut repl, 1); // rrpv 2 -> ages by 1
        assert_eq!(repl[0], 1);
        assert_eq!(repl[1], RRPV_MAX);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut r = Replacer::new(Policy::Brrip, 1, 1, 0);
        let (valid, mut repl) = set_of(1);
        let mut distant = 0;
        for _ in 0..BRRIP_LONG_INTERVAL {
            r.on_fill(0, valid, &mut repl, 0);
            if repl[0] == RRPV_MAX {
                distant += 1;
            }
        }
        assert_eq!(distant, BRRIP_LONG_INTERVAL - 1);
    }

    #[test]
    fn drrip_leader_sets_vote() {
        let mut r = Replacer::new(Policy::Drrip, DUEL_MODULUS * 2, 1, 0);
        // Misses in the SRRIP leader set push PSEL negative -> BRRIP wins.
        for _ in 0..10 {
            r.on_miss(0);
        }
        assert!(r.psel < 0);
        let (valid, mut repl) = set_of(1);
        // Follower set now inserts with BRRIP (distant most of the time).
        let mut saw_distant = false;
        for _ in 0..4 {
            r.on_fill(5, valid, &mut repl, 0);
            saw_distant |= repl[0] == RRPV_MAX;
        }
        assert!(saw_distant);
        // Misses in the BRRIP leader set push back toward SRRIP.
        for _ in 0..30 {
            r.on_miss(1);
        }
        assert!(r.psel > 0);
    }

    #[test]
    fn random_orders_every_valid_way_exactly_once() {
        let mut r = Replacer::new(Policy::Random, 1, 8, 42);
        let (valid, repl) = set_of(8);
        let mut o = order(&mut r, 0, valid, &repl);
        o.sort_unstable();
        assert_eq!(o, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (valid, repl) = set_of(8);
        let mut a = Replacer::new(Policy::Random, 1, 8, 7);
        let mut b = Replacer::new(Policy::Random, 1, 8, 7);
        assert_eq!(
            order(&mut a, 0, valid, &repl),
            order(&mut b, 0, valid, &repl)
        );
    }

    #[test]
    fn random_victim_consumes_rng_like_order() {
        // `victim` must draw from the RNG exactly as `order_into` does so
        // that mixing the two calls keeps runs deterministic.
        let (valid, repl) = set_of(8);
        let mut a = Replacer::new(Policy::Random, 1, 8, 9);
        let mut b = Replacer::new(Policy::Random, 1, 8, 9);
        let v = a.victim(0, valid, &repl);
        let o = order(&mut b, 0, valid, &repl);
        assert_eq!(v, o.first().copied());
        // Both replacers drew the same amount: their next picks agree too.
        assert_eq!(a.victim(0, valid, &repl), b.victim(0, valid, &repl));
    }

    #[test]
    fn plru_victim_avoids_recent_touch() {
        let mut r = Replacer::new(Policy::Plru, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        for w in 0..4 {
            r.on_fill(0, valid, &mut repl, w);
        }
        let v = r.victim(0, valid, &repl).unwrap();
        // The just-touched way 3 must not be the victim.
        assert_ne!(v, 3);
        // Touch the victim; the next victim differs.
        r.on_hit(0, valid, &mut repl, v);
        assert_ne!(r.victim(0, valid, &repl), Some(v));
    }

    #[test]
    fn plru_order_is_a_permutation() {
        let mut r = Replacer::new(Policy::Plru, 1, 8, 0);
        let (valid, mut repl) = set_of(8);
        for w in [0, 3, 5, 1, 7] {
            r.on_fill(0, valid, &mut repl, w);
        }
        let mut o = order(&mut r, 0, valid, &repl);
        o.sort_unstable();
        assert_eq!(o, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn plru_victim_matches_order_head_with_invalid_ways() {
        let mut r = Replacer::new(Policy::Plru, 1, 8, 0);
        let (_, mut repl) = set_of(8);
        let valid = mask(0b1011_0101); // holes in the leaf row
        for w in valid.iter() {
            r.on_fill(0, valid, &mut repl, w);
        }
        let o = order(&mut r, 0, valid, &repl);
        assert_eq!(o.len(), valid.count());
        assert_eq!(r.victim(0, valid, &repl), o.first().copied());
    }

    #[test]
    fn plru_works_past_64_ways() {
        // 128 leaves -> 128 internal-node bits spanning two tree words.
        let mut r = Replacer::new(Policy::Plru, 2, 128, 0);
        let (valid, mut repl) = set_of(128);
        for set in 0..2 {
            for w in 0..128 {
                r.on_fill(set, valid, &mut repl, w);
            }
            let mut o = order(&mut r, set, valid, &repl);
            assert_eq!(o.len(), 128);
            // The last touch (way 127) must be deepest in the order.
            assert_eq!(*o.last().unwrap(), 127);
            assert_eq!(r.victim(set, valid, &repl), o.first().copied());
            o.sort_unstable();
            assert_eq!(o, (0..128).collect::<Vec<_>>());
        }
        // Touching the victim moves it off the head.
        let v = r.victim(0, valid, &repl).unwrap();
        r.on_hit(0, valid, &mut repl, v);
        assert_ne!(r.victim(0, valid, &repl), Some(v));
    }

    #[test]
    fn order_skips_invalid_ways() {
        let mut r = Replacer::new(Policy::Lru, 1, 4, 0);
        let (_, mut repl) = set_of(4);
        let valid = mask(0b1011); // way 2 invalid
        for w in [0, 1, 3] {
            r.on_fill(0, valid, &mut repl, w);
        }
        let o = order(&mut r, 0, valid, &repl);
        assert_eq!(o.len(), 3);
        assert!(!o.contains(&2));
    }

    #[test]
    fn victim_none_when_all_invalid() {
        let mut r = Replacer::new(Policy::Nru, 1, 2, 0);
        let (_, repl) = set_of(2);
        assert_eq!(r.victim(0, WayMask::EMPTY, &repl), None);
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let mut r = Replacer::new(Policy::Clock, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        for w in 0..4 {
            r.on_fill(0, valid, &mut repl, w);
        }
        // Reference ways 0 and 1; the hand (at 0) must skip them.
        r.on_hit(0, valid, &mut repl, 0);
        r.on_hit(0, valid, &mut repl, 1);
        assert_eq!(r.victim(0, valid, &repl), Some(2));
        // Committing the eviction clears the skipped bits and advances the
        // hand past the victim.
        r.on_evict(0, valid, &mut repl, 2);
        assert_eq!((repl[0], repl[1]), (0, 0));
        assert_eq!(r.victim(0, valid, &repl), Some(3));
    }

    #[test]
    fn clock_full_sweep_clears_all_and_takes_hand() {
        let mut r = Replacer::new(Policy::Clock, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        for w in 0..4 {
            r.on_fill(0, valid, &mut repl, w);
            r.on_hit(0, valid, &mut repl, w); // everyone referenced
        }
        // Fully referenced set: the hand wraps and its own way loses.
        assert_eq!(r.victim(0, valid, &repl), Some(0));
        r.on_evict(0, valid, &mut repl, 0);
        // Second chance granted to all survivors.
        assert!(valid.iter().all(|w| repl[w] == 0));
        assert_eq!(r.victim(0, valid, &repl), Some(1));
    }

    #[test]
    fn clock_victim_matches_order_head() {
        let mut r = Replacer::new(Policy::Clock, 1, 8, 0);
        let (_, mut repl) = set_of(8);
        let valid = mask(0b1101_0111);
        for w in valid.iter() {
            r.on_fill(0, valid, &mut repl, w);
        }
        r.on_hit(0, valid, &mut repl, 0);
        r.on_hit(0, valid, &mut repl, 4);
        let o = order(&mut r, 0, valid, &repl);
        assert_eq!(o.len(), valid.count());
        assert_eq!(r.victim(0, valid, &repl), o.first().copied());
        // Referenced ways sort after every unreferenced way.
        let split = o.iter().position(|&w| repl[w] != 0).unwrap();
        assert!(o[split..].iter().all(|&w| repl[w] != 0));
    }

    #[test]
    fn clock_resists_scan_where_fifo_fails() {
        // A hot line re-referenced between one-shot scan fills survives
        // under Clock (its ref bit earns a second chance) but not FIFO.
        use tla_types::LineAddr;
        let run = |policy: Policy| {
            let cfg = crate::CacheConfig::with_sets("t", 1, 4, policy).unwrap();
            let mut cache = crate::SetAssocCache::new(cfg);
            let hot = LineAddr::new(0);
            cache.fill(hot, false);
            cache.touch(hot); // earn the reference bit
            let mut hot_survived = 0;
            for i in 0..64u64 {
                cache.fill(LineAddr::new(1000 + i), false); // one-shot scan
                if cache.touch(hot) {
                    hot_survived += 1;
                }
            }
            hot_survived
        };
        assert_eq!(run(Policy::Clock), 64, "Clock keeps the referenced line");
        assert!(run(Policy::Fifo) < 64, "FIFO streams the hot line out");
    }

    #[test]
    fn promote_equals_hit_for_lru() {
        let mut a = Replacer::new(Policy::Lru, 1, 4, 0);
        let mut b = Replacer::new(Policy::Lru, 1, 4, 0);
        let (valid, mut ra) = set_of(4);
        let (_, mut rb) = set_of(4);
        for w in 0..4 {
            a.on_fill(0, valid, &mut ra, w);
            b.on_fill(0, valid, &mut rb, w);
        }
        a.on_hit(0, valid, &mut ra, 1);
        b.promote(0, valid, &mut rb, 1);
        assert_eq!(order(&mut a, 0, valid, &ra), order(&mut b, 0, valid, &rb));
    }
}

#[cfg(test)]
mod lip_tests {
    use super::*;
    use tla_types::LineAddr;

    fn set_of(n: usize) -> (WayMask, Vec<u64>) {
        (WayMask::all(n), vec![0; n])
    }

    #[test]
    fn lip_inserts_at_lru_end() {
        let mut r = Replacer::new(Policy::Lip, 1, 4, 0);
        let (valid, mut repl) = set_of(4);
        for w in 0..3 {
            r.on_hit(0, valid, &mut repl, w); // establish an LRU stack 0 < 1 < 2
        }
        r.on_fill(0, valid, &mut repl, 3);
        // The fresh fill must be the first victim.
        assert_eq!(r.victim(0, valid, &repl), Some(3));
        // A hit promotes it to MRU.
        r.on_hit(0, valid, &mut repl, 3);
        assert_eq!(r.victim(0, valid, &repl), Some(0));
    }

    #[test]
    fn bip_occasionally_inserts_at_mru() {
        let mut r = Replacer::new(Policy::Bip, 1, 2, 0);
        let (valid, mut repl) = set_of(2);
        r.on_hit(0, valid, &mut repl, 0);
        let mut saw_mru = false;
        for _ in 0..64 {
            r.on_fill(0, valid, &mut repl, 1);
            if r.victim(0, valid, &repl) == Some(0) {
                saw_mru = true; // the fill landed above way 0
            }
        }
        assert!(saw_mru, "BIP must sometimes insert at MRU");
    }

    #[test]
    fn dip_follows_the_winning_leader() {
        let mut r = Replacer::new(Policy::Dip, DUEL_MODULUS * 2, 4, 0);
        // Misses in the LRU leader set push PSEL negative -> BIP mode.
        for _ in 0..20 {
            r.on_miss(0);
        }
        assert!(r.psel < 0);
        let (valid, mut repl) = set_of(4);
        for w in 0..3 {
            r.on_hit(5, valid, &mut repl, w);
        }
        r.on_fill(5, valid, &mut repl, 3); // follower set, BIP mode, non-MRU fill
        assert_eq!(r.victim(5, valid, &repl), Some(3));
        // Misses in the BIP leader set vote back toward LRU.
        for _ in 0..40 {
            r.on_miss(1);
        }
        assert!(r.psel > 0);
        r.on_fill(5, valid, &mut repl, 3);
        assert_eq!(r.victim(5, valid, &repl), Some(0), "LRU mode fills at MRU");
    }

    #[test]
    fn lip_resists_thrash_where_lru_fails() {
        // Cyclic access to 5 lines through a 4-way set: LRU misses every
        // time; LIP retains a stable subset and hits.
        let run = |policy: Policy| {
            let cfg = crate::CacheConfig::with_sets("t", 1, 4, policy).unwrap();
            let mut cache = crate::SetAssocCache::new(cfg);
            let mut hits = 0;
            for i in 0..400u64 {
                let line = LineAddr::new(i % 5);
                if cache.touch(line) {
                    hits += 1;
                } else {
                    cache.fill(line, false);
                }
            }
            hits
        };
        assert_eq!(run(Policy::Lru), 0, "LRU thrashes the cycle");
        assert!(run(Policy::Lip) > 200, "LIP must retain a working subset");
    }
}
