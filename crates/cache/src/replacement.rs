//! Replacement policies.
//!
//! The paper's baseline uses LRU in the core caches and NRU in the LLC
//! (§IV-A). Footnote 4 notes the inclusion problem is independent of the LLC
//! replacement policy and was verified with LRU and RRIP as well — this
//! module provides all of those plus FIFO, Random and tree-PLRU so the
//! `ablation_replacement` bench can reproduce that claim.
//!
//! A [`Replacer`] owns any cross-set policy state (LRU stamps, the DRRIP
//! PSEL counter, the Random policy's RNG) and operates on the per-line
//! `repl` words stored in [`LineState`]. Beyond the usual
//! hit/fill/victim operations it exposes [`Replacer::order`], the full
//! eviction-priority ordering of a set, because the TLA policies need it:
//! ECI picks "the *next* LRU line" and QBS walks victim candidates until the
//! cores approve one.

use crate::line::LineState;
use std::fmt;
use tla_rng::SmallRng;

/// Maximum re-reference prediction value for the 2-bit RRIP policies.
const RRPV_MAX: u64 = 3;
/// BRRIP inserts at "long" (RRPV_MAX-1) rather than "distant" (RRPV_MAX)
/// once every this many fills.
const BRRIP_LONG_INTERVAL: u64 = 32;
/// DRRIP set-dueling: one in `DUEL_MODULUS` sets leads for SRRIP, one for
/// BRRIP.
const DUEL_MODULUS: usize = 32;
/// Saturation bound for the DRRIP PSEL counter.
const PSEL_MAX: i32 = 1 << 9;

/// A cache replacement policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Policy {
    /// Least recently used. The paper's core-cache policy.
    Lru,
    /// Not recently used (single reference bit per line). The paper's
    /// baseline LLC policy.
    #[default]
    Nru,
    /// First-in first-out.
    Fifo,
    /// Uniform random victim.
    Random,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    Plru,
    /// Static RRIP with 2-bit re-reference prediction values.
    Srrip,
    /// Bimodal RRIP (thrash-resistant insertion).
    Brrip,
    /// Dynamic RRIP: set-dueling between SRRIP and BRRIP.
    Drrip,
    /// LRU-Insertion Policy: fills enter at the LRU position and are only
    /// promoted on a subsequent hit (thrash protection).
    Lip,
    /// Bimodal Insertion Policy: LIP, except a small fraction of fills
    /// enters at MRU.
    Bip,
    /// Dynamic Insertion Policy: set-dueling between plain LRU and BIP
    /// (Qureshi et al. / the adaptive-insertion work the paper compares
    /// against in SVI).
    Dip,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Policy::Lru => "LRU",
            Policy::Nru => "NRU",
            Policy::Fifo => "FIFO",
            Policy::Random => "Random",
            Policy::Plru => "PLRU",
            Policy::Srrip => "SRRIP",
            Policy::Brrip => "BRRIP",
            Policy::Drrip => "DRRIP",
            Policy::Lip => "LIP",
            Policy::Bip => "BIP",
            Policy::Dip => "DIP",
        };
        f.write_str(s)
    }
}

/// Runtime state for a [`Policy`] over one cache.
///
/// All operations take the slice of [`LineState`]s of a single set plus that
/// set's index; per-line policy state lives in `LineState::repl`.
#[derive(Debug, Clone)]
pub struct Replacer {
    policy: Policy,
    /// Monotonic stamp source for LRU/FIFO.
    stamp: u64,
    /// Fill counter driving BRRIP's bimodal insertion.
    fills: u64,
    /// DRRIP policy-selection counter; >= 0 favours SRRIP.
    psel: i32,
    /// PLRU tree bits, one word per set.
    trees: Vec<u64>,
    rng: SmallRng,
}

impl Replacer {
    /// Creates replacement state for a cache with `sets` sets.
    ///
    /// `seed` feeds the Random policy (and BRRIP/DRRIP tie-breaking); runs
    /// with equal seeds are fully deterministic.
    pub fn new(policy: Policy, sets: usize, seed: u64) -> Self {
        Replacer {
            policy,
            stamp: 0,
            fills: 0,
            psel: 0,
            trees: vec![0; if policy == Policy::Plru { sets } else { 0 }],
            rng: SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_71A5_EED0),
        }
    }

    /// The policy this replacer implements.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Records a demand hit on `way`.
    pub fn on_hit(&mut self, set_idx: usize, lines: &mut [LineState], way: usize) {
        match self.policy {
            Policy::Lru => {
                self.stamp += 1;
                lines[way].repl = self.stamp;
            }
            Policy::Nru => self.nru_touch(lines, way),
            Policy::Fifo | Policy::Random => {}
            Policy::Plru => self.plru_touch(set_idx, lines.len(), way),
            Policy::Srrip | Policy::Brrip | Policy::Drrip => lines[way].repl = 0,
            Policy::Lip | Policy::Bip | Policy::Dip => {
                self.stamp += 1;
                lines[way].repl = self.stamp;
            }
        }
    }

    /// Promotes `way` to the most-protected position without it being a
    /// demand hit — the operation Temporal Locality Hints and QBS perform on
    /// the LLC ("update its replacement state [to MRU]", §III-A/C).
    ///
    /// For every policy here promotion coincides with the hit update.
    pub fn promote(&mut self, set_idx: usize, lines: &mut [LineState], way: usize) {
        self.on_hit(set_idx, lines, way);
    }

    /// Records a fill into `way` (which must already contain the new line's
    /// state with `repl` reset by the caller via [`LineState::INVALID`]
    /// semantics or otherwise).
    pub fn on_fill(&mut self, set_idx: usize, lines: &mut [LineState], way: usize) {
        match self.policy {
            Policy::Lru | Policy::Fifo => {
                self.stamp += 1;
                lines[way].repl = self.stamp;
            }
            Policy::Nru => self.nru_touch(lines, way),
            Policy::Random => {}
            Policy::Plru => self.plru_touch(set_idx, lines.len(), way),
            Policy::Srrip => lines[way].repl = RRPV_MAX - 1,
            Policy::Brrip => lines[way].repl = self.brrip_insert_rrpv(),
            Policy::Drrip => {
                let srrip_mode = match set_idx % DUEL_MODULUS {
                    0 => true,           // SRRIP leader set
                    1 => false,          // BRRIP leader set
                    _ => self.psel >= 0, // follower sets
                };
                lines[way].repl = if srrip_mode {
                    RRPV_MAX - 1
                } else {
                    self.brrip_insert_rrpv()
                };
            }
            Policy::Lip => self.lru_insert(lines, way, false),
            Policy::Bip => {
                let mru = self.bip_fill_is_mru();
                self.lru_insert(lines, way, mru);
            }
            Policy::Dip => {
                let lru_mode = match set_idx % DUEL_MODULUS {
                    0 => true,           // LRU leader set
                    1 => false,          // BIP leader set
                    _ => self.psel >= 0, // follower sets
                };
                let mru = lru_mode || self.bip_fill_is_mru();
                self.lru_insert(lines, way, mru);
            }
        }
    }

    /// Records a demand miss in `set_idx` (used by DRRIP's set dueling; a
    /// miss in a leader set votes against that leader's policy).
    pub fn on_miss(&mut self, set_idx: usize) {
        if matches!(self.policy, Policy::Drrip | Policy::Dip) {
            match set_idx % DUEL_MODULUS {
                // A miss in a leader set votes against that leader's
                // policy (SRRIP/LRU lead even sets, BRRIP/BIP odd ones).
                0 => self.psel = (self.psel - 1).max(-PSEL_MAX),
                1 => self.psel = (self.psel + 1).min(PSEL_MAX),
                _ => {}
            }
        }
    }

    /// Notifies the policy that `way` is being evicted. RRIP ages the set so
    /// the victim's RRPV reaches the distant value, mirroring the hardware
    /// "increment all until a distant line exists" loop even when the TLA
    /// policy skipped over better candidates.
    pub fn on_evict(&mut self, _set_idx: usize, lines: &mut [LineState], way: usize) {
        if matches!(self.policy, Policy::Srrip | Policy::Brrip | Policy::Drrip) {
            let delta = RRPV_MAX.saturating_sub(lines[way].repl);
            if delta > 0 {
                for l in lines.iter_mut() {
                    if l.valid {
                        l.repl = (l.repl + delta).min(RRPV_MAX);
                    }
                }
            }
        }
    }

    /// The way the policy would evict next, considering only valid lines.
    ///
    /// Returns `None` if the set has no valid line.
    pub fn victim(&mut self, set_idx: usize, lines: &[LineState]) -> Option<usize> {
        self.order(set_idx, lines).into_iter().next()
    }

    /// All valid ways of the set in eviction-priority order: element 0 is
    /// the victim, element 1 the "next LRU line" ECI would pick, and so on.
    ///
    /// The returned ordering is a snapshot; it does not age or otherwise
    /// mutate per-line state (aging happens in [`Replacer::on_evict`]).
    pub fn order(&mut self, set_idx: usize, lines: &[LineState]) -> Vec<usize> {
        let mut ways: Vec<usize> = (0..lines.len()).filter(|&w| lines[w].valid).collect();
        match self.policy {
            Policy::Lru | Policy::Fifo | Policy::Lip | Policy::Bip | Policy::Dip => {
                ways.sort_by_key(|&w| lines[w].repl);
            }
            Policy::Nru => {
                // Candidates (bit == 1, stored as repl == 1) first, each
                // group in way order — the hardware scan order.
                ways.sort_by_key(|&w| (lines[w].repl == 0, w));
            }
            Policy::Random => {
                // Fisher-Yates over the valid ways.
                for i in (1..ways.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    ways.swap(i, j);
                }
            }
            Policy::Plru => {
                let order = self.plru_order(set_idx, lines.len());
                ways.sort_by_key(|&w| order[w]);
            }
            Policy::Srrip | Policy::Brrip | Policy::Drrip => {
                // Higher RRPV is evicted sooner; ties broken by way index
                // (the hardware's left-to-right scan).
                ways.sort_by_key(|&w| (std::cmp::Reverse(lines[w].repl), w));
            }
        }
        ways
    }

    // --- NRU ---------------------------------------------------------

    /// NRU reference-bit update: `repl == 1` means "not recently used"
    /// (eviction candidate); touching clears the bit, and when no candidate
    /// remains all *other* valid lines become candidates again.
    fn nru_touch(&mut self, lines: &mut [LineState], way: usize) {
        lines[way].repl = 0;
        if lines.iter().all(|l| !l.valid || l.repl == 0) {
            for (w, l) in lines.iter_mut().enumerate() {
                if w != way && l.valid {
                    l.repl = 1;
                }
            }
        }
    }

    // --- BRRIP -------------------------------------------------------

    fn brrip_insert_rrpv(&mut self) -> u64 {
        self.fills += 1;
        if self.fills.is_multiple_of(BRRIP_LONG_INTERVAL) {
            RRPV_MAX - 1
        } else {
            RRPV_MAX
        }
    }

    // --- LIP / BIP / DIP ----------------------------------------------

    /// Inserts `way` into the LRU stack: at MRU (fresh stamp) or at the
    /// LRU end (just below the current set minimum, so the line is the
    /// next victim unless it gets a hit first).
    fn lru_insert(&mut self, lines: &mut [LineState], way: usize, mru: bool) {
        if mru {
            self.stamp += 1;
            lines[way].repl = self.stamp;
        } else {
            let min = lines
                .iter()
                .enumerate()
                .filter(|&(w, l)| w != way && l.valid)
                .map(|(_, l)| l.repl)
                .min()
                .unwrap_or(1);
            lines[way].repl = min.saturating_sub(1);
        }
    }

    /// BIP inserts at MRU once every [`BRRIP_LONG_INTERVAL`] fills.
    fn bip_fill_is_mru(&mut self) -> bool {
        self.fills += 1;
        self.fills.is_multiple_of(BRRIP_LONG_INTERVAL)
    }

    // --- PLRU --------------------------------------------------------
    //
    // Classic binary-tree PLRU: node bits select the colder child
    // (0 = left, 1 = right). Nodes are stored heap-style in one u64 per
    // set: node 1 is the root, node n has children 2n and 2n+1; for `ways`
    // leaves, nodes 1..ways are internal and leaf w corresponds to heap
    // position ways + w.

    fn plru_touch(&mut self, set_idx: usize, ways: usize, way: usize) {
        let tree = &mut self.trees[set_idx];
        let mut node = ways + way;
        while node > 1 {
            let parent = node / 2;
            let came_from_right = node & 1 == 1;
            // Point the bit away from the touched leaf.
            if came_from_right {
                *tree &= !(1u64 << parent);
            } else {
                *tree |= 1u64 << parent;
            }
            node = parent;
        }
    }

    /// Eviction rank of every way under the current tree bits: rank 0 is
    /// the way the tree currently selects, and subsequent ranks follow the
    /// tree as if each selected leaf were removed.
    fn plru_order(&self, set_idx: usize, ways: usize) -> Vec<usize> {
        let tree = self.trees[set_idx];
        let mut rank = vec![usize::MAX; ways];
        // Recursive walk: within a subtree, the pointed-to child's leaves
        // all come before the other child's leaves.
        fn walk(tree: u64, node: usize, ways: usize, out: &mut Vec<usize>) {
            if node >= ways {
                out.push(node - ways);
                return;
            }
            let bit = (tree >> node) & 1;
            let first = 2 * node + bit as usize;
            let second = 2 * node + (1 - bit as usize);
            walk(tree, first, ways, out);
            walk(tree, second, ways, out);
        }
        let mut seq = Vec::with_capacity(ways);
        walk(tree, 1, ways, &mut seq);
        for (r, w) in seq.into_iter().enumerate() {
            rank[w] = r;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tla_types::LineAddr;

    fn set_of(n: usize) -> Vec<LineState> {
        (0..n)
            .map(|i| LineState {
                addr: LineAddr::new(i as u64),
                valid: true,
                dirty: false,
                cores: crate::CoreBitmap::EMPTY,
                tag: false,
                repl: 0,
            })
            .collect()
    }

    #[test]
    fn lru_orders_by_recency() {
        let mut r = Replacer::new(Policy::Lru, 1, 0);
        let mut lines = set_of(4);
        for w in 0..4 {
            r.on_fill(0, &mut lines, w);
        }
        // Touch way 0 -> it becomes MRU, way 1 is now LRU.
        r.on_hit(0, &mut lines, 0);
        assert_eq!(r.order(0, &lines), vec![1, 2, 3, 0]);
        assert_eq!(r.victim(0, &lines), Some(1));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut r = Replacer::new(Policy::Fifo, 1, 0);
        let mut lines = set_of(3);
        for w in 0..3 {
            r.on_fill(0, &mut lines, w);
        }
        r.on_hit(0, &mut lines, 0);
        assert_eq!(r.victim(0, &lines), Some(0)); // still oldest fill
    }

    #[test]
    fn nru_scan_order_and_refresh() {
        let mut r = Replacer::new(Policy::Nru, 1, 0);
        let mut lines = set_of(4);
        for l in lines.iter_mut() {
            l.repl = 1; // all candidates initially
        }
        r.on_hit(0, &mut lines, 2);
        // way 2 is protected; scan finds way 0 first.
        assert_eq!(r.victim(0, &lines), Some(0));
        // Touch everything: last touch refreshes others back to candidates.
        for w in 0..4 {
            r.on_hit(0, &mut lines, w);
        }
        // way 3 touched last, so ways 0..=2 are candidates again.
        assert_eq!(lines[3].repl, 0);
        assert_eq!(r.victim(0, &lines), Some(0));
    }

    #[test]
    fn nru_order_puts_candidates_first() {
        let mut r = Replacer::new(Policy::Nru, 1, 0);
        let mut lines = set_of(4);
        for l in lines.iter_mut() {
            l.repl = 1;
        }
        r.on_hit(0, &mut lines, 0);
        r.on_hit(0, &mut lines, 1);
        assert_eq!(r.order(0, &lines), vec![2, 3, 0, 1]);
    }

    #[test]
    fn srrip_inserts_long_hits_reset() {
        let mut r = Replacer::new(Policy::Srrip, 1, 0);
        let mut lines = set_of(2);
        r.on_fill(0, &mut lines, 0);
        assert_eq!(lines[0].repl, RRPV_MAX - 1);
        r.on_hit(0, &mut lines, 0);
        assert_eq!(lines[0].repl, 0);
        r.on_fill(0, &mut lines, 1);
        // way 1 (rrpv 2) evicts before way 0 (rrpv 0).
        assert_eq!(r.victim(0, &lines), Some(1));
    }

    #[test]
    fn srrip_eviction_ages_set() {
        let mut r = Replacer::new(Policy::Srrip, 1, 0);
        let mut lines = set_of(2);
        r.on_fill(0, &mut lines, 0);
        r.on_fill(0, &mut lines, 1);
        r.on_hit(0, &mut lines, 0); // rrpv 0
        r.on_evict(0, &mut lines, 1); // rrpv 2 -> ages by 1
        assert_eq!(lines[0].repl, 1);
        assert_eq!(lines[1].repl, RRPV_MAX);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut r = Replacer::new(Policy::Brrip, 1, 0);
        let mut lines = set_of(1);
        let mut distant = 0;
        for _ in 0..BRRIP_LONG_INTERVAL {
            r.on_fill(0, &mut lines, 0);
            if lines[0].repl == RRPV_MAX {
                distant += 1;
            }
        }
        assert_eq!(distant, BRRIP_LONG_INTERVAL - 1);
    }

    #[test]
    fn drrip_leader_sets_vote() {
        let mut r = Replacer::new(Policy::Drrip, DUEL_MODULUS * 2, 0);
        // Misses in the SRRIP leader set push PSEL negative -> BRRIP wins.
        for _ in 0..10 {
            r.on_miss(0);
        }
        assert!(r.psel < 0);
        let mut lines = set_of(1);
        // Follower set now inserts with BRRIP (distant most of the time).
        let mut saw_distant = false;
        for _ in 0..4 {
            r.on_fill(5, &mut lines, 0);
            saw_distant |= lines[0].repl == RRPV_MAX;
        }
        assert!(saw_distant);
        // Misses in the BRRIP leader set push back toward SRRIP.
        for _ in 0..30 {
            r.on_miss(1);
        }
        assert!(r.psel > 0);
    }

    #[test]
    fn random_orders_every_valid_way_exactly_once() {
        let mut r = Replacer::new(Policy::Random, 1, 42);
        let lines = set_of(8);
        let mut order = r.order(0, &lines);
        order.sort_unstable();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let lines = set_of(8);
        let mut a = Replacer::new(Policy::Random, 1, 7);
        let mut b = Replacer::new(Policy::Random, 1, 7);
        assert_eq!(a.order(0, &lines), b.order(0, &lines));
    }

    #[test]
    fn plru_victim_avoids_recent_touch() {
        let mut r = Replacer::new(Policy::Plru, 1, 0);
        let mut lines = set_of(4);
        for w in 0..4 {
            r.on_fill(0, &mut lines, w);
        }
        let v = r.victim(0, &lines).unwrap();
        // The just-touched way 3 must not be the victim.
        assert_ne!(v, 3);
        // Touch the victim; the next victim differs.
        r.on_hit(0, &mut lines, v);
        assert_ne!(r.victim(0, &lines), Some(v));
    }

    #[test]
    fn plru_order_is_a_permutation() {
        let mut r = Replacer::new(Policy::Plru, 1, 0);
        let mut lines = set_of(8);
        for w in [0, 3, 5, 1, 7] {
            r.on_fill(0, &mut lines, w);
        }
        let mut order = r.order(0, &lines);
        order.sort_unstable();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn order_skips_invalid_ways() {
        let mut r = Replacer::new(Policy::Lru, 1, 0);
        let mut lines = set_of(4);
        lines[2].valid = false;
        for w in [0, 1, 3] {
            r.on_fill(0, &mut lines, w);
        }
        let order = r.order(0, &lines);
        assert_eq!(order.len(), 3);
        assert!(!order.contains(&2));
    }

    #[test]
    fn victim_none_when_all_invalid() {
        let mut r = Replacer::new(Policy::Nru, 1, 0);
        let mut lines = set_of(2);
        for l in lines.iter_mut() {
            l.valid = false;
        }
        assert_eq!(r.victim(0, &lines), None);
    }

    #[test]
    fn promote_equals_hit_for_lru() {
        let mut a = Replacer::new(Policy::Lru, 1, 0);
        let mut b = Replacer::new(Policy::Lru, 1, 0);
        let mut la = set_of(4);
        let mut lb = set_of(4);
        for w in 0..4 {
            a.on_fill(0, &mut la, w);
            b.on_fill(0, &mut lb, w);
        }
        a.on_hit(0, &mut la, 1);
        b.promote(0, &mut lb, 1);
        assert_eq!(a.order(0, &la), b.order(0, &lb));
    }
}

#[cfg(test)]
mod lip_tests {
    use super::*;
    use tla_types::LineAddr;

    fn set_of(n: usize) -> Vec<LineState> {
        (0..n)
            .map(|i| LineState {
                addr: LineAddr::new(i as u64),
                valid: true,
                dirty: false,
                cores: crate::CoreBitmap::EMPTY,
                tag: false,
                repl: 0,
            })
            .collect()
    }

    #[test]
    fn lip_inserts_at_lru_end() {
        let mut r = Replacer::new(Policy::Lip, 1, 0);
        let mut lines = set_of(4);
        for w in 0..3 {
            r.on_hit(0, &mut lines, w); // establish an LRU stack 0 < 1 < 2
        }
        r.on_fill(0, &mut lines, 3);
        // The fresh fill must be the first victim.
        assert_eq!(r.victim(0, &lines), Some(3));
        // A hit promotes it to MRU.
        r.on_hit(0, &mut lines, 3);
        assert_eq!(r.victim(0, &lines), Some(0));
    }

    #[test]
    fn bip_occasionally_inserts_at_mru() {
        let mut r = Replacer::new(Policy::Bip, 1, 0);
        let mut lines = set_of(2);
        r.on_hit(0, &mut lines, 0);
        let mut saw_mru = false;
        for _ in 0..64 {
            r.on_fill(0, &mut lines, 1);
            if r.victim(0, &lines) == Some(0) {
                saw_mru = true; // the fill landed above way 0
            }
        }
        assert!(saw_mru, "BIP must sometimes insert at MRU");
    }

    #[test]
    fn dip_follows_the_winning_leader() {
        let mut r = Replacer::new(Policy::Dip, DUEL_MODULUS * 2, 0);
        // Misses in the LRU leader set push PSEL negative -> BIP mode.
        for _ in 0..20 {
            r.on_miss(0);
        }
        assert!(r.psel < 0);
        let mut lines = set_of(4);
        for w in 0..3 {
            r.on_hit(5, &mut lines, w);
        }
        r.on_fill(5, &mut lines, 3); // follower set, BIP mode, non-MRU fill
        assert_eq!(r.victim(5, &lines), Some(3));
        // Misses in the BIP leader set vote back toward LRU.
        for _ in 0..40 {
            r.on_miss(1);
        }
        assert!(r.psel > 0);
        r.on_fill(5, &mut lines, 3);
        assert_eq!(r.victim(5, &lines), Some(0), "LRU mode fills at MRU");
    }

    #[test]
    fn lip_resists_thrash_where_lru_fails() {
        // Cyclic access to 5 lines through a 4-way set: LRU misses every
        // time; LIP retains a stable subset and hits.
        let run = |policy: Policy| {
            let cfg = crate::CacheConfig::with_sets("t", 1, 4, policy).unwrap();
            let mut cache = crate::SetAssocCache::new(cfg);
            let mut hits = 0;
            for i in 0..400u64 {
                let line = LineAddr::new(i % 5);
                if cache.touch(line) {
                    hits += 1;
                } else {
                    cache.fill(line, false);
                }
            }
            hits
        };
        assert_eq!(run(Policy::Lru), 0, "LRU thrashes the cycle");
        assert!(run(Policy::Lip) > 200, "LIP must retain a working subset");
    }
}
