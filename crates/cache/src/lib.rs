//! Cache building blocks for the TLA simulator.
//!
//! This crate implements every hardware structure the paper's evaluation
//! platform (CMP$im) provides, re-built from scratch:
//!
//! * [`SetAssocCache`] — a set-associative cache with per-line dirty bits
//!   and an LLC directory ([`CoreBitmap`]) recording which cores may hold a
//!   copy, as in the Core i7 the paper models.
//! * [`Policy`] — replacement policies: LRU (core caches), NRU (the paper's
//!   baseline LLC policy), FIFO, Random, tree PLRU, and the RRIP family
//!   (SRRIP/BRRIP/DRRIP) used for the footnote-4 ablation.
//! * [`MshrFile`] — the fixed pool of miss-status holding registers that
//!   models interconnect bandwidth (§IV-A: "bandwidth onto the interconnect
//!   is modeled using a fixed number of MSHRs").
//! * [`VictimCache`] — the 32-entry victim cache the paper compares ECI/QBS
//!   against in §VI.
//! * [`StreamPrefetcher`] — the 16-detector stream prefetcher that trains on
//!   L2 misses and fills the L2.
//! * [`probe`] — the set-probe kernels behind every tag scan: an AVX2 path
//!   comparing 8 tags per step on capable x86-64, a 4-lane portable scalar
//!   path elsewhere, selected once per process at first use
//!   (`TLA_FORCE_SCALAR=1` pins the scalar path for byte-for-byte
//!   reproducibility checks). The [`WayMask`] multi-word bitmap the kernels
//!   return is also the per-set valid/dirty/tag storage, lifting the
//!   associativity limit to [`MAX_WAYS`] = 256.
//!
//! # Examples
//!
//! ```
//! use tla_cache::{CacheConfig, Policy, SetAssocCache};
//! use tla_types::LineAddr;
//!
//! let cfg = CacheConfig::new("L1D", 32 * 1024, 4, Policy::Lru)?;
//! let mut cache = SetAssocCache::new(cfg);
//! let line = LineAddr::new(0x40);
//! assert!(!cache.touch(line));          // cold miss
//! cache.fill(line, false);              // bring the line in
//! assert!(cache.touch(line));           // now it hits
//! # Ok::<(), tla_cache::ConfigError>(())
//! ```

mod attribution;
mod config;
mod line;
mod mshr;
mod prefetch;
pub mod probe;
mod replacement;
mod set_assoc;
mod victim;

pub use attribution::{MissClass, VictimCause, VictimTracker};
pub use config::{CacheConfig, ConfigError, MAX_WAYS};
pub use line::{CoreBitmap, LineState};
pub use mshr::MshrFile;
pub use prefetch::{StreamPrefetcher, StreamPrefetcherConfig};
pub use probe::{kernel_name, min_index, probe_first, ProbeKernel, WayMask};
pub use replacement::{Policy, Replacer};
pub use set_assoc::{CacheStats, Evicted, SetAssocCache};
pub use victim::{VictimCache, VictimEntry};
