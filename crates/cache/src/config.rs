//! Cache geometry configuration.

use crate::replacement::Policy;
use std::fmt;
use tla_types::{LineAddr, LINE_BYTES};

/// Maximum supported associativity. The set-associative storage keeps
/// valid/dirty/tag state as a multi-word
/// [`WayMask`](crate::probe::WayMask) bitmap per set
/// (`[u64; WAY_WORDS]`), so a set can hold at most `64 * WAY_WORDS` = 256
/// ways — wide enough for the fully-associative victim-cache sweeps.
pub const MAX_WAYS: usize = 256;

/// Errors produced when validating a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Capacity is not a multiple of `ways * LINE_BYTES`.
    CapacityNotDivisible {
        /// Requested capacity in bytes.
        capacity: usize,
        /// Requested associativity.
        ways: usize,
    },
    /// The derived number of sets is not a power of two.
    SetsNotPowerOfTwo {
        /// Derived set count.
        sets: usize,
    },
    /// Associativity of zero was requested.
    ZeroWays,
    /// Associativity exceeds [`MAX_WAYS`] (the width of the multi-word
    /// per-set bitmaps).
    TooManyWays {
        /// Requested associativity.
        ways: usize,
    },
    /// The PLRU policy requires a power-of-two associativity.
    PlruNeedsPow2Ways {
        /// Requested associativity.
        ways: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CapacityNotDivisible { capacity, ways } => write!(
                f,
                "capacity {capacity} B is not divisible by {ways} ways of {LINE_BYTES} B lines"
            ),
            ConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "derived set count {sets} is not a power of two")
            }
            ConfigError::ZeroWays => write!(f, "associativity must be at least 1"),
            ConfigError::TooManyWays { ways } => write!(
                f,
                "associativity {ways} exceeds the {MAX_WAYS}-way limit of the multi-word set bitmaps"
            ),
            ConfigError::PlruNeedsPow2Ways { ways } => {
                write!(
                    f,
                    "tree PLRU requires power-of-two associativity, got {ways}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry and replacement policy of one cache.
///
/// Line size is fixed at [`LINE_BYTES`] (64 B) as in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    name: String,
    sets: usize,
    ways: usize,
    policy: Policy,
}

impl CacheConfig {
    /// Creates a configuration from a total capacity in bytes and an
    /// associativity. The set count is derived and must come out a power of
    /// two.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the geometry is inconsistent.
    ///
    /// # Examples
    ///
    /// ```
    /// use tla_cache::{CacheConfig, Policy};
    /// let llc = CacheConfig::new("LLC", 2 * 1024 * 1024, 16, Policy::Nru)?;
    /// assert_eq!(llc.sets(), 2048);
    /// # Ok::<(), tla_cache::ConfigError>(())
    /// ```
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: usize,
        ways: usize,
        policy: Policy,
    ) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::ZeroWays);
        }
        if ways > MAX_WAYS {
            return Err(ConfigError::TooManyWays { ways });
        }
        let way_bytes = ways * LINE_BYTES;
        if capacity_bytes == 0 || !capacity_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::CapacityNotDivisible {
                capacity: capacity_bytes,
                ways,
            });
        }
        let sets = capacity_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(ConfigError::SetsNotPowerOfTwo { sets });
        }
        if policy == Policy::Plru && !ways.is_power_of_two() {
            return Err(ConfigError::PlruNeedsPow2Ways { ways });
        }
        Ok(CacheConfig {
            name: name.into(),
            sets,
            ways,
            policy,
        })
    }

    /// Creates a configuration directly from a set count (must be a power of
    /// two) and associativity.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the geometry is inconsistent.
    pub fn with_sets(
        name: impl Into<String>,
        sets: usize,
        ways: usize,
        policy: Policy,
    ) -> Result<Self, ConfigError> {
        Self::new(name, sets * ways * LINE_BYTES, ways, policy)
    }

    /// Human-readable cache name used in reports (e.g. `"LLC"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sets (a power of two).
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Replacement policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES
    }

    /// The set a line maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() & (self.sets as u64 - 1)) as usize
    }

    /// Returns a copy with a different replacement policy.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the policy is incompatible with the
    /// geometry (PLRU with non-power-of-two ways).
    pub fn with_policy(&self, policy: Policy) -> Result<Self, ConfigError> {
        if policy == Policy::Plru && !self.ways.is_power_of_two() {
            return Err(ConfigError::PlruNeedsPow2Ways { ways: self.ways });
        }
        Ok(CacheConfig {
            policy,
            ..self.clone()
        })
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KB, {}-way, {} sets, {}",
            self.name,
            self.capacity_bytes() / 1024,
            self.ways,
            self.sets,
            self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_paper_geometries() {
        // The paper's baseline caches (§IV-A).
        let l1 = CacheConfig::new("L1D", 32 * 1024, 4, Policy::Lru).unwrap();
        assert_eq!(l1.sets(), 128);
        let l2 = CacheConfig::new("L2", 256 * 1024, 8, Policy::Lru).unwrap();
        assert_eq!(l2.sets(), 512);
        let llc = CacheConfig::new("LLC", 2 * 1024 * 1024, 16, Policy::Nru).unwrap();
        assert_eq!(llc.sets(), 2048);
        assert_eq!(llc.capacity_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(matches!(
            CacheConfig::new("x", 1000, 4, Policy::Lru),
            Err(ConfigError::CapacityNotDivisible { .. })
        ));
        assert!(matches!(
            CacheConfig::new("x", 3 * 64 * 4, 4, Policy::Lru),
            Err(ConfigError::SetsNotPowerOfTwo { sets: 3 })
        ));
        assert!(matches!(
            CacheConfig::new("x", 64, 0, Policy::Lru),
            Err(ConfigError::ZeroWays)
        ));
        assert!(matches!(
            CacheConfig::new("x", 64 * 12 * 16, 12, Policy::Plru),
            Err(ConfigError::PlruNeedsPow2Ways { ways: 12 })
        ));
        // 257 ways with 1 set is otherwise a consistent geometry, but the
        // multi-word bitmaps cap associativity at 256.
        assert!(matches!(
            CacheConfig::with_sets("x", 1, 257, Policy::Lru),
            Err(ConfigError::TooManyWays { ways: 257 })
        ));
        assert!(CacheConfig::with_sets("x", 1, 256, Policy::Lru).is_ok());
        // 65 ways used to be rejected by the single-word layout; the
        // multi-word lift makes it a supported geometry.
        assert!(CacheConfig::with_sets("x", 1, 65, Policy::Lru).is_ok());
    }

    #[test]
    fn set_mapping_masks_low_bits() {
        let cfg = CacheConfig::with_sets("t", 16, 2, Policy::Lru).unwrap();
        assert_eq!(cfg.set_of(LineAddr::new(0)), 0);
        assert_eq!(cfg.set_of(LineAddr::new(17)), 1);
        assert_eq!(cfg.set_of(LineAddr::new(31)), 15);
    }

    #[test]
    fn with_policy_swaps() {
        let cfg = CacheConfig::with_sets("t", 16, 16, Policy::Nru).unwrap();
        let lru = cfg.with_policy(Policy::Lru).unwrap();
        assert_eq!(lru.policy(), Policy::Lru);
        assert_eq!(lru.sets(), cfg.sets());
        // error text is printable
        let err = CacheConfig::new("x", 64, 0, Policy::Lru).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
