//! The set-associative cache structure.

use crate::config::CacheConfig;
use crate::line::{CoreBitmap, LineState};
use crate::replacement::Replacer;
use tla_types::{CoreId, LineAddr};

/// A line displaced from a cache by a fill or an explicit eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Address of the displaced line.
    pub addr: LineAddr,
    /// Whether it was dirty (needs a write-back to the next level).
    pub dirty: bool,
    /// Directory bits the line carried (meaningful for the LLC).
    pub cores: CoreBitmap,
}

/// Hit/miss counters for one cache, split by demand vs. prefetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (ifetch/load/store).
    pub demand_accesses: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Prefetch lookups.
    pub prefetch_accesses: u64,
    /// Prefetch lookups that missed.
    pub prefetch_misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines displaced (by fills or invalidations).
    pub evictions: u64,
    /// Displaced lines that were dirty.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand hit count.
    pub fn demand_hits(&self) -> u64 {
        self.demand_accesses - self.demand_misses
    }
}

/// A set-associative cache holding line metadata only (the simulator is
/// trace-driven; no data payloads are modelled).
///
/// Replacement bookkeeping is delegated to a [`Replacer`]; the hierarchy
/// layer drives inclusion, back-invalidation and the TLA policies through
/// the explicit [`SetAssocCache::victim_order`] / [`SetAssocCache::evict_way`] /
/// [`SetAssocCache::fill_way`] API, while simple uses go through
/// [`SetAssocCache::touch`] and [`SetAssocCache::fill`].
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    lines: Vec<LineState>,
    repl: Replacer,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with deterministic replacement seeded from the
    /// cache name.
    pub fn new(cfg: CacheConfig) -> Self {
        let seed = cfg.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        Self::with_seed(cfg, seed)
    }

    /// Creates an empty cache with an explicit replacement seed (only the
    /// Random policy consumes it).
    pub fn with_seed(cfg: CacheConfig, seed: u64) -> Self {
        let repl = Replacer::new(cfg.policy(), cfg.sets(), seed);
        let lines = vec![LineState::INVALID; cfg.sets() * cfg.ways()];
        SetAssocCache {
            cfg,
            lines,
            repl,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the hit/miss counters (cache contents are kept). Used when
    /// freezing per-thread statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The set index `line` maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.cfg.set_of(line)
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let ways = self.cfg.ways();
        set * ways..(set + 1) * ways
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        self.lines[self.set_range(set)]
            .iter()
            .position(|l| l.valid && l.addr == line)
    }

    /// Checks for presence without touching replacement state or counters —
    /// the primitive a QBS query uses.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks `line` up as a demand access, updating replacement state and
    /// counters. Returns `true` on a hit.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.lookup(line, true)
    }

    /// Looks `line` up as a prefetch access (counted separately). Returns
    /// `true` on a hit.
    pub fn touch_prefetch(&mut self, line: LineAddr) -> bool {
        self.lookup(line, false)
    }

    fn lookup(&mut self, line: LineAddr, demand: bool) -> bool {
        let set = self.set_of(line);
        let hit_way = self.find(line);
        if demand {
            self.stats.demand_accesses += 1;
        } else {
            self.stats.prefetch_accesses += 1;
        }
        match hit_way {
            Some(way) => {
                let range = self.set_range(set);
                self.repl.on_hit(set, &mut self.lines[range], way);
                true
            }
            None => {
                if demand {
                    self.stats.demand_misses += 1;
                } else {
                    self.stats.prefetch_misses += 1;
                }
                self.repl.on_miss(set);
                false
            }
        }
    }

    /// Promotes `line` toward MRU if present (a TLH or QBS replacement-state
    /// update). Returns `true` if the line was present.
    pub fn promote(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                let range = self.set_range(set);
                self.repl.promote(set, &mut self.lines[range], way);
                true
            }
            None => false,
        }
    }

    /// Marks `line` dirty if present. Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                let idx = set * self.cfg.ways() + way;
                self.lines[idx].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Fills `line` choosing the victim with the cache's own policy
    /// (invalid ways first). Returns the displaced line, if any.
    ///
    /// The hierarchy uses this for core caches; the LLC under TLA policies
    /// uses the explicit [`SetAssocCache::victim_order`] path instead.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.fill_with_cores(line, dirty, CoreBitmap::EMPTY)
    }

    /// [`SetAssocCache::fill`] that also sets the LLC directory bits of the
    /// new line.
    pub fn fill_with_cores(
        &mut self,
        line: LineAddr,
        dirty: bool,
        cores: CoreBitmap,
    ) -> Option<Evicted> {
        debug_assert!(
            self.find(line).is_none(),
            "fill of already-present line {line:?}"
        );
        let set = self.set_of(line);
        let way = match self.invalid_way(set) {
            Some(w) => w,
            None => {
                let range = self.set_range(set);

                self.repl
                    .victim(set, &self.lines[range])
                    .expect("full set must have a victim")
            }
        };
        let evicted = self.evict_way(set, way);
        self.fill_way(set, way, line, dirty, cores);
        evicted
    }

    /// First invalid way of `set`, if any.
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        self.lines[self.set_range(set)]
            .iter()
            .position(|l| !l.valid)
    }

    /// Valid ways of `set` in eviction-priority order (element 0 = victim,
    /// element 1 = ECI's "next LRU line", ...), with their line addresses.
    pub fn victim_order(&mut self, set: usize) -> Vec<(usize, LineAddr)> {
        let range = self.set_range(set);
        let lines = &self.lines[range.clone()];
        self.repl
            .order(set, lines)
            .into_iter()
            .map(|w| (w, lines[w].addr))
            .collect()
    }

    /// Evicts the line in (`set`, `way`) if valid, returning it. Updates
    /// eviction/writeback counters and lets the policy age the set.
    pub fn evict_way(&mut self, set: usize, way: usize) -> Option<Evicted> {
        let range = self.set_range(set);
        let idx = range.start + way;
        if !self.lines[idx].valid {
            return None;
        }
        let lr = range.clone();
        self.repl.on_evict(set, &mut self.lines[lr], way);
        let l = self.lines[idx];
        self.lines[idx] = LineState::INVALID;
        self.stats.evictions += 1;
        if l.dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted {
            addr: l.addr,
            dirty: l.dirty,
            cores: l.cores,
        })
    }

    /// Fills `line` into an explicit (`set`, `way`) slot, which must be
    /// invalid (evict first).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the slot is still valid or the line maps elsewhere.
    pub fn fill_way(
        &mut self,
        set: usize,
        way: usize,
        line: LineAddr,
        dirty: bool,
        cores: CoreBitmap,
    ) {
        debug_assert_eq!(self.set_of(line), set, "line filled into wrong set");
        let range = self.set_range(set);
        let idx = range.start + way;
        debug_assert!(!self.lines[idx].valid, "fill into occupied way");
        self.lines[idx] = LineState {
            addr: line,
            valid: true,
            dirty,
            cores,
            tag: false,
            repl: 0,
        };
        self.stats.fills += 1;
        let lr = range.clone();
        self.repl.on_fill(set, &mut self.lines[lr], way);
    }

    /// Invalidates `line` if present, returning its state (dirtiness matters
    /// to the caller: back-invalidated dirty lines must be written back).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let set = self.set_of(line);
        let way = self.find(line)?;
        self.evict_way(set, way)
    }

    /// Sets the policy tag bit of `line` if present. Returns `true` if the
    /// line was present.
    pub fn set_tag(&mut self, line: LineAddr, tag: bool) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.lines[set * self.cfg.ways() + way].tag = tag;
                true
            }
            None => false,
        }
    }

    /// Reads and clears the policy tag bit of `line`. Returns the previous
    /// value, or `None` if the line is absent.
    pub fn take_tag(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let way = self.find(line)?;
        let idx = set * self.cfg.ways() + way;
        let old = self.lines[idx].tag;
        self.lines[idx].tag = false;
        Some(old)
    }

    /// Adds `core` to the directory bits of `line` (LLC bookkeeping).
    /// Returns `true` if the line was present.
    pub fn add_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                let idx = set * self.cfg.ways() + way;
                self.lines[idx].cores.insert(core);
                true
            }
            None => false,
        }
    }

    /// Clears the directory bits of `line` (after the cores were
    /// invalidated, e.g. by an ECI message). Returns `true` if the line was
    /// present.
    pub fn clear_sharers(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.lines[set * self.cfg.ways() + way].cores = CoreBitmap::EMPTY;
                true
            }
            None => false,
        }
    }

    /// Directory bits of `line`, if present.
    pub fn sharers(&self, line: LineAddr) -> Option<CoreBitmap> {
        let set = self.set_of(line);
        self.find(line)
            .map(|way| self.lines[set * self.cfg.ways() + way].cores)
    }

    /// Number of valid lines currently held (O(capacity); for tests and
    /// reports, not the hot path).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over all valid lines (for invariant checks in tests).
    pub fn iter_valid(&self) -> impl Iterator<Item = &LineState> {
        self.lines.iter().filter(|l| l.valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::Policy;

    fn small(policy: Policy, sets: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::with_sets("t", sets, ways, policy).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(Policy::Lru, 4, 2);
        let l = LineAddr::new(5);
        assert!(!c.touch(l));
        c.fill(l, false);
        assert!(c.touch(l));
        assert_eq!(c.stats().demand_accesses, 2);
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_hits(), 1);
    }

    #[test]
    fn fill_evicts_lru_line() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        c.touch(LineAddr::new(0)); // 1 is now LRU
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(!ev.dirty);
        assert!(c.probe(LineAddr::new(0)));
        assert!(c.probe(LineAddr::new(2)));
        assert!(!c.probe(LineAddr::new(1)));
    }

    #[test]
    fn dirty_line_reports_writeback() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), true);
        let ev = c.fill(LineAddr::new(1), false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn mark_dirty_after_fill() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), false);
        assert!(c.mark_dirty(LineAddr::new(0)));
        assert!(!c.mark_dirty(LineAddr::new(9)));
        let ev = c.fill(LineAddr::new(1), false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn probe_does_not_count_or_touch() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        // Probing 0 must not protect it.
        assert!(c.probe(LineAddr::new(0)));
        assert_eq!(c.stats().demand_accesses, 0);
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
    }

    #[test]
    fn promote_protects_line() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        assert!(c.promote(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(!c.promote(LineAddr::new(42)));
    }

    #[test]
    fn victim_order_matches_policy() {
        let mut c = small(Policy::Lru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        c.touch(LineAddr::new(0));
        let order = c.victim_order(0);
        let addrs: Vec<u64> = order.iter().map(|(_, a)| a.raw()).collect();
        assert_eq!(addrs, vec![1, 2, 3, 0]);
    }

    #[test]
    fn explicit_evict_fill_roundtrip() {
        let mut c = small(Policy::Nru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), true);
        let set = c.set_of(LineAddr::new(1));
        let order = c.victim_order(set);
        let (way, addr) = order[0];
        let ev = c.evict_way(set, way).unwrap();
        assert_eq!(ev.addr, addr);
        c.fill_way(set, way, LineAddr::new(3), false, CoreBitmap::EMPTY);
        assert!(c.probe(LineAddr::new(3)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_returns_state() {
        let mut c = small(Policy::Lru, 2, 2);
        c.fill(LineAddr::new(4), true);
        let ev = c.invalidate(LineAddr::new(4)).unwrap();
        assert!(ev.dirty);
        assert!(c.invalidate(LineAddr::new(4)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sharer_tracking() {
        let mut c = small(Policy::Nru, 1, 2);
        let l = LineAddr::new(0);
        c.fill_with_cores(l, false, CoreBitmap::single(CoreId::new(0)));
        assert!(c.add_sharer(l, CoreId::new(1)));
        let s = c.sharers(l).unwrap();
        assert!(s.contains(CoreId::new(0)) && s.contains(CoreId::new(1)));
        assert!(!c.add_sharer(LineAddr::new(99), CoreId::new(0)));
        assert!(c.sharers(LineAddr::new(99)).is_none());
        // Eviction carries the bits out.
        c.fill(LineAddr::new(2), false);
        let ev = c.fill(LineAddr::new(4), false).unwrap();
        assert!(!ev.cores.is_empty() || ev.addr != l || c.probe(l));
    }

    #[test]
    fn tag_bit_set_and_take() {
        let mut c = small(Policy::Lru, 1, 2);
        let l = LineAddr::new(0);
        assert!(!c.set_tag(l, true), "absent line cannot be tagged");
        c.fill(l, false);
        assert!(c.set_tag(l, true));
        assert_eq!(c.take_tag(l), Some(true));
        assert_eq!(c.take_tag(l), Some(false), "take clears the bit");
        assert_eq!(c.take_tag(LineAddr::new(9)), None);
    }

    #[test]
    fn tag_bit_cleared_by_refill() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), false);
        c.set_tag(LineAddr::new(0), true);
        c.fill(LineAddr::new(1), false); // evicts 0
        c.fill(LineAddr::new(0), false); // wait: set full; evicts 1
        assert_eq!(c.take_tag(LineAddr::new(0)), Some(false));
    }

    #[test]
    fn clear_sharers_empties_directory() {
        let mut c = small(Policy::Nru, 1, 2);
        let l = LineAddr::new(0);
        c.fill_with_cores(l, false, CoreBitmap::single(CoreId::new(3)));
        assert!(!c.sharers(l).unwrap().is_empty());
        assert!(c.clear_sharers(l));
        assert!(c.sharers(l).unwrap().is_empty());
        assert!(!c.clear_sharers(LineAddr::new(9)));
    }

    #[test]
    fn prefetch_counted_separately() {
        let mut c = small(Policy::Lru, 1, 2);
        assert!(!c.touch_prefetch(LineAddr::new(0)));
        c.fill(LineAddr::new(0), false);
        assert!(c.touch_prefetch(LineAddr::new(0)));
        assert_eq!(c.stats().prefetch_accesses, 2);
        assert_eq!(c.stats().prefetch_misses, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.touch(LineAddr::new(0));
        c.reset_stats();
        assert_eq!(c.stats().demand_accesses, 0);
        assert!(c.probe(LineAddr::new(0)));
    }

    #[test]
    fn lines_map_to_correct_sets() {
        let mut c = small(Policy::Lru, 4, 2);
        for i in 0..8u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 8);
        for l in c.iter_valid() {
            assert_eq!(c.set_of(l.addr), (l.addr.raw() % 4) as usize);
        }
    }
}
