//! The set-associative cache structure.

use crate::config::CacheConfig;
use crate::line::{CoreBitmap, LineState};
use crate::replacement::Replacer;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{CoreId, LineAddr};

/// A line displaced from a cache by a fill or an explicit eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Address of the displaced line.
    pub addr: LineAddr,
    /// Whether it was dirty (needs a write-back to the next level).
    pub dirty: bool,
    /// Directory bits the line carried (meaningful for the LLC).
    pub cores: CoreBitmap,
}

/// Hit/miss counters for one cache, split by demand vs. prefetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (ifetch/load/store).
    pub demand_accesses: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Prefetch lookups.
    pub prefetch_accesses: u64,
    /// Prefetch lookups that missed.
    pub prefetch_misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines displaced (by fills or invalidations).
    pub evictions: u64,
    /// Displaced lines that were dirty.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand hit count.
    pub fn demand_hits(&self) -> u64 {
        self.demand_accesses - self.demand_misses
    }
}

/// A set-associative cache holding line metadata only (the simulator is
/// trace-driven; no data payloads are modelled).
///
/// Line metadata is stored struct-of-arrays: the single-bit fields (valid,
/// dirty, policy tag) live in one `u64` bitmap per set — bit `w` describes
/// way `w` — while addresses, replacement words and directory bits are flat
/// per-way arrays. Presence scans (`find`, [`SetAssocCache::probe`], the QBS
/// residency queries) walk only the set bits of the valid word instead of
/// deserializing whole line structs, and clearing a way is a handful of
/// bit-ands. The layout caps associativity at
/// [`MAX_WAYS`](crate::config::MAX_WAYS) = 64, which
/// [`CacheConfig`](crate::config::CacheConfig) enforces.
///
/// Replacement bookkeeping is delegated to a [`Replacer`]; the hierarchy
/// layer drives inclusion, back-invalidation and the TLA policies through
/// the explicit [`SetAssocCache::victim_order_into`] /
/// [`SetAssocCache::evict_way`] / [`SetAssocCache::fill_way`] API, while
/// simple uses go through [`SetAssocCache::touch`] and
/// [`SetAssocCache::fill`].
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Cached `cfg.ways()` (hot-path stride).
    ways: usize,
    /// Line address per way slot (meaningful only when the valid bit is
    /// set); indexed `set * ways + way`.
    addrs: Vec<LineAddr>,
    /// Replacement-policy word per way slot.
    repl: Vec<u64>,
    /// Directory bits per way slot (LLC only).
    cores: Vec<CoreBitmap>,
    /// Valid bitmap, one word per set.
    valid: Vec<u64>,
    /// Dirty bitmap, one word per set.
    dirty: Vec<u64>,
    /// Policy-tag bitmap, one word per set (ECI's early-invalidate mark).
    tag: Vec<u64>,
    replacer: Replacer,
    /// Reusable way-index buffer so [`SetAssocCache::victim_order_into`]
    /// allocates nothing in steady state.
    way_scratch: Vec<usize>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with deterministic replacement seeded from the
    /// cache name.
    pub fn new(cfg: CacheConfig) -> Self {
        let seed = cfg.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        Self::with_seed(cfg, seed)
    }

    /// Creates an empty cache with an explicit replacement seed (only the
    /// Random policy consumes it).
    pub fn with_seed(cfg: CacheConfig, seed: u64) -> Self {
        let replacer = Replacer::new(cfg.policy(), cfg.sets(), seed);
        let ways = cfg.ways();
        let slots = cfg.sets() * ways;
        SetAssocCache {
            ways,
            addrs: vec![LineAddr::new(0); slots],
            repl: vec![0; slots],
            cores: vec![CoreBitmap::EMPTY; slots],
            valid: vec![0; cfg.sets()],
            dirty: vec![0; cfg.sets()],
            tag: vec![0; cfg.sets()],
            replacer,
            way_scratch: Vec::with_capacity(ways),
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the hit/miss counters (cache contents are kept). Used when
    /// freezing per-thread statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The set index `line` maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.cfg.set_of(line)
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.ways;
        // Branchless tag match: build a way bitmask of address matches
        // (auto-vectorizes over the dense u64 address array), then mask by
        // validity. Invalid slots may hold stale addresses, so the valid
        // mask is what makes a match real.
        let addrs = &self.addrs[base..base + self.ways];
        let mut mask = 0u64;
        for (w, &a) in addrs.iter().enumerate() {
            mask |= ((a == line) as u64) << w;
        }
        mask &= self.valid[set];
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros() as usize)
        }
    }

    /// Checks for presence without touching replacement state or counters —
    /// the primitive a QBS query uses.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks `line` up as a demand access, updating replacement state and
    /// counters. Returns `true` on a hit.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.lookup(line, true)
    }

    /// Looks `line` up as a prefetch access (counted separately). Returns
    /// `true` on a hit.
    pub fn touch_prefetch(&mut self, line: LineAddr) -> bool {
        self.lookup(line, false)
    }

    fn lookup(&mut self, line: LineAddr, demand: bool) -> bool {
        let set = self.set_of(line);
        let hit_way = self.find(line);
        if demand {
            self.stats.demand_accesses += 1;
        } else {
            self.stats.prefetch_accesses += 1;
        }
        match hit_way {
            Some(way) => {
                let base = set * self.ways;
                self.replacer.on_hit(
                    set,
                    self.valid[set],
                    &mut self.repl[base..base + self.ways],
                    way,
                );
                true
            }
            None => {
                if demand {
                    self.stats.demand_misses += 1;
                } else {
                    self.stats.prefetch_misses += 1;
                }
                self.replacer.on_miss(set);
                false
            }
        }
    }

    /// Promotes `line` toward MRU if present (a TLH or QBS replacement-state
    /// update). Returns `true` if the line was present.
    pub fn promote(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                let base = set * self.ways;
                self.replacer.promote(
                    set,
                    self.valid[set],
                    &mut self.repl[base..base + self.ways],
                    way,
                );
                true
            }
            None => false,
        }
    }

    /// Marks `line` dirty if present. Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.dirty[set] |= 1u64 << way;
                true
            }
            None => false,
        }
    }

    /// Fills `line` choosing the victim with the cache's own policy
    /// (invalid ways first). Returns the displaced line, if any.
    ///
    /// The hierarchy uses this for core caches; the LLC under TLA policies
    /// uses the explicit [`SetAssocCache::victim_order_into`] path instead.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.fill_with_cores(line, dirty, CoreBitmap::EMPTY)
    }

    /// [`SetAssocCache::fill`] that also sets the LLC directory bits of the
    /// new line.
    pub fn fill_with_cores(
        &mut self,
        line: LineAddr,
        dirty: bool,
        cores: CoreBitmap,
    ) -> Option<Evicted> {
        debug_assert!(
            self.find(line).is_none(),
            "fill of already-present line {line:?}"
        );
        let set = self.set_of(line);
        let way = match self.invalid_way(set) {
            Some(w) => w,
            None => {
                let base = set * self.ways;
                self.replacer
                    .victim(set, self.valid[set], &self.repl[base..base + self.ways])
                    .expect("full set must have a victim")
            }
        };
        let evicted = self.evict_way(set, way);
        self.fill_way(set, way, line, dirty, cores);
        evicted
    }

    /// Bitmask covering all ways of a set.
    fn way_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// First invalid way of `set`, if any.
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        let inv = !self.valid[set] & self.way_mask();
        if inv == 0 {
            None
        } else {
            Some(inv.trailing_zeros() as usize)
        }
    }

    /// Valid ways of `set` in eviction-priority order (element 0 = victim,
    /// element 1 = ECI's "next LRU line", ...), with their line addresses.
    ///
    /// Allocating convenience wrapper around
    /// [`SetAssocCache::victim_order_into`]; tests use it, the hierarchy's
    /// miss path reuses a scratch buffer instead.
    pub fn victim_order(&mut self, set: usize) -> Vec<(usize, LineAddr)> {
        let mut out = Vec::new();
        self.victim_order_into(set, &mut out);
        out
    }

    /// Writes the valid ways of `set` in eviction-priority order into `out`
    /// (cleared first). With a reused buffer the call is allocation-free in
    /// steady state.
    pub fn victim_order_into(&mut self, set: usize, out: &mut Vec<(usize, LineAddr)>) {
        out.clear();
        let base = set * self.ways;
        let mut ways = std::mem::take(&mut self.way_scratch);
        self.replacer.order_into(
            set,
            self.valid[set],
            &self.repl[base..base + self.ways],
            &mut ways,
        );
        out.extend(ways.iter().map(|&w| (w, self.addrs[base + w])));
        self.way_scratch = ways;
    }

    /// The way the policy would evict next and its line address, without
    /// materializing the full order. Returns `None` if the set is empty.
    pub fn victim_way(&mut self, set: usize) -> Option<(usize, LineAddr)> {
        let base = set * self.ways;
        let w = self
            .replacer
            .victim(set, self.valid[set], &self.repl[base..base + self.ways])?;
        Some((w, self.addrs[base + w]))
    }

    /// Evicts the line in (`set`, `way`) if valid, returning it. Updates
    /// eviction/writeback counters and lets the policy age the set.
    pub fn evict_way(&mut self, set: usize, way: usize) -> Option<Evicted> {
        let bit = 1u64 << way;
        if self.valid[set] & bit == 0 {
            return None;
        }
        let base = set * self.ways;
        self.replacer.on_evict(
            set,
            self.valid[set],
            &mut self.repl[base..base + self.ways],
            way,
        );
        let idx = base + way;
        let dirty = self.dirty[set] & bit != 0;
        let ev = Evicted {
            addr: self.addrs[idx],
            dirty,
            cores: self.cores[idx],
        };
        self.valid[set] &= !bit;
        self.dirty[set] &= !bit;
        self.tag[set] &= !bit;
        self.repl[idx] = 0;
        self.cores[idx] = CoreBitmap::EMPTY;
        self.stats.evictions += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(ev)
    }

    /// Fills `line` into an explicit (`set`, `way`) slot, which must be
    /// invalid (evict first).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the slot is still valid or the line maps elsewhere.
    pub fn fill_way(
        &mut self,
        set: usize,
        way: usize,
        line: LineAddr,
        dirty: bool,
        cores: CoreBitmap,
    ) {
        debug_assert_eq!(self.set_of(line), set, "line filled into wrong set");
        let bit = 1u64 << way;
        debug_assert!(self.valid[set] & bit == 0, "fill into occupied way");
        let base = set * self.ways;
        let idx = base + way;
        self.addrs[idx] = line;
        self.repl[idx] = 0;
        self.cores[idx] = cores;
        self.valid[set] |= bit;
        if dirty {
            self.dirty[set] |= bit;
        } else {
            self.dirty[set] &= !bit;
        }
        self.tag[set] &= !bit;
        self.stats.fills += 1;
        self.replacer.on_fill(
            set,
            self.valid[set],
            &mut self.repl[base..base + self.ways],
            way,
        );
    }

    /// Invalidates `line` if present, returning its state (dirtiness matters
    /// to the caller: back-invalidated dirty lines must be written back).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let set = self.set_of(line);
        let way = self.find(line)?;
        self.evict_way(set, way)
    }

    /// Sets the policy tag bit of `line` if present. Returns `true` if the
    /// line was present.
    pub fn set_tag(&mut self, line: LineAddr, tag: bool) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                if tag {
                    self.tag[set] |= 1u64 << way;
                } else {
                    self.tag[set] &= !(1u64 << way);
                }
                true
            }
            None => false,
        }
    }

    /// Reads and clears the policy tag bit of `line`. Returns the previous
    /// value, or `None` if the line is absent.
    pub fn take_tag(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let way = self.find(line)?;
        let bit = 1u64 << way;
        let old = self.tag[set] & bit != 0;
        self.tag[set] &= !bit;
        Some(old)
    }

    /// Adds `core` to the directory bits of `line` (LLC bookkeeping).
    /// Returns `true` if the line was present.
    pub fn add_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.cores[set * self.ways + way].insert(core);
                true
            }
            None => false,
        }
    }

    /// Clears the directory bits of `line` (after the cores were
    /// invalidated, e.g. by an ECI message). Returns `true` if the line was
    /// present.
    pub fn clear_sharers(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.cores[set * self.ways + way] = CoreBitmap::EMPTY;
                true
            }
            None => false,
        }
    }

    /// Directory bits of `line`, if present.
    pub fn sharers(&self, line: LineAddr) -> Option<CoreBitmap> {
        let set = self.set_of(line);
        self.find(line).map(|way| self.cores[set * self.ways + way])
    }

    /// Number of valid lines currently held (O(sets); for tests and
    /// reports, not the hot path).
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Iterates over all valid lines (for invariant checks in tests),
    /// assembling a by-value [`LineState`] view per line.
    pub fn iter_valid(&self) -> impl Iterator<Item = LineState> + '_ {
        self.valid.iter().enumerate().flat_map(move |(set, &v)| {
            let base = set * self.ways;
            let mut bits = v;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let w = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w)
            })
            .map(move |w| LineState {
                addr: self.addrs[base + w],
                valid: true,
                dirty: self.dirty[set] & (1u64 << w) != 0,
                cores: self.cores[base + w],
                tag: self.tag[set] & (1u64 << w) != 0,
                repl: self.repl[base + w],
            })
        })
    }
}

impl Snapshot for CacheStats {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.demand_accesses);
        w.write_u64(self.demand_misses);
        w.write_u64(self.prefetch_accesses);
        w.write_u64(self.prefetch_misses);
        w.write_u64(self.fills);
        w.write_u64(self.evictions);
        w.write_u64(self.writebacks);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.demand_accesses = r.read_u64()?;
        self.demand_misses = r.read_u64()?;
        self.prefetch_accesses = r.read_u64()?;
        self.prefetch_misses = r.read_u64()?;
        self.fills = r.read_u64()?;
        self.evictions = r.read_u64()?;
        self.writebacks = r.read_u64()?;
        Ok(())
    }
}

impl Snapshot for SetAssocCache {
    // Geometry (sets, ways, the config, the scratch buffer) is rebuilt from
    // the run configuration; only line metadata, replacement state and
    // counters travel. All slice lengths are verified against the receiving
    // geometry so a snapshot from a different cache shape is rejected.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.addrs.len() as u64);
        for a in &self.addrs {
            w.write_u64(a.raw());
        }
        w.write_u64_slice(&self.repl);
        w.write_u64(self.cores.len() as u64);
        for c in &self.cores {
            w.write_u64(c.to_raw());
        }
        w.write_u64_slice(&self.valid);
        w.write_u64_slice(&self.dirty);
        w.write_u64_slice(&self.tag);
        self.replacer.write_state(w);
        self.stats.write_state(w);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let name = self.cfg.name().to_string();
        let check = |n: usize, have: usize, what: &str| {
            if n != have {
                Err(SnapshotError::Mismatch(format!(
                    "{name} {what}: snapshot has {n} entries, this geometry has {have}"
                )))
            } else {
                Ok(())
            }
        };
        let n = r.read_usize()?;
        check(n, self.addrs.len(), "line addresses")?;
        for a in &mut self.addrs {
            *a = LineAddr::new(r.read_u64()?);
        }
        r.read_u64_slice_into(&mut self.repl, "replacement words")?;
        let n = r.read_usize()?;
        check(n, self.cores.len(), "directory bits")?;
        for c in &mut self.cores {
            *c = CoreBitmap::from_raw(r.read_u64()?);
        }
        r.read_u64_slice_into(&mut self.valid, "valid bitmaps")?;
        r.read_u64_slice_into(&mut self.dirty, "dirty bitmaps")?;
        r.read_u64_slice_into(&mut self.tag, "tag bitmaps")?;
        self.replacer.read_state(r)?;
        self.stats.read_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::Policy;

    fn small(policy: Policy, sets: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::with_sets("t", sets, ways, policy).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(Policy::Lru, 4, 2);
        let l = LineAddr::new(5);
        assert!(!c.touch(l));
        c.fill(l, false);
        assert!(c.touch(l));
        assert_eq!(c.stats().demand_accesses, 2);
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_hits(), 1);
    }

    #[test]
    fn fill_evicts_lru_line() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        c.touch(LineAddr::new(0)); // 1 is now LRU
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(!ev.dirty);
        assert!(c.probe(LineAddr::new(0)));
        assert!(c.probe(LineAddr::new(2)));
        assert!(!c.probe(LineAddr::new(1)));
    }

    #[test]
    fn dirty_line_reports_writeback() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), true);
        let ev = c.fill(LineAddr::new(1), false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn mark_dirty_after_fill() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), false);
        assert!(c.mark_dirty(LineAddr::new(0)));
        assert!(!c.mark_dirty(LineAddr::new(9)));
        let ev = c.fill(LineAddr::new(1), false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn probe_does_not_count_or_touch() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        // Probing 0 must not protect it.
        assert!(c.probe(LineAddr::new(0)));
        assert_eq!(c.stats().demand_accesses, 0);
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
    }

    #[test]
    fn promote_protects_line() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        assert!(c.promote(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(!c.promote(LineAddr::new(42)));
    }

    #[test]
    fn victim_order_matches_policy() {
        let mut c = small(Policy::Lru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        c.touch(LineAddr::new(0));
        let order = c.victim_order(0);
        let addrs: Vec<u64> = order.iter().map(|(_, a)| a.raw()).collect();
        assert_eq!(addrs, vec![1, 2, 3, 0]);
    }

    #[test]
    fn victim_order_into_reuses_buffer() {
        let mut c = small(Policy::Lru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        let mut buf = Vec::with_capacity(4);
        c.victim_order_into(0, &mut buf);
        let first: Vec<u64> = buf.iter().map(|(_, a)| a.raw()).collect();
        c.touch(LineAddr::new(0));
        c.victim_order_into(0, &mut buf);
        let second: Vec<u64> = buf.iter().map(|(_, a)| a.raw()).collect();
        assert_eq!(first, vec![0, 1, 2, 3]);
        assert_eq!(second, vec![1, 2, 3, 0]);
        assert!(buf.capacity() >= 4, "buffer survives across calls");
    }

    #[test]
    fn victim_way_matches_order_head() {
        let mut c = small(Policy::Nru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        c.touch(LineAddr::new(2));
        let order = c.victim_order(0);
        assert_eq!(c.victim_way(0), order.first().copied());
        // Empty set has no victim.
        let mut e = small(Policy::Nru, 1, 2);
        assert_eq!(e.victim_way(0), None);
    }

    #[test]
    fn explicit_evict_fill_roundtrip() {
        let mut c = small(Policy::Nru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), true);
        let set = c.set_of(LineAddr::new(1));
        let order = c.victim_order(set);
        let (way, addr) = order[0];
        let ev = c.evict_way(set, way).unwrap();
        assert_eq!(ev.addr, addr);
        c.fill_way(set, way, LineAddr::new(3), false, CoreBitmap::EMPTY);
        assert!(c.probe(LineAddr::new(3)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_returns_state() {
        let mut c = small(Policy::Lru, 2, 2);
        c.fill(LineAddr::new(4), true);
        let ev = c.invalidate(LineAddr::new(4)).unwrap();
        assert!(ev.dirty);
        assert!(c.invalidate(LineAddr::new(4)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sharer_tracking() {
        let mut c = small(Policy::Nru, 1, 2);
        let l = LineAddr::new(0);
        c.fill_with_cores(l, false, CoreBitmap::single(CoreId::new(0)));
        assert!(c.add_sharer(l, CoreId::new(1)));
        let s = c.sharers(l).unwrap();
        assert!(s.contains(CoreId::new(0)) && s.contains(CoreId::new(1)));
        assert!(!c.add_sharer(LineAddr::new(99), CoreId::new(0)));
        assert!(c.sharers(LineAddr::new(99)).is_none());
        // Eviction carries the bits out.
        c.fill(LineAddr::new(2), false);
        let ev = c.fill(LineAddr::new(4), false).unwrap();
        assert!(!ev.cores.is_empty() || ev.addr != l || c.probe(l));
    }

    #[test]
    fn tag_bit_set_and_take() {
        let mut c = small(Policy::Lru, 1, 2);
        let l = LineAddr::new(0);
        assert!(!c.set_tag(l, true), "absent line cannot be tagged");
        c.fill(l, false);
        assert!(c.set_tag(l, true));
        assert_eq!(c.take_tag(l), Some(true));
        assert_eq!(c.take_tag(l), Some(false), "take clears the bit");
        assert_eq!(c.take_tag(LineAddr::new(9)), None);
    }

    #[test]
    fn tag_bit_cleared_by_refill() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), false);
        c.set_tag(LineAddr::new(0), true);
        c.fill(LineAddr::new(1), false); // evicts 0
        c.fill(LineAddr::new(0), false); // wait: set full; evicts 1
        assert_eq!(c.take_tag(LineAddr::new(0)), Some(false));
    }

    #[test]
    fn clear_sharers_empties_directory() {
        let mut c = small(Policy::Nru, 1, 2);
        let l = LineAddr::new(0);
        c.fill_with_cores(l, false, CoreBitmap::single(CoreId::new(3)));
        assert!(!c.sharers(l).unwrap().is_empty());
        assert!(c.clear_sharers(l));
        assert!(c.sharers(l).unwrap().is_empty());
        assert!(!c.clear_sharers(LineAddr::new(9)));
    }

    #[test]
    fn prefetch_counted_separately() {
        let mut c = small(Policy::Lru, 1, 2);
        assert!(!c.touch_prefetch(LineAddr::new(0)));
        c.fill(LineAddr::new(0), false);
        assert!(c.touch_prefetch(LineAddr::new(0)));
        assert_eq!(c.stats().prefetch_accesses, 2);
        assert_eq!(c.stats().prefetch_misses, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.touch(LineAddr::new(0));
        c.reset_stats();
        assert_eq!(c.stats().demand_accesses, 0);
        assert!(c.probe(LineAddr::new(0)));
    }

    #[test]
    fn lines_map_to_correct_sets() {
        let mut c = small(Policy::Lru, 4, 2);
        for i in 0..8u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 8);
        for l in c.iter_valid() {
            assert_eq!(c.set_of(l.addr), (l.addr.raw() % 4) as usize);
        }
    }

    #[test]
    fn sixty_four_way_set_works() {
        // The bitmap layout's edge case: a full 64-way set (way 63's bit is
        // the sign bit; `way_mask` must not overflow).
        let mut c = small(Policy::Lru, 1, 64);
        for i in 0..64u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 64);
        assert_eq!(c.invalid_way(0), None);
        assert!(c.probe(LineAddr::new(63)));
        let ev = c.fill(LineAddr::new(64), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
        assert!(c.probe(LineAddr::new(64)));
    }
}
