//! The set-associative cache structure.

use crate::config::{CacheConfig, MAX_WAYS};
use crate::line::{CoreBitmap, LineState};
use crate::probe::{self, ProbeKernel, WayMask};
use crate::replacement::Replacer;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{CoreId, LineAddr};

/// A line displaced from a cache by a fill or an explicit eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Address of the displaced line.
    pub addr: LineAddr,
    /// Whether it was dirty (needs a write-back to the next level).
    pub dirty: bool,
    /// Directory bits the line carried (meaningful for the LLC).
    pub cores: CoreBitmap,
}

/// Hit/miss counters for one cache, split by demand vs. prefetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (ifetch/load/store).
    pub demand_accesses: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Prefetch lookups.
    pub prefetch_accesses: u64,
    /// Prefetch lookups that missed.
    pub prefetch_misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Valid lines displaced (by fills or invalidations).
    pub evictions: u64,
    /// Displaced lines that were dirty.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand hit count.
    pub fn demand_hits(&self) -> u64 {
        self.demand_accesses - self.demand_misses
    }
}

/// Below this associativity `find` keeps an inlined portable scan instead of
/// an indirect call through the dispatched kernel: the L1s (4-way) and L2
/// (8-way) probe sets too small for the call overhead to pay off, while the
/// LLC (16-way) and the high-associativity victim experiments go through
/// the SIMD kernel.
const INLINE_PROBE_WAYS: usize = 8;

/// A set-associative cache holding line metadata only (the simulator is
/// trace-driven; no data payloads are modelled).
///
/// Line metadata is stored struct-of-arrays: the single-bit fields (valid,
/// dirty, policy tag) live in one multi-word [`WayMask`] bitmap per set —
/// bit `w` describes way `w` — while addresses, replacement words and
/// directory bits are flat per-way arrays. Presence scans (`find`,
/// [`SetAssocCache::probe`], the QBS residency queries) compare the dense
/// per-set address array against the needle with the process-wide
/// [`probe::probe_kernel`] (AVX2 on capable x86-64, a 4-lane scalar kernel
/// elsewhere) and mask by validity; clearing a way is a handful of
/// bit-ands. The layout caps associativity at
/// [`MAX_WAYS`](crate::config::MAX_WAYS) = 256, which
/// [`CacheConfig`](crate::config::CacheConfig) enforces.
///
/// Replacement bookkeeping is delegated to a [`Replacer`]; the hierarchy
/// layer drives inclusion, back-invalidation and the TLA policies through
/// the explicit [`SetAssocCache::victim_order_into`] /
/// [`SetAssocCache::evict_way`] / [`SetAssocCache::fill_way`] API, while
/// simple uses go through [`SetAssocCache::touch`] and
/// [`SetAssocCache::fill`].
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// Cached `cfg.ways()` (hot-path stride).
    ways: usize,
    /// Line address per way slot (meaningful only when the valid bit is
    /// set); indexed `set * ways + way`.
    addrs: Vec<LineAddr>,
    /// Replacement-policy word per way slot.
    repl: Vec<u64>,
    /// Directory bits per way slot (LLC only).
    cores: Vec<CoreBitmap>,
    /// Valid bitmap, one mask per set.
    valid: Vec<WayMask>,
    /// Dirty bitmap, one mask per set.
    dirty: Vec<WayMask>,
    /// Policy-tag bitmap, one mask per set (ECI's early-invalidate mark).
    tag: Vec<WayMask>,
    /// Probe kernel selected once per process (see [`probe::probe_kernel`]).
    kernel: &'static ProbeKernel,
    /// Bits `0..ways` set — the mask of ways that exist.
    full_mask: WayMask,
    replacer: Replacer,
    /// Reusable way-index buffer so [`SetAssocCache::victim_order_into`]
    /// allocates nothing in steady state.
    way_scratch: Vec<usize>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with deterministic replacement seeded from the
    /// cache name.
    pub fn new(cfg: CacheConfig) -> Self {
        let seed = cfg.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        Self::with_seed(cfg, seed)
    }

    /// Creates an empty cache with an explicit replacement seed (only the
    /// Random policy consumes it).
    pub fn with_seed(cfg: CacheConfig, seed: u64) -> Self {
        let ways = cfg.ways();
        debug_assert!(
            ways <= MAX_WAYS,
            "{}: {ways} ways exceeds MAX_WAYS = {MAX_WAYS} (CacheConfig should have rejected this)",
            cfg.name()
        );
        let replacer = Replacer::new(cfg.policy(), cfg.sets(), ways, seed);
        let slots = cfg.sets() * ways;
        SetAssocCache {
            ways,
            addrs: vec![LineAddr::new(0); slots],
            repl: vec![0; slots],
            cores: vec![CoreBitmap::EMPTY; slots],
            valid: vec![WayMask::EMPTY; cfg.sets()],
            dirty: vec![WayMask::EMPTY; cfg.sets()],
            tag: vec![WayMask::EMPTY; cfg.sets()],
            kernel: probe::probe_kernel(),
            full_mask: WayMask::all(ways),
            replacer,
            way_scratch: Vec::with_capacity(ways),
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the hit/miss counters (cache contents are kept). Used when
    /// freezing per-thread statistics after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The set index `line` maps to.
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.cfg.set_of(line)
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.ways;
        // Tag match through the probe kernel: a way bitmask of address
        // matches over the dense address array, then masked by validity.
        // Invalid slots may hold stale addresses, so the valid mask is what
        // makes a match real.
        let addrs = &self.addrs[base..base + self.ways];
        let mask = if self.ways <= INLINE_PROBE_WAYS {
            probe::probe_portable(addrs, line)
        } else {
            (self.kernel.func)(addrs, line)
        };
        mask.and(&self.valid[set]).first()
    }

    /// Checks for presence without touching replacement state or counters —
    /// the primitive a QBS query uses.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks `line` up as a demand access, updating replacement state and
    /// counters. Returns `true` on a hit.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.lookup(line, true)
    }

    /// Looks `line` up as a prefetch access (counted separately). Returns
    /// `true` on a hit.
    pub fn touch_prefetch(&mut self, line: LineAddr) -> bool {
        self.lookup(line, false)
    }

    fn lookup(&mut self, line: LineAddr, demand: bool) -> bool {
        let set = self.set_of(line);
        let hit_way = self.find(line);
        if demand {
            self.stats.demand_accesses += 1;
        } else {
            self.stats.prefetch_accesses += 1;
        }
        match hit_way {
            Some(way) => {
                let base = set * self.ways;
                self.replacer.on_hit(
                    set,
                    self.valid[set],
                    &mut self.repl[base..base + self.ways],
                    way,
                );
                true
            }
            None => {
                if demand {
                    self.stats.demand_misses += 1;
                } else {
                    self.stats.prefetch_misses += 1;
                }
                self.replacer.on_miss(set);
                false
            }
        }
    }

    /// Promotes `line` toward MRU if present (a TLH or QBS replacement-state
    /// update). Returns `true` if the line was present.
    pub fn promote(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                let base = set * self.ways;
                self.replacer.promote(
                    set,
                    self.valid[set],
                    &mut self.repl[base..base + self.ways],
                    way,
                );
                true
            }
            None => false,
        }
    }

    /// Marks `line` dirty if present. Returns `true` if the line was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.dirty[set].set(way);
                true
            }
            None => false,
        }
    }

    /// Fills `line` choosing the victim with the cache's own policy
    /// (invalid ways first). Returns the displaced line, if any.
    ///
    /// The hierarchy uses this for core caches; the LLC under TLA policies
    /// uses the explicit [`SetAssocCache::victim_order_into`] path instead.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.fill_with_cores(line, dirty, CoreBitmap::EMPTY)
    }

    /// [`SetAssocCache::fill`] that also sets the LLC directory bits of the
    /// new line.
    pub fn fill_with_cores(
        &mut self,
        line: LineAddr,
        dirty: bool,
        cores: CoreBitmap,
    ) -> Option<Evicted> {
        debug_assert!(
            self.find(line).is_none(),
            "fill of already-present line {line:?}"
        );
        let set = self.set_of(line);
        let way = match self.invalid_way(set) {
            Some(w) => w,
            None => {
                let base = set * self.ways;
                self.replacer
                    .victim(set, self.valid[set], &self.repl[base..base + self.ways])
                    .expect("full set must have a victim")
            }
        };
        let evicted = self.evict_way(set, way);
        self.fill_way(set, way, line, dirty, cores);
        evicted
    }

    /// First invalid way of `set`, if any.
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        self.full_mask.and_not(&self.valid[set]).first()
    }

    /// First invalid way of `set` within `allowed`, if any.
    ///
    /// The way-partitioned variant of [`SetAssocCache::invalid_way`]:
    /// DDIO-style injection limits constrain device fills to a subset of
    /// ways, and the partitioned app path avoids the device ways in turn.
    pub fn invalid_way_in(&self, set: usize, allowed: &WayMask) -> Option<usize> {
        self.full_mask
            .and(allowed)
            .and_not(&self.valid[set])
            .first()
    }

    /// Valid ways of `set` in eviction-priority order (element 0 = victim,
    /// element 1 = ECI's "next LRU line", ...), with their line addresses.
    ///
    /// Allocating convenience wrapper around
    /// [`SetAssocCache::victim_order_into`]; tests use it, the hierarchy's
    /// miss path reuses a scratch buffer instead.
    pub fn victim_order(&mut self, set: usize) -> Vec<(usize, LineAddr)> {
        let mut out = Vec::new();
        self.victim_order_into(set, &mut out);
        out
    }

    /// Writes the valid ways of `set` in eviction-priority order into `out`
    /// (cleared first). With a reused buffer the call is allocation-free in
    /// steady state.
    pub fn victim_order_into(&mut self, set: usize, out: &mut Vec<(usize, LineAddr)>) {
        out.clear();
        let base = set * self.ways;
        let mut ways = std::mem::take(&mut self.way_scratch);
        self.replacer.order_into(
            set,
            self.valid[set],
            &self.repl[base..base + self.ways],
            &mut ways,
        );
        out.extend(ways.iter().map(|&w| (w, self.addrs[base + w])));
        self.way_scratch = ways;
    }

    /// [`SetAssocCache::victim_order_into`] restricted to the ways in
    /// `allowed`: the policy ranks only the permitted valid ways, so every
    /// candidate a partitioned caller walks (QBS, ECI next-target) stays
    /// inside its partition.
    pub fn victim_order_in_into(
        &mut self,
        set: usize,
        allowed: &WayMask,
        out: &mut Vec<(usize, LineAddr)>,
    ) {
        out.clear();
        let base = set * self.ways;
        let mut ways = std::mem::take(&mut self.way_scratch);
        self.replacer.order_into(
            set,
            self.valid[set].and(allowed),
            &self.repl[base..base + self.ways],
            &mut ways,
        );
        out.extend(ways.iter().map(|&w| (w, self.addrs[base + w])));
        self.way_scratch = ways;
    }

    /// The way the policy would evict next and its line address, without
    /// materializing the full order. Returns `None` if the set is empty.
    pub fn victim_way(&mut self, set: usize) -> Option<(usize, LineAddr)> {
        let base = set * self.ways;
        let w = self
            .replacer
            .victim(set, self.valid[set], &self.repl[base..base + self.ways])?;
        Some((w, self.addrs[base + w]))
    }

    /// [`SetAssocCache::victim_way`] restricted to the ways in `allowed`.
    /// Returns `None` if no permitted way holds a valid line.
    pub fn victim_way_in(&mut self, set: usize, allowed: &WayMask) -> Option<(usize, LineAddr)> {
        let base = set * self.ways;
        let w = self.replacer.victim(
            set,
            self.valid[set].and(allowed),
            &self.repl[base..base + self.ways],
        )?;
        Some((w, self.addrs[base + w]))
    }

    /// Evicts the line in (`set`, `way`) if valid, returning it. Updates
    /// eviction/writeback counters and lets the policy age the set.
    pub fn evict_way(&mut self, set: usize, way: usize) -> Option<Evicted> {
        if !self.valid[set].contains(way) {
            return None;
        }
        let base = set * self.ways;
        self.replacer.on_evict(
            set,
            self.valid[set],
            &mut self.repl[base..base + self.ways],
            way,
        );
        let idx = base + way;
        let dirty = self.dirty[set].contains(way);
        let ev = Evicted {
            addr: self.addrs[idx],
            dirty,
            cores: self.cores[idx],
        };
        self.valid[set].clear(way);
        self.dirty[set].clear(way);
        self.tag[set].clear(way);
        self.repl[idx] = 0;
        self.cores[idx] = CoreBitmap::EMPTY;
        self.stats.evictions += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(ev)
    }

    /// Fills `line` into an explicit (`set`, `way`) slot, which must be
    /// invalid (evict first).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the slot is still valid or the line maps elsewhere.
    pub fn fill_way(
        &mut self,
        set: usize,
        way: usize,
        line: LineAddr,
        dirty: bool,
        cores: CoreBitmap,
    ) {
        debug_assert_eq!(self.set_of(line), set, "line filled into wrong set");
        debug_assert!(!self.valid[set].contains(way), "fill into occupied way");
        let base = set * self.ways;
        let idx = base + way;
        self.addrs[idx] = line;
        self.repl[idx] = 0;
        self.cores[idx] = cores;
        self.valid[set].set(way);
        if dirty {
            self.dirty[set].set(way);
        } else {
            self.dirty[set].clear(way);
        }
        self.tag[set].clear(way);
        self.stats.fills += 1;
        self.replacer.on_fill(
            set,
            self.valid[set],
            &mut self.repl[base..base + self.ways],
            way,
        );
    }

    /// Invalidates `line` if present, returning its state (dirtiness matters
    /// to the caller: back-invalidated dirty lines must be written back).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let set = self.set_of(line);
        let way = self.find(line)?;
        self.evict_way(set, way)
    }

    /// Sets the policy tag bit of `line` if present. Returns `true` if the
    /// line was present.
    pub fn set_tag(&mut self, line: LineAddr, tag: bool) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                if tag {
                    self.tag[set].set(way);
                } else {
                    self.tag[set].clear(way);
                }
                true
            }
            None => false,
        }
    }

    /// Reads and clears the policy tag bit of `line`. Returns the previous
    /// value, or `None` if the line is absent.
    pub fn take_tag(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let way = self.find(line)?;
        let old = self.tag[set].contains(way);
        self.tag[set].clear(way);
        Some(old)
    }

    /// Adds `core` to the directory bits of `line` (LLC bookkeeping).
    /// Returns `true` if the line was present.
    pub fn add_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.cores[set * self.ways + way].insert(core);
                true
            }
            None => false,
        }
    }

    /// Clears the directory bits of `line` (after the cores were
    /// invalidated, e.g. by an ECI message). Returns `true` if the line was
    /// present.
    pub fn clear_sharers(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.cores[set * self.ways + way] = CoreBitmap::EMPTY;
                true
            }
            None => false,
        }
    }

    /// Directory bits of `line`, if present.
    pub fn sharers(&self, line: LineAddr) -> Option<CoreBitmap> {
        let set = self.set_of(line);
        self.find(line).map(|way| self.cores[set * self.ways + way])
    }

    /// The directory word of `line` read back as a raw 64-bit value.
    ///
    /// The simulator's LLC uses the per-way [`CoreBitmap`] as sharer bits;
    /// a cache that is *not* a coherence directory (the `tla-kv` service)
    /// is free to treat the same word as an opaque value payload instead —
    /// [`SetAssocCache::fill_with_cores`] with `CoreBitmap::from_raw(v)`
    /// stores it, this reads it, and evictions carry it out in
    /// [`Evicted::cores`]. The two uses never mix within one cache.
    pub fn payload(&self, line: LineAddr) -> Option<u64> {
        self.sharers(line).map(CoreBitmap::to_raw)
    }

    /// Overwrites the directory word of `line` with a raw 64-bit value
    /// (the in-place update half of the payload view described on
    /// [`SetAssocCache::payload`]). Returns `true` if the line was present.
    pub fn set_payload(&mut self, line: LineAddr, value: u64) -> bool {
        let set = self.set_of(line);
        match self.find(line) {
            Some(way) => {
                self.cores[set * self.ways + way] = CoreBitmap::from_raw(value);
                true
            }
            None => false,
        }
    }

    /// Number of valid lines currently held (O(sets); for tests and
    /// reports, not the hot path).
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(WayMask::count).sum()
    }

    /// Name of the probe kernel this cache scans with (for reports).
    pub fn probe_kernel_name(&self) -> &'static str {
        self.kernel.name
    }

    /// Iterates over all valid lines (for invariant checks in tests),
    /// assembling a by-value [`LineState`] view per line.
    pub fn iter_valid(&self) -> impl Iterator<Item = LineState> + '_ {
        self.valid.iter().enumerate().flat_map(move |(set, v)| {
            let base = set * self.ways;
            v.iter().map(move |w| LineState {
                addr: self.addrs[base + w],
                valid: true,
                dirty: self.dirty[set].contains(w),
                cores: self.cores[base + w],
                tag: self.tag[set].contains(w),
                repl: self.repl[base + w],
            })
        })
    }
}

impl Snapshot for CacheStats {
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.demand_accesses);
        w.write_u64(self.demand_misses);
        w.write_u64(self.prefetch_accesses);
        w.write_u64(self.prefetch_misses);
        w.write_u64(self.fills);
        w.write_u64(self.evictions);
        w.write_u64(self.writebacks);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.demand_accesses = r.read_u64()?;
        self.demand_misses = r.read_u64()?;
        self.prefetch_accesses = r.read_u64()?;
        self.prefetch_misses = r.read_u64()?;
        self.fills = r.read_u64()?;
        self.evictions = r.read_u64()?;
        self.writebacks = r.read_u64()?;
        Ok(())
    }
}

/// Serializes per-set [`WayMask`]es as a plain `u64` slice holding only the
/// words a given associativity needs (`ways.div_ceil(64)` per set). For up
/// to 64 ways this is byte-identical to the pre-multi-word format (one word
/// per set), so old single-word TLAS images still load and narrow caches
/// produce unchanged checkpoints.
fn write_mask_slice(w: &mut SnapshotWriter, masks: &[WayMask], words_per_set: usize) {
    w.write_u64((masks.len() * words_per_set) as u64);
    for m in masks {
        for &word in &m.words()[..words_per_set] {
            w.write_u64(word);
        }
    }
}

fn read_mask_slice(
    r: &mut SnapshotReader,
    masks: &mut [WayMask],
    words_per_set: usize,
    name: &str,
    what: &str,
) -> Result<(), SnapshotError> {
    let n = r.read_usize()?;
    let have = masks.len() * words_per_set;
    if n != have {
        return Err(SnapshotError::Mismatch(format!(
            "{name} {what}: snapshot has {n} words, this geometry has {have}"
        )));
    }
    for m in masks {
        let words = m.words_mut();
        *words = [0; probe::WAY_WORDS];
        for word in words[..words_per_set].iter_mut() {
            *word = r.read_u64()?;
        }
    }
    Ok(())
}

impl Snapshot for SetAssocCache {
    // Geometry (sets, ways, the config, the scratch buffer, the probe
    // kernel) is rebuilt from the run configuration; only line metadata,
    // replacement state and counters travel. All slice lengths are verified
    // against the receiving geometry so a snapshot from a different cache
    // shape is rejected. Bitmaps serialize `ways.div_ceil(64)` words per
    // set, keeping narrow caches byte-compatible with single-word images.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.addrs.len() as u64);
        for a in &self.addrs {
            w.write_u64(a.raw());
        }
        w.write_u64_slice(&self.repl);
        w.write_u64(self.cores.len() as u64);
        for c in &self.cores {
            w.write_u64(c.to_raw());
        }
        let words_per_set = self.ways.div_ceil(64);
        write_mask_slice(w, &self.valid, words_per_set);
        write_mask_slice(w, &self.dirty, words_per_set);
        write_mask_slice(w, &self.tag, words_per_set);
        self.replacer.write_state(w);
        self.stats.write_state(w);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let name = self.cfg.name().to_string();
        let check = |n: usize, have: usize, what: &str| {
            if n != have {
                Err(SnapshotError::Mismatch(format!(
                    "{name} {what}: snapshot has {n} entries, this geometry has {have}"
                )))
            } else {
                Ok(())
            }
        };
        let n = r.read_usize()?;
        check(n, self.addrs.len(), "line addresses")?;
        for a in &mut self.addrs {
            *a = LineAddr::new(r.read_u64()?);
        }
        r.read_u64_slice_into(&mut self.repl, "replacement words")?;
        let n = r.read_usize()?;
        check(n, self.cores.len(), "directory bits")?;
        for c in &mut self.cores {
            *c = CoreBitmap::from_raw(r.read_u64()?);
        }
        let words_per_set = self.ways.div_ceil(64);
        read_mask_slice(r, &mut self.valid, words_per_set, &name, "valid bitmaps")?;
        read_mask_slice(r, &mut self.dirty, words_per_set, &name, "dirty bitmaps")?;
        read_mask_slice(r, &mut self.tag, words_per_set, &name, "tag bitmaps")?;
        self.replacer.read_state(r)?;
        self.stats.read_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::Policy;

    fn small(policy: Policy, sets: usize, ways: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::with_sets("t", sets, ways, policy).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(Policy::Lru, 4, 2);
        let l = LineAddr::new(5);
        assert!(!c.touch(l));
        c.fill(l, false);
        assert!(c.touch(l));
        assert_eq!(c.stats().demand_accesses, 2);
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_hits(), 1);
    }

    #[test]
    fn fill_evicts_lru_line() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        c.touch(LineAddr::new(0)); // 1 is now LRU
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(!ev.dirty);
        assert!(c.probe(LineAddr::new(0)));
        assert!(c.probe(LineAddr::new(2)));
        assert!(!c.probe(LineAddr::new(1)));
    }

    #[test]
    fn dirty_line_reports_writeback() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), true);
        let ev = c.fill(LineAddr::new(1), false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn mark_dirty_after_fill() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), false);
        assert!(c.mark_dirty(LineAddr::new(0)));
        assert!(!c.mark_dirty(LineAddr::new(9)));
        let ev = c.fill(LineAddr::new(1), false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn probe_does_not_count_or_touch() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        // Probing 0 must not protect it.
        assert!(c.probe(LineAddr::new(0)));
        assert_eq!(c.stats().demand_accesses, 0);
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
    }

    #[test]
    fn promote_protects_line() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), false);
        assert!(c.promote(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(2), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(1));
        assert!(!c.promote(LineAddr::new(42)));
    }

    #[test]
    fn victim_order_matches_policy() {
        let mut c = small(Policy::Lru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        c.touch(LineAddr::new(0));
        let order = c.victim_order(0);
        let addrs: Vec<u64> = order.iter().map(|(_, a)| a.raw()).collect();
        assert_eq!(addrs, vec![1, 2, 3, 0]);
    }

    #[test]
    fn victim_order_into_reuses_buffer() {
        let mut c = small(Policy::Lru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        let mut buf = Vec::with_capacity(4);
        c.victim_order_into(0, &mut buf);
        let first: Vec<u64> = buf.iter().map(|(_, a)| a.raw()).collect();
        c.touch(LineAddr::new(0));
        c.victim_order_into(0, &mut buf);
        let second: Vec<u64> = buf.iter().map(|(_, a)| a.raw()).collect();
        assert_eq!(first, vec![0, 1, 2, 3]);
        assert_eq!(second, vec![1, 2, 3, 0]);
        assert!(buf.capacity() >= 4, "buffer survives across calls");
    }

    #[test]
    fn victim_way_matches_order_head() {
        let mut c = small(Policy::Nru, 1, 4);
        for i in 0..4 {
            c.fill(LineAddr::new(i), false);
        }
        c.touch(LineAddr::new(2));
        let order = c.victim_order(0);
        assert_eq!(c.victim_way(0), order.first().copied());
        // Empty set has no victim.
        let mut e = small(Policy::Nru, 1, 2);
        assert_eq!(e.victim_way(0), None);
    }

    #[test]
    fn explicit_evict_fill_roundtrip() {
        let mut c = small(Policy::Nru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(1), true);
        let set = c.set_of(LineAddr::new(1));
        let order = c.victim_order(set);
        let (way, addr) = order[0];
        let ev = c.evict_way(set, way).unwrap();
        assert_eq!(ev.addr, addr);
        c.fill_way(set, way, LineAddr::new(3), false, CoreBitmap::EMPTY);
        assert!(c.probe(LineAddr::new(3)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_returns_state() {
        let mut c = small(Policy::Lru, 2, 2);
        c.fill(LineAddr::new(4), true);
        let ev = c.invalidate(LineAddr::new(4)).unwrap();
        assert!(ev.dirty);
        assert!(c.invalidate(LineAddr::new(4)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn sharer_tracking() {
        let mut c = small(Policy::Nru, 1, 2);
        let l = LineAddr::new(0);
        c.fill_with_cores(l, false, CoreBitmap::single(CoreId::new(0)));
        assert!(c.add_sharer(l, CoreId::new(1)));
        let s = c.sharers(l).unwrap();
        assert!(s.contains(CoreId::new(0)) && s.contains(CoreId::new(1)));
        assert!(!c.add_sharer(LineAddr::new(99), CoreId::new(0)));
        assert!(c.sharers(LineAddr::new(99)).is_none());
        // Eviction carries the bits out.
        c.fill(LineAddr::new(2), false);
        let ev = c.fill(LineAddr::new(4), false).unwrap();
        assert!(!ev.cores.is_empty() || ev.addr != l || c.probe(l));
    }

    #[test]
    fn tag_bit_set_and_take() {
        let mut c = small(Policy::Lru, 1, 2);
        let l = LineAddr::new(0);
        assert!(!c.set_tag(l, true), "absent line cannot be tagged");
        c.fill(l, false);
        assert!(c.set_tag(l, true));
        assert_eq!(c.take_tag(l), Some(true));
        assert_eq!(c.take_tag(l), Some(false), "take clears the bit");
        assert_eq!(c.take_tag(LineAddr::new(9)), None);
    }

    #[test]
    fn tag_bit_cleared_by_refill() {
        let mut c = small(Policy::Lru, 1, 1);
        c.fill(LineAddr::new(0), false);
        c.set_tag(LineAddr::new(0), true);
        c.fill(LineAddr::new(1), false); // evicts 0
        c.fill(LineAddr::new(0), false); // wait: set full; evicts 1
        assert_eq!(c.take_tag(LineAddr::new(0)), Some(false));
    }

    #[test]
    fn clear_sharers_empties_directory() {
        let mut c = small(Policy::Nru, 1, 2);
        let l = LineAddr::new(0);
        c.fill_with_cores(l, false, CoreBitmap::single(CoreId::new(3)));
        assert!(!c.sharers(l).unwrap().is_empty());
        assert!(c.clear_sharers(l));
        assert!(c.sharers(l).unwrap().is_empty());
        assert!(!c.clear_sharers(LineAddr::new(9)));
    }

    #[test]
    fn prefetch_counted_separately() {
        let mut c = small(Policy::Lru, 1, 2);
        assert!(!c.touch_prefetch(LineAddr::new(0)));
        c.fill(LineAddr::new(0), false);
        assert!(c.touch_prefetch(LineAddr::new(0)));
        assert_eq!(c.stats().prefetch_accesses, 2);
        assert_eq!(c.stats().prefetch_misses, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(Policy::Lru, 1, 2);
        c.fill(LineAddr::new(0), false);
        c.touch(LineAddr::new(0));
        c.reset_stats();
        assert_eq!(c.stats().demand_accesses, 0);
        assert!(c.probe(LineAddr::new(0)));
    }

    #[test]
    fn lines_map_to_correct_sets() {
        let mut c = small(Policy::Lru, 4, 2);
        for i in 0..8u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 8);
        for l in c.iter_valid() {
            assert_eq!(c.set_of(l.addr), (l.addr.raw() % 4) as usize);
        }
    }

    #[test]
    fn sixty_four_way_set_works() {
        // The single-word edge case: a full 64-way set (way 63's bit is the
        // top bit of the mask's first word).
        let mut c = small(Policy::Lru, 1, 64);
        for i in 0..64u64 {
            c.fill(LineAddr::new(i), false);
        }
        assert_eq!(c.occupancy(), 64);
        assert_eq!(c.invalid_way(0), None);
        assert!(c.probe(LineAddr::new(63)));
        let ev = c.fill(LineAddr::new(64), false).unwrap();
        assert_eq!(ev.addr, LineAddr::new(0));
        assert!(c.probe(LineAddr::new(64)));
    }

    #[test]
    fn wide_way_sets_work() {
        // The multi-word cases the 256-way lift unlocks: word-boundary
        // straddlers (65), a mid-range width (128) and the full 256.
        for ways in [65usize, 128, 256] {
            let mut c = small(Policy::Lru, 1, ways);
            for i in 0..ways as u64 {
                c.fill(LineAddr::new(i), false);
            }
            assert_eq!(c.occupancy(), ways);
            assert_eq!(c.invalid_way(0), None, "{ways} ways");
            for probe_at in [0, 63, 64, ways as u64 - 1] {
                assert!(c.probe(LineAddr::new(probe_at)), "{ways} ways");
            }
            // LRU eviction across word boundaries.
            c.touch(LineAddr::new(0));
            let ev = c.fill(LineAddr::new(ways as u64), false).unwrap();
            assert_eq!(ev.addr, LineAddr::new(1), "{ways} ways");
            assert!(c.probe(LineAddr::new(0)));
            assert!(c.probe(LineAddr::new(ways as u64)));
            // Dirty/tag bits land in the right word.
            let high = LineAddr::new(ways as u64 - 1);
            assert!(c.mark_dirty(high));
            assert!(c.set_tag(high, true));
            assert_eq!(c.take_tag(high), Some(true));
            let ev = c.invalidate(high).unwrap();
            assert!(ev.dirty, "{ways} ways");
        }
    }

    #[test]
    fn wide_snapshot_roundtrip() {
        // A >64-way cache checkpoints and restores bit-exactly (multi-word
        // bitmap encode/decode), including across the invalid-way case.
        let mut c = small(Policy::Lru, 2, 128);
        for i in 0..200u64 {
            c.fill(LineAddr::new(i), i % 3 == 0);
        }
        c.mark_dirty(LineAddr::new(199));
        let mut w = SnapshotWriter::new();
        c.write_state(&mut w);
        let bytes = w.finish();
        let mut fresh = small(Policy::Lru, 2, 128);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        fresh.read_state(&mut r).unwrap();
        assert_eq!(fresh.occupancy(), c.occupancy());
        let a: Vec<LineState> = c.iter_valid().collect();
        let b: Vec<LineState> = fresh.iter_valid().collect();
        assert_eq!(a, b);
        // And the restored cache serializes to identical bytes.
        let mut w2 = SnapshotWriter::new();
        fresh.write_state(&mut w2);
        assert_eq!(bytes, w2.finish());
    }

    #[test]
    fn narrow_snapshot_matches_single_word_layout() {
        // For <= 64 ways the bitmap encoding must stay one word per set so
        // pre-multi-word images keep loading: check the valid bitmap words
        // appear verbatim (single-word stride) in the byte stream.
        let mut c = small(Policy::Lru, 2, 4);
        for i in 0..6u64 {
            c.fill(LineAddr::new(i), false);
        }
        let mut w = SnapshotWriter::new();
        c.write_state(&mut w);
        let bytes = w.finish();
        // Expected prefix of the valid-bitmap block: len = 2 (sets * 1
        // word), then the two packed words. Set 0 holds lines 0,2,4 (ways
        // 0..3 partially filled): its exact pattern comes from occupancy.
        let sets_words: Vec<u8> = 2u64
            .to_le_bytes()
            .iter()
            .copied()
            .chain(
                c.valid
                    .iter()
                    .flat_map(|m| m.words()[0].to_le_bytes().to_vec()),
            )
            .collect();
        let found = bytes
            .windows(sets_words.len())
            .any(|win| win == &sets_words[..]);
        assert!(found, "single-word bitmap layout not found in stream");
    }

    #[test]
    fn probe_kernel_name_is_reported() {
        let c = small(Policy::Lru, 1, 2);
        assert_eq!(c.probe_kernel_name(), crate::probe::kernel_name());
    }
}
