//! Per-line metadata: validity, dirtiness and the LLC's core-valid
//! directory bits.

use std::fmt;
use tla_types::{CoreId, LineAddr};

/// Bitmap of cores that may hold a copy of an LLC line.
///
/// The paper models a Core i7-style directory: "a directory is maintained
/// with each LLC line to determine the cores to which a back-invalidate must
/// be sent" (§III-B footnote 1). Bits are conservative — a core may have
/// silently dropped a clean line without clearing its bit, which is exactly
/// why QBS *queries* the core caches instead of trusting the directory.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct CoreBitmap(u64);

impl CoreBitmap {
    /// The empty bitmap.
    pub const EMPTY: CoreBitmap = CoreBitmap(0);

    /// Creates a bitmap with a single core set.
    pub fn single(core: CoreId) -> Self {
        CoreBitmap(1u64 << core.index())
    }

    /// Sets the bit for `core`.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1u64 << core.index();
    }

    /// Clears the bit for `core`.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1u64 << core.index());
    }

    /// Whether the bit for `core` is set.
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1u64 << core.index()) != 0
    }

    /// Whether no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores marked as possible holders.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The raw bit pattern, for checkpointing.
    #[must_use]
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a bitmap from a raw pattern captured by
    /// [`to_raw`](CoreBitmap::to_raw).
    #[must_use]
    pub fn from_raw(bits: u64) -> Self {
        CoreBitmap(bits)
    }

    /// Iterates over the cores whose bit is set, in ascending order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(CoreId::new(idx))
            }
        })
    }
}

impl fmt::Debug for CoreBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoreBitmap({:#b})", self.0)
    }
}

impl FromIterator<CoreId> for CoreBitmap {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut bm = CoreBitmap::EMPTY;
        for c in iter {
            bm.insert(c);
        }
        bm
    }
}

/// State of one cache line slot, assembled by value.
///
/// [`SetAssocCache`](crate::SetAssocCache) stores line metadata
/// struct-of-arrays (packed per-set bitmaps plus flat per-way arrays); this
/// type is the gathered per-line view its `iter_valid` yields for tests and
/// invariant checks — it is not the storage format.
///
/// `repl` is policy-private replacement state managed by
/// [`Replacer`](crate::Replacer); callers should not interpret it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineState {
    /// Line address held by this slot (meaningful only when `valid`).
    pub addr: LineAddr,
    /// Whether the slot holds a line.
    pub valid: bool,
    /// Whether the held line is dirty (needs write-back on eviction).
    pub dirty: bool,
    /// Directory bits: cores that may hold this line (LLC only; unused in
    /// core caches).
    pub cores: CoreBitmap,
    /// One spare metadata bit for management policies (ECI uses it to mark
    /// early-invalidated lines so rescues can be counted).
    pub tag: bool,
    /// Replacement-policy private state.
    pub repl: u64,
}

impl LineState {
    /// An invalid (empty) slot.
    pub const INVALID: LineState = LineState {
        addr: LineAddr::new(0),
        valid: false,
        dirty: false,
        cores: CoreBitmap::EMPTY,
        tag: false,
        repl: 0,
    };
}

impl Default for LineState {
    fn default() -> Self {
        LineState::INVALID
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_insert_remove_contains() {
        let mut bm = CoreBitmap::EMPTY;
        assert!(bm.is_empty());
        bm.insert(CoreId::new(0));
        bm.insert(CoreId::new(5));
        assert!(bm.contains(CoreId::new(0)));
        assert!(bm.contains(CoreId::new(5)));
        assert!(!bm.contains(CoreId::new(1)));
        assert_eq!(bm.len(), 2);
        bm.remove(CoreId::new(0));
        assert!(!bm.contains(CoreId::new(0)));
        assert_eq!(bm.len(), 1);
    }

    #[test]
    fn bitmap_iter_ascending() {
        let bm: CoreBitmap = [CoreId::new(3), CoreId::new(1), CoreId::new(63)]
            .into_iter()
            .collect();
        let cores: Vec<usize> = bm.iter().map(|c| c.index()).collect();
        assert_eq!(cores, vec![1, 3, 63]);
    }

    #[test]
    fn bitmap_single() {
        let bm = CoreBitmap::single(CoreId::new(2));
        assert_eq!(bm.len(), 1);
        assert!(bm.contains(CoreId::new(2)));
    }

    #[test]
    fn invalid_line_is_default() {
        let l = LineState::default();
        assert!(!l.valid);
        assert!(!l.dirty);
        assert!(l.cores.is_empty());
    }
}
