//! Miss-status holding registers.
//!
//! The paper models interconnect bandwidth solely through contention for a
//! fixed number of MSHRs (§IV-A): a core supports 32 outstanding misses to
//! memory, and extra traffic manifests as increased latency when the pool is
//! full. [`MshrFile`] implements that as an analytic model over completion
//! timestamps — no event queue needed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::Cycle;

/// A fixed pool of miss-status holding registers tracked by completion time.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Completion times of in-flight transactions (min-heap).
    inflight: BinaryHeap<Reverse<Cycle>>,
    /// Transactions that had to wait for a free register.
    stalls: u64,
    /// Total cycles transactions spent waiting for a register.
    stall_cycles: u64,
    issued: u64,
}

impl MshrFile {
    /// Creates a pool with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be at least 1");
        MshrFile {
            capacity,
            inflight: BinaryHeap::with_capacity(capacity + 1),
            stalls: 0,
            stall_cycles: 0,
            issued: 0,
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Issues a transaction at time `now` with service time `latency`,
    /// returning its completion time. If all registers are busy at `now`,
    /// the transaction waits for the earliest in-flight completion.
    pub fn issue(&mut self, now: Cycle, latency: Cycle) -> Cycle {
        self.drain(now);
        let start = if self.inflight.len() >= self.capacity {
            let earliest = self
                .inflight
                .pop()
                .expect("full MSHR pool must have entries")
                .0;
            let start = earliest.max(now);
            self.stalls += 1;
            self.stall_cycles += start - now;
            start
        } else {
            now
        };
        let done = start + latency;
        self.inflight.push(Reverse(done));
        self.issued += 1;
        done
    }

    /// Number of transactions still in flight at `now`.
    pub fn in_flight(&mut self, now: Cycle) -> usize {
        self.drain(now);
        self.inflight.len()
    }

    /// Transactions that waited for a free register.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total cycles spent waiting for a free register.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Total transactions issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    fn drain(&mut self, now: Cycle) {
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t <= now {
                self.inflight.pop();
            } else {
                break;
            }
        }
    }
}

impl Snapshot for MshrFile {
    fn write_state(&self, w: &mut SnapshotWriter) {
        // The heap is serialized sorted ascending so byte streams are
        // independent of BinaryHeap's internal layout.
        let mut inflight: Vec<Cycle> = self.inflight.iter().map(|r| r.0).collect();
        inflight.sort_unstable();
        w.write_u64_slice(&inflight);
        w.write_u64(self.stalls);
        w.write_u64(self.stall_cycles);
        w.write_u64(self.issued);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let inflight = r.read_u64_vec()?;
        if inflight.len() > self.capacity {
            return Err(SnapshotError::Mismatch(format!(
                "MSHR pool: snapshot has {} in-flight entries, capacity is {}",
                inflight.len(),
                self.capacity
            )));
        }
        self.inflight.clear();
        self.inflight.extend(inflight.into_iter().map(Reverse));
        self.stalls = r.read_u64()?;
        self.stall_cycles = r.read_u64()?;
        self.issued = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_issue_adds_latency() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.issue(100, 150), 250);
        assert_eq!(m.in_flight(100), 1);
        assert_eq!(m.in_flight(250), 0);
    }

    #[test]
    fn full_pool_delays_to_earliest_completion() {
        let mut m = MshrFile::new(2);
        let a = m.issue(0, 100); // done 100
        let b = m.issue(10, 100); // done 110
        assert_eq!((a, b), (100, 110));
        // Pool full at t=20: must wait for t=100, then takes 100 cycles.
        let c = m.issue(20, 100);
        assert_eq!(c, 200);
        assert_eq!(m.stalls(), 1);
        assert_eq!(m.stall_cycles(), 80);
    }

    #[test]
    fn registers_free_over_time() {
        let mut m = MshrFile::new(1);
        m.issue(0, 50);
        // At t=60 the register is free again: no stall.
        assert_eq!(m.issue(60, 50), 110);
        assert_eq!(m.stalls(), 0);
    }

    #[test]
    fn serial_when_capacity_one() {
        let mut m = MshrFile::new(1);
        let mut t = 0;
        for _ in 0..5 {
            t = m.issue(0, 100);
        }
        assert_eq!(t, 500);
        assert_eq!(m.stalls(), 4);
        assert_eq!(m.issued(), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn out_of_order_now_is_tolerated() {
        // Cross-core sharing can present non-monotonic `now` values.
        let mut m = MshrFile::new(2);
        m.issue(100, 10);
        let done = m.issue(50, 10);
        assert_eq!(done, 60);
    }
}
