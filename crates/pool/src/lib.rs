//! Self-contained batch parallelism for the experiment harness.
//!
//! The workspace builds in fully offline environments, so instead of
//! depending on `rayon` this small crate provides the only piece the
//! suites need: a scoped fork/join map over a list of independent jobs,
//! built directly on [`std::thread::scope`]. Following the `tla-rng`
//! precedent it has no dependencies at all.
//!
//! Guarantees, in the order the simulator cares about them:
//!
//! * **Input order is preserved.** `scoped_map(jobs, items, f)` returns
//!   `f(items[0]), f(items[1]), …` regardless of which worker finished
//!   first — suite outputs stay row-for-row comparable with serial runs.
//! * **Determinism.** Every job is a pure function of its input (each
//!   `MixRun` carries its own seed and owns its whole simulated
//!   hierarchy), so the result vector is bit-identical for any `jobs`
//!   value; only wall-clock changes.
//! * **Panics propagate.** A panicking job does not poison or hang the
//!   batch silently: the original panic payload is re-raised on the
//!   calling thread once the scope joins.
//! * **`jobs == 1` degenerates to serial.** No threads are spawned; the
//!   jobs run inline on the caller in input order.
//!
//! # Examples
//!
//! ```
//! let squares = tla_pool::scoped_map(4, (0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::resume_unwind;
use std::sync::Mutex;

/// The machine's available parallelism (the `--jobs` default), falling
/// back to 1 when it cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves an optional job-count override against the machine default:
/// `None` (and `Some(0)`) mean "use every core".
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => available_jobs(),
    }
}

/// Applies `f` to every item on up to `jobs` worker threads, returning
/// the results in input order.
///
/// Workers pull items from a shared queue, so uneven job costs balance
/// automatically. With `jobs <= 1` (or fewer than two items) everything
/// runs inline on the caller — the degenerate case is exactly the serial
/// loop it replaces.
///
/// # Panics
///
/// Re-raises the first panic raised by `f` (by input order of the
/// workers' observations) after all workers have stopped.
pub fn scoped_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    // Hold the queue lock only while pulling the next
                    // item; a panic inside `f` can never poison it.
                    let next = queue.lock().expect("job queue poisoned").next();
                    let Some((idx, item)) = next else { break };
                    let result = f(item);
                    *slots[idx].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        // Join explicitly so the original panic payload (not a generic
        // "a scoped thread panicked") reaches the caller.
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| unreachable!("job {idx} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        // Stagger costs so completion order differs from input order.
        let out = scoped_map(4, (0u64..64).collect(), |x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0u64..64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_runs_inline_serially() {
        // Inline execution is observable: the worker closure sees the
        // caller's thread id for every item.
        let caller = std::thread::current().id();
        let ids = scoped_map(1, vec![(); 8], |()| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let ids = scoped_map(8, vec![()], |()| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = scoped_map(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items_works() {
        let out = scoped_map(64, (0u32..3).collect(), |x| x + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = scoped_map(3, (0usize..100).collect(), |x| {
            calls.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn panic_payload_propagates() {
        let err = std::panic::catch_unwind(|| {
            scoped_map(4, (0u32..16).collect(), |x| {
                if x == 5 {
                    panic!("job five exploded");
                }
                x
            })
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job five exploded"), "got: {msg}");
    }

    #[test]
    fn panic_in_serial_path_propagates_too() {
        let err = std::panic::catch_unwind(|| {
            scoped_map(1, vec![0u32], |_| -> u32 { panic!("serial boom") })
        })
        .unwrap_err();
        assert!(err
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("serial boom")));
    }

    #[test]
    fn resolve_jobs_semantics() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(None), available_jobs());
        assert_eq!(resolve_jobs(Some(0)), available_jobs());
        assert!(available_jobs() >= 1);
    }
}
