//! Key streams for the `tla-kv` cache service load generator.
//!
//! The SPEC-like traces in this crate model *addresses through a cache
//! hierarchy*; a key-value service is hammered with *keys*, whose skew is
//! what exercises a service policy. Three stream shapes cover the classic
//! service workloads:
//!
//! * **Zipf** — the heavy-tailed popularity distribution CDN/web caches
//!   see (a small hot set absorbs most requests). Sampled with Gray's
//!   rejection-inversion-free method (the CDF-inversion approximation of
//!   Jim Gray et al., "Quickly Generating Billion-Record Synthetic
//!   Databases"), O(1) per sample after an O(N) zeta precomputation.
//! * **Scan** — a sequential sweep over the whole keyspace, the
//!   backup/analytics job that destroys an LRU cache. One-shot keys.
//! * **Mix** — zipf traffic with periodic scan bursts: the scenario
//!   scan-resistant policies (S3-FIFO, Clock) exist for.
//!
//! Streams are deterministic per seed so multi-threaded load runs can be
//! replayed single-threaded for the counter/occupancy consistency checks.

use tla_rng::SmallRng;

/// The shape of a [`KeyStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KvWorkload {
    /// Zipf-distributed keys with the given skew exponent (1.0 is the
    /// usual service assumption; higher is hotter).
    Zipf {
        /// Skew exponent `s` in `p(k) ∝ 1/k^s`.
        s: f64,
    },
    /// Uniform random keys (the no-locality floor).
    Uniform,
    /// Sequential sweep over the keyspace, wrapping forever.
    Scan,
    /// Zipf traffic interrupted by scan bursts: after every `period`
    /// zipf-drawn keys, `burst` sequential one-shot keys stream through.
    Mix {
        /// Zipf keys between bursts.
        period: u64,
        /// Sequential keys per burst.
        burst: u64,
        /// Skew of the zipf phase.
        s: f64,
    },
}

impl KvWorkload {
    /// The canonical zipf service workload (`s = 1.0`).
    pub const ZIPF: KvWorkload = KvWorkload::Zipf { s: 1.0 };
    /// The canonical scan-burst mix: 512 zipf keys, then a 256-key burst.
    pub const MIX: KvWorkload = KvWorkload::Mix {
        period: 512,
        burst: 256,
        s: 1.0,
    };

    /// Parses the CLI spelling: `zipf`, `zipf:<s>`, `uniform`, `scan`,
    /// `mix`, `mix:<period>:<burst>`.
    pub fn parse(text: &str) -> Option<KvWorkload> {
        let mut parts = text.split(':');
        let head = parts.next()?;
        let rest: Vec<&str> = parts.collect();
        match (head, rest.as_slice()) {
            ("zipf", []) => Some(KvWorkload::ZIPF),
            ("zipf", [s]) => {
                let s: f64 = s.parse().ok()?;
                (s > 0.0 && s.is_finite()).then_some(KvWorkload::Zipf { s })
            }
            ("uniform", []) => Some(KvWorkload::Uniform),
            ("scan", []) => Some(KvWorkload::Scan),
            ("mix", []) => Some(KvWorkload::MIX),
            ("mix", [period, burst]) => {
                let period: u64 = period.parse().ok()?;
                let burst: u64 = burst.parse().ok()?;
                (period > 0 && burst > 0).then_some(KvWorkload::Mix {
                    period,
                    burst,
                    s: 1.0,
                })
            }
            _ => None,
        }
    }

    /// The canonical spelling [`KvWorkload::parse`] accepts back.
    pub fn name(&self) -> String {
        match self {
            KvWorkload::Zipf { s } if *s == 1.0 => "zipf".into(),
            KvWorkload::Zipf { s } => format!("zipf:{s}"),
            KvWorkload::Uniform => "uniform".into(),
            KvWorkload::Scan => "scan".into(),
            KvWorkload::Mix {
                period, burst, s, ..
            } if *s == 1.0 => format!("mix:{period}:{burst}"),
            KvWorkload::Mix { period, burst, s } => format!("mix:{period}:{burst}:{s}"),
        }
    }
}

/// A deterministic, infinite stream of keys in `0..keys` with the shape of
/// a [`KvWorkload`]. One per load-generator thread; equal seeds give equal
/// streams.
#[derive(Debug, Clone)]
pub struct KeyStream {
    workload: KvWorkload,
    keys: u64,
    rng: SmallRng,
    /// Scan cursor (plain scan and mix bursts).
    cursor: u64,
    /// Ops remaining in the current mix phase; positive counts down the
    /// zipf phase, the burst is tracked by `burst_left`.
    period_left: u64,
    burst_left: u64,
    /// Gray's method constants for the zipf phases.
    zeta: Zeta,
}

/// Precomputed constants for Gray's zipf sampler.
#[derive(Debug, Clone, Copy, Default)]
struct Zeta {
    zetan: f64,
    theta: f64,
    alpha: f64,
    eta: f64,
}

impl Zeta {
    /// O(N) harmonic precomputation; fine up to a few million keys, done
    /// once per stream.
    fn new(n: u64, theta: f64) -> Zeta {
        // Gray's inversion is defined for 0 < theta < 1 (alpha = 1/(1-s)
        // diverges at the exact harmonic case), so the requested skew is
        // clamped into that domain — `zipf` (s = 1.0) samples at 0.99,
        // the same stand-in YCSB's zipfian generator uses.
        let theta = theta.clamp(0.01, 0.99);
        let mut zetan = 0.0;
        let mut zeta2 = 0.0;
        for i in 1..=n {
            let z = 1.0 / (i as f64).powf(theta);
            zetan += z;
            if i == 2 {
                zeta2 = zetan;
            }
        }
        if n == 1 {
            zeta2 = zetan;
        }
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zeta {
            zetan,
            theta,
            alpha,
            eta,
        }
    }

    /// One zipf draw in `0..n` (rank 0 is the hottest key).
    fn sample(&self, n: u64, rng: &mut SmallRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(n - 1)
    }
}

impl KeyStream {
    /// A stream over `0..keys` (`keys >= 1`) shaped by `workload`, fully
    /// determined by `seed`.
    pub fn new(workload: KvWorkload, keys: u64, seed: u64) -> KeyStream {
        let keys = keys.max(1);
        let zeta = match workload {
            KvWorkload::Zipf { s } | KvWorkload::Mix { s, .. } => Zeta::new(keys, s),
            _ => Zeta::default(),
        };
        let period_left = match workload {
            KvWorkload::Mix { period, .. } => period,
            _ => 0,
        };
        KeyStream {
            workload,
            keys,
            rng: SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            cursor: 0,
            period_left,
            burst_left: 0,
            zeta,
        }
    }

    /// The keyspace size.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// The next key. Hot zipf ranks are scrambled over the keyspace (via a
    /// fixed multiplicative hash) so consecutive ranks do not collide into
    /// consecutive cache sets; scans are left sequential on purpose.
    pub fn next_key(&mut self) -> u64 {
        match self.workload {
            KvWorkload::Zipf { .. } => {
                let rank = self.zeta.sample(self.keys, &mut self.rng);
                self.spread(rank)
            }
            KvWorkload::Uniform => self.rng.next_u64() % self.keys,
            KvWorkload::Scan => {
                let k = self.cursor;
                self.cursor = (self.cursor + 1) % self.keys;
                k
            }
            KvWorkload::Mix { period, burst, .. } => {
                if self.period_left > 0 {
                    self.period_left -= 1;
                    if self.period_left == 0 {
                        self.burst_left = burst;
                    }
                    let rank = self.zeta.sample(self.keys, &mut self.rng);
                    self.spread(rank)
                } else {
                    let k = self.cursor;
                    self.cursor = (self.cursor + 1) % self.keys;
                    self.burst_left -= 1;
                    if self.burst_left == 0 {
                        self.period_left = period;
                    }
                    k
                }
            }
        }
    }

    /// Maps a zipf rank onto the keyspace with a fixed odd-multiplier
    /// permutation-ish spread (exact permutation when `keys` is a power of
    /// two; close enough otherwise — determinism is what matters).
    fn spread(&self, rank: u64) -> u64 {
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for text in ["zipf", "zipf:0.8", "uniform", "scan", "mix", "mix:100:50"] {
            let w = KvWorkload::parse(text).unwrap();
            assert_eq!(KvWorkload::parse(&w.name()), Some(w), "{text}");
        }
        assert_eq!(KvWorkload::parse("zipf:-1"), None);
        assert_eq!(KvWorkload::parse("mix:0:5"), None);
        assert_eq!(KvWorkload::parse("lfu"), None);
    }

    #[test]
    fn streams_are_seed_deterministic_and_in_range() {
        for w in [
            KvWorkload::ZIPF,
            KvWorkload::Uniform,
            KvWorkload::Scan,
            KvWorkload::MIX,
        ] {
            let mut a = KeyStream::new(w, 10_000, 7);
            let mut b = KeyStream::new(w, 10_000, 7);
            let mut c = KeyStream::new(w, 10_000, 8);
            let (xs, ys): (Vec<u64>, Vec<u64>) =
                (0..2_000).map(|_| (a.next_key(), b.next_key())).unzip();
            assert_eq!(xs, ys, "{w:?} must be deterministic");
            assert!(xs.iter().all(|&k| k < 10_000));
            if w != KvWorkload::Scan {
                let zs: Vec<u64> = (0..2_000).map(|_| c.next_key()).collect();
                assert_ne!(xs, zs, "{w:?} must depend on the seed");
            }
        }
    }

    #[test]
    fn zipf_is_skewed_toward_a_hot_set() {
        let mut s = KeyStream::new(KvWorkload::ZIPF, 100_000, 1);
        let draws: Vec<u64> = (0..50_000).map(|_| s.next_key()).collect();
        // The hottest single key of a zipf(1.0) over 100k keys carries
        // ~8% of the mass; uniform would give each key 0.001%.
        let mut counts = std::collections::HashMap::new();
        for &k in &draws {
            *counts.entry(k).or_insert(0u64) += 1;
        }
        let top = *counts.values().max().unwrap();
        assert!(
            top > draws.len() as u64 / 25,
            "hottest key only {top}/{} draws",
            draws.len()
        );
        // ...but the tail is still exercised.
        assert!(counts.len() > 1_000, "only {} distinct keys", counts.len());
    }

    #[test]
    fn scan_sweeps_sequentially_and_wraps() {
        let mut s = KeyStream::new(KvWorkload::Scan, 5, 3);
        let ks: Vec<u64> = (0..12).map(|_| s.next_key()).collect();
        assert_eq!(ks, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn mix_alternates_zipf_and_bursts() {
        let w = KvWorkload::Mix {
            period: 4,
            burst: 3,
            s: 1.0,
        };
        let mut s = KeyStream::new(w, 1_000, 5);
        let ks: Vec<u64> = (0..14).map(|_| s.next_key()).collect();
        // Ops 4..7 and 11..14 are the sequential bursts.
        assert_eq!(&ks[4..7], &[0, 1, 2]);
        assert_eq!(&ks[11..14], &[3, 4, 5]);
    }
}
