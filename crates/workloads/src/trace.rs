//! Streaming instruction-trace generation.

use tla_rng::SmallRng;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{AccessKind, LineAddr, LINE_BYTES};

/// Bytes per (abstract) instruction for program-counter advancement.
const INSTR_BYTES: u64 = 4;
/// Average basic-block length in instructions; one in this many
/// instructions branches to a random spot in the code footprint.
const AVG_BASIC_BLOCK: f64 = 12.0;

/// One data reference of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// The data line touched.
    pub addr: LineAddr,
    /// [`AccessKind::Load`] or [`AccessKind::Store`].
    pub kind: AccessKind,
}

/// One committed instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// The code line the instruction was fetched from.
    pub code_line: LineAddr,
    /// The data reference it performs, if any.
    pub mem: Option<MemRef>,
}

/// An infinite instruction stream.
///
/// Implementations must be deterministic for a fixed construction seed.
pub trait TraceSource {
    /// Produces the next committed instruction.
    fn next_instruction(&mut self) -> Instruction;
}

/// A reference-pattern primitive of the synthetic generator.
///
/// `stay` models sub-line spatial locality: a program walking an array of
/// 8-byte elements touches each 64 B line eight times before moving on, so
/// its line-granular miss rate is one per `stay` references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternKind {
    /// Cyclic sequential walk over `lines` lines, touching each line `stay`
    /// consecutive times: perfect spatial locality, reuse distance equal to
    /// the working set.
    Loop {
        /// Working-set size in cache lines.
        lines: u64,
        /// Consecutive references per line.
        stay: u64,
    },
    /// Uniform random references within `lines` lines (no spatial
    /// locality).
    Random {
        /// Working-set size in cache lines.
        lines: u64,
    },
    /// Infinite forward streaming with `stay` references per line: no reuse
    /// at all once a line is passed (libquantum-style).
    Stream {
        /// Consecutive references per line.
        stay: u64,
    },
    /// Pseudo-random permutation walk over `lines` lines (rounded up to a
    /// power of two): full-working-set reuse distance with no spatial
    /// locality, defeating the stream prefetcher (mcf-style pointer
    /// chasing).
    Chase {
        /// Working-set size in cache lines (rounded up to a power of two).
        lines: u64,
    },
}

#[derive(Debug, Clone)]
enum PatternState {
    Loop {
        lines: u64,
        stay: u64,
        pos: u64,
        rep: u64,
    },
    Random {
        lines: u64,
    },
    Stream {
        stay: u64,
        pos: u64,
        rep: u64,
    },
    /// Full-period LCG over 2^k lines: `pos' = (a * pos + c) mod 2^k`.
    Chase {
        mask: u64,
        pos: u64,
    },
}

impl PatternState {
    fn new(kind: &PatternKind) -> Self {
        match *kind {
            PatternKind::Loop { lines, stay } => PatternState::Loop {
                lines: lines.max(1),
                stay: stay.max(1),
                pos: 0,
                rep: 0,
            },
            PatternKind::Random { lines } => PatternState::Random {
                lines: lines.max(1),
            },
            PatternKind::Stream { stay } => PatternState::Stream {
                stay: stay.max(1),
                pos: 0,
                rep: 0,
            },
            PatternKind::Chase { lines } => PatternState::Chase {
                mask: lines.max(2).next_power_of_two() - 1,
                pos: 1,
            },
        }
    }

    fn next_line(&mut self, rng: &mut SmallRng) -> u64 {
        match self {
            PatternState::Loop {
                lines,
                stay,
                pos,
                rep,
            } => {
                let l = *pos;
                *rep += 1;
                if *rep >= *stay {
                    *rep = 0;
                    *pos = (*pos + 1) % *lines;
                }
                l
            }
            PatternState::Random { lines } => rng.gen_range(0..*lines),
            PatternState::Stream { stay, pos, rep } => {
                let l = *pos;
                *rep += 1;
                if *rep >= *stay {
                    *rep = 0;
                    *pos += 1;
                }
                l
            }
            PatternState::Chase { mask, pos } => {
                // Multiplier ≡ 5 (mod 8) and odd increment give a
                // full-period LCG modulo a power of two, i.e. a fixed
                // pseudo-random permutation cycle of the working set.
                *pos = pos
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
                    & *mask;
                *pos
            }
        }
    }
}

/// Parameters of one synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Instruction footprint in bytes (drives L1I behaviour).
    pub code_footprint_bytes: u64,
    /// Fraction of instructions that reference data memory.
    pub mem_ratio: f64,
    /// Fraction of data references that are stores.
    pub write_ratio: f64,
    /// Weighted mixture of data reference patterns.
    pub patterns: Vec<(f64, PatternKind)>,
}

impl WorkloadParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if ratios are outside `[0, 1]`, the pattern list is empty or
    /// any weight is non-positive.
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.mem_ratio),
            "mem_ratio out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_ratio),
            "write_ratio out of range"
        );
        assert!(!self.patterns.is_empty(), "need at least one pattern");
        assert!(
            self.patterns.iter().all(|(w, _)| *w > 0.0),
            "pattern weights must be positive"
        );
        assert!(
            self.code_footprint_bytes >= INSTR_BYTES,
            "empty code footprint"
        );
    }
}

/// The synthetic statistical trace generator.
///
/// Code behaviour: the program counter walks forward 4 bytes per
/// instruction and takes a branch to a uniformly random spot in the code
/// footprint on average every 12 instructions (one basic block); a footprint
/// that fits the L1I therefore always hits after warm-up, while a larger
/// footprint misses at a rate set by its size.
///
/// Data behaviour: each memory instruction draws one pattern from the
/// configured weighted mixture and takes that pattern's next line.
///
/// All addresses are offset by a per-instance base so co-running instances
/// never share lines (the paper's workloads are multiprogrammed, not
/// multithreaded).
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    /// Base line address of this instance's private data region.
    data_base: u64,
    /// Base line address of this instance's private code region.
    code_base: u64,
    code_lines: u64,
    pc_line: u64,
    /// Instruction slot within the current code line.
    pc_slot: u64,
    branch_prob: f64,
    mem_ratio: f64,
    write_ratio: f64,
    /// Cumulative weights for pattern selection, paired with states.
    patterns: Vec<(f64, PatternState)>,
    rng: SmallRng,
    generated: u64,
}

/// Address-space stride between co-running instances, in lines
/// (2^36 lines = 4 TiB of address space each: far larger than any working
/// set).
pub(crate) const INSTANCE_STRIDE_LINES: u64 = 1 << 36;
/// Offset of the code region within an instance's address space, in lines.
const CODE_REGION_OFFSET: u64 = 1 << 35;

impl SyntheticTrace {
    /// Creates a deterministic trace.
    ///
    /// * `params` — the benchmark's statistical parameters.
    /// * `instance` — address-space slot (use the core index) so co-running
    ///   traces never collide.
    /// * `seed` — RNG seed; equal seeds give identical streams.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid (see [`WorkloadParams`]).
    pub fn new(params: &WorkloadParams, instance: u64, seed: u64) -> Self {
        params.validate();
        let code_lines = (params.code_footprint_bytes / LINE_BYTES as u64).max(1);
        let mut cum = 0.0;
        let patterns = params
            .patterns
            .iter()
            .map(|(w, k)| {
                cum += w;
                (cum, PatternState::new(k))
            })
            .collect::<Vec<_>>();
        let total = cum;
        let patterns = patterns.into_iter().map(|(c, s)| (c / total, s)).collect();
        SyntheticTrace {
            data_base: instance * INSTANCE_STRIDE_LINES,
            code_base: instance * INSTANCE_STRIDE_LINES + CODE_REGION_OFFSET,
            code_lines,
            pc_line: 0,
            pc_slot: 0,
            branch_prob: 1.0 / AVG_BASIC_BLOCK,
            mem_ratio: params.mem_ratio,
            write_ratio: params.write_ratio,
            patterns,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_7EA5_0000_0000 ^ instance),
            generated: 0,
        }
    }

    /// Instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

impl PatternState {
    /// Tag byte identifying the variant on the wire.
    fn snapshot_tag(&self) -> u8 {
        match self {
            PatternState::Loop { .. } => 0,
            PatternState::Random { .. } => 1,
            PatternState::Stream { .. } => 2,
            PatternState::Chase { .. } => 3,
        }
    }
}

impl Snapshot for SyntheticTrace {
    // The statistical parameters (bases, ratios, cumulative weights, the
    // pattern shapes) are reconstructed from the workload spec; only the
    // cursors travel: PC position, per-pattern walk positions, the RNG and
    // the generated count. Pattern variant tags are checked so a snapshot
    // from a different benchmark is rejected.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.pc_line);
        w.write_u64(self.pc_slot);
        w.write_u64(self.generated);
        self.rng.write_state(w);
        w.write_u64(self.patterns.len() as u64);
        for (_, p) in &self.patterns {
            w.write_u8(p.snapshot_tag());
            match p {
                PatternState::Loop { pos, rep, .. } => {
                    w.write_u64(*pos);
                    w.write_u64(*rep);
                }
                PatternState::Random { .. } => {}
                PatternState::Stream { pos, rep, .. } => {
                    w.write_u64(*pos);
                    w.write_u64(*rep);
                }
                PatternState::Chase { pos, .. } => w.write_u64(*pos),
            }
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.pc_line = r.read_u64()?;
        self.pc_slot = r.read_u64()?;
        self.generated = r.read_u64()?;
        self.rng.read_state(r)?;
        let n = r.read_usize()?;
        if n != self.patterns.len() {
            return Err(SnapshotError::Mismatch(format!(
                "trace patterns: snapshot has {n}, this workload has {}",
                self.patterns.len()
            )));
        }
        for (_, p) in &mut self.patterns {
            let tag = r.read_u8()?;
            if tag != p.snapshot_tag() {
                return Err(SnapshotError::Mismatch(format!(
                    "trace pattern kind tag {tag} does not match this workload (expected {})",
                    p.snapshot_tag()
                )));
            }
            match p {
                PatternState::Loop { pos, rep, .. } => {
                    *pos = r.read_u64()?;
                    *rep = r.read_u64()?;
                }
                PatternState::Random { .. } => {}
                PatternState::Stream { pos, rep, .. } => {
                    *pos = r.read_u64()?;
                    *rep = r.read_u64()?;
                }
                PatternState::Chase { pos, .. } => *pos = r.read_u64()?,
            }
        }
        Ok(())
    }
}

impl TraceSource for SyntheticTrace {
    fn next_instruction(&mut self) -> Instruction {
        self.generated += 1;
        let instr_per_line = LINE_BYTES as u64 / INSTR_BYTES;

        // Advance the program counter.
        let code_line = LineAddr::new(self.code_base + self.pc_line);
        if self.rng.gen_bool(self.branch_prob) {
            self.pc_line = self.rng.gen_range(0..self.code_lines);
            self.pc_slot = self.rng.gen_range(0..instr_per_line);
        } else {
            self.pc_slot += 1;
            if self.pc_slot >= instr_per_line {
                self.pc_slot = 0;
                self.pc_line = (self.pc_line + 1) % self.code_lines;
            }
        }

        // Data reference.
        let mem = if self.rng.gen_bool(self.mem_ratio) {
            let x = self.rng.gen_f64();
            let idx = self
                .patterns
                .iter()
                .position(|(c, _)| x <= *c)
                .unwrap_or(self.patterns.len() - 1);
            let line = self.patterns[idx].1.next_line(&mut self.rng);
            let kind = if self.rng.gen_bool(self.write_ratio) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            Some(MemRef {
                addr: LineAddr::new(self.data_base + line),
                kind,
            })
        } else {
            None
        };

        Instruction { code_line, mem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_params() -> WorkloadParams {
        WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 0.4,
            write_ratio: 0.25,
            patterns: vec![
                (0.7, PatternKind::Loop { lines: 64, stay: 4 }),
                (0.3, PatternKind::Random { lines: 1024 }),
            ],
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SyntheticTrace::new(&simple_params(), 0, 7);
        let mut b = SyntheticTrace::new(&simple_params(), 0, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticTrace::new(&simple_params(), 0, 1);
        let mut b = SyntheticTrace::new(&simple_params(), 0, 2);
        let differs = (0..100).any(|_| a.next_instruction() != b.next_instruction());
        assert!(differs);
    }

    #[test]
    fn instances_use_disjoint_address_spaces() {
        let mut a = SyntheticTrace::new(&simple_params(), 0, 7);
        let mut b = SyntheticTrace::new(&simple_params(), 1, 7);
        for _ in 0..1000 {
            let ia = a.next_instruction();
            let ib = b.next_instruction();
            if let (Some(ma), Some(mb)) = (ia.mem, ib.mem) {
                assert_ne!(ma.addr, mb.addr);
            }
            assert_ne!(ia.code_line, ib.code_line);
        }
    }

    #[test]
    fn mem_ratio_is_respected() {
        let mut t = SyntheticTrace::new(&simple_params(), 0, 7);
        let n = 100_000;
        let mems = (0..n)
            .filter(|_| t.next_instruction().mem.is_some())
            .count();
        let ratio = mems as f64 / n as f64;
        assert!((ratio - 0.4).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn write_ratio_is_respected() {
        let mut t = SyntheticTrace::new(&simple_params(), 0, 7);
        let mut loads = 0u64;
        let mut stores = 0u64;
        for _ in 0..100_000 {
            if let Some(m) = t.next_instruction().mem {
                match m.kind {
                    AccessKind::Store => stores += 1,
                    AccessKind::Load => loads += 1,
                    _ => unreachable!(),
                }
            }
        }
        let wr = stores as f64 / (loads + stores) as f64;
        assert!((wr - 0.25).abs() < 0.02, "write ratio = {wr}");
    }

    #[test]
    fn loop_pattern_stays_in_working_set() {
        let params = WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 1.0,
            write_ratio: 0.0,
            patterns: vec![(1.0, PatternKind::Loop { lines: 32, stay: 1 })],
        };
        let mut t = SyntheticTrace::new(&params, 0, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(t.next_instruction().mem.unwrap().addr.raw());
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn chase_pattern_covers_power_of_two_set() {
        let params = WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 1.0,
            write_ratio: 0.0,
            patterns: vec![(1.0, PatternKind::Chase { lines: 64 })],
        };
        let mut t = SyntheticTrace::new(&params, 0, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(t.next_instruction().mem.unwrap().addr.raw());
        }
        // Full-period LCG: 64 consecutive references cover all 64 lines.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn stream_pattern_never_reuses() {
        let params = WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 1.0,
            write_ratio: 0.0,
            patterns: vec![(1.0, PatternKind::Stream { stay: 1 })],
        };
        let mut t = SyntheticTrace::new(&params, 0, 1);
        let mut last = None;
        for _ in 0..1000 {
            let a = t.next_instruction().mem.unwrap().addr.raw();
            if let Some(l) = last {
                assert_eq!(a, l + 1, "stream must be strictly sequential");
            }
            last = Some(a);
        }
    }

    #[test]
    fn code_footprint_bounds_code_lines() {
        let params = WorkloadParams {
            code_footprint_bytes: 8 * LINE_BYTES as u64,
            mem_ratio: 0.0,
            write_ratio: 0.0,
            patterns: vec![(1.0, PatternKind::Stream { stay: 1 })],
        };
        let mut t = SyntheticTrace::new(&params, 0, 1);
        let mut lines = std::collections::HashSet::new();
        for _ in 0..10_000 {
            lines.insert(t.next_instruction().code_line.raw());
        }
        assert!(lines.len() <= 8);
        assert!(lines.len() >= 7, "nearly all code lines should be touched");
    }

    #[test]
    #[should_panic(expected = "mem_ratio")]
    fn invalid_mem_ratio_panics() {
        let params = WorkloadParams {
            mem_ratio: 1.5,
            ..simple_params()
        };
        let _ = SyntheticTrace::new(&params, 0, 1);
    }

    #[test]
    #[should_panic(expected = "pattern")]
    fn empty_patterns_panic() {
        let params = WorkloadParams {
            patterns: vec![],
            ..simple_params()
        };
        let _ = SyntheticTrace::new(&params, 0, 1);
    }

    #[test]
    fn snapshot_resumes_exact_stream() {
        let params = WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 0.6,
            write_ratio: 0.3,
            patterns: vec![
                (0.4, PatternKind::Loop { lines: 64, stay: 4 }),
                (0.2, PatternKind::Random { lines: 1024 }),
                (0.2, PatternKind::Stream { stay: 2 }),
                (0.2, PatternKind::Chase { lines: 256 }),
            ],
        };
        let mut live = SyntheticTrace::new(&params, 1, 99);
        for _ in 0..5000 {
            live.next_instruction();
        }
        let mut w = tla_snapshot::SnapshotWriter::new();
        live.write_state(&mut w);
        let bytes = w.finish();

        let mut resumed = SyntheticTrace::new(&params, 1, 99);
        let mut r = tla_snapshot::SnapshotReader::new(&bytes).unwrap();
        resumed.read_state(&mut r).unwrap();
        assert_eq!(resumed.generated(), live.generated());
        for _ in 0..5000 {
            assert_eq!(resumed.next_instruction(), live.next_instruction());
        }
    }

    #[test]
    fn snapshot_rejects_different_pattern_mixture() {
        let mut a = SyntheticTrace::new(&simple_params(), 0, 1);
        let mut w = tla_snapshot::SnapshotWriter::new();
        a.next_instruction();
        a.write_state(&mut w);
        let bytes = w.finish();

        let other = WorkloadParams {
            patterns: vec![(1.0, PatternKind::Stream { stay: 1 })],
            ..simple_params()
        };
        let mut b = SyntheticTrace::new(&other, 0, 1);
        let mut r = tla_snapshot::SnapshotReader::new(&bytes).unwrap();
        let err = b.read_state(&mut r).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err:?}");
    }
}
