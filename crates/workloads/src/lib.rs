//! Synthetic SPEC CPU2006-like workloads for the TLA simulator.
//!
//! The paper drives CMP$im with PinPoint traces of 15 SPEC CPU2006
//! benchmarks, classified by where their working set fits (§IV-B):
//!
//! * **CCF** — core cache fitting (dealII, h264ref, perlbench, povray,
//!   sjeng);
//! * **LLCF** — LLC fitting (astar, bzip2, calculix, hmmer, xalancbmk);
//! * **LLCT** — LLC thrashing (gobmk, libquantum, mcf, sphinx3, wrf).
//!
//! SPEC traces cannot be redistributed, so each benchmark is modelled as a
//! seeded statistical address-stream generator ([`SyntheticTrace`]) whose
//! cache-relevant parameters — instruction footprint, data working-set
//! sizes, access-pattern mixture, memory-op density — place it in the same
//! category with a qualitatively matching L1/L2/LLC MPKI profile (Table I).
//! Inclusion victims arise from the *interaction* of working-set size with
//! cache capacity and from L1 filtering of temporal locality, both of which
//! these streams exercise exactly like real traces.
//!
//! # Examples
//!
//! ```
//! use tla_workloads::{SpecApp, TraceSource};
//!
//! // A deterministic trace of sjeng scaled to 1/8-size caches.
//! let mut trace = SpecApp::Sjeng.trace(8, /*address base*/ 0, /*seed*/ 1);
//! let instr = trace.next_instruction();
//! assert!(instr.mem.is_none() || instr.mem.is_some()); // stream is infinite
//! assert_eq!(SpecApp::ALL.len(), 15);
//! ```

mod batch;
pub mod kv;
mod mix;
mod recorded;
mod spec;
mod trace;

pub use batch::{BatchedTrace, DEFAULT_BATCH};
pub use kv::{KeyStream, KvWorkload};
pub use mix::{all_two_core_mixes, random_mixes, table2_mixes, Mix};
pub use recorded::RecordedTrace;
pub use spec::{Category, SpecApp};
pub use trace::{Instruction, MemRef, PatternKind, SyntheticTrace, TraceSource, WorkloadParams};
