//! The 15 representative SPEC CPU2006 benchmarks of Table I, modelled as
//! synthetic parameter sets.
//!
//! Working sets are expressed as fractions of the paper's baseline cache
//! sizes and scaled together with the caches, so every benchmark keeps its
//! category (CCF / LLCF / LLCT) at any simulation scale.

use crate::trace::{PatternKind, SyntheticTrace, WorkloadParams};
use std::fmt;
use tla_types::LINE_BYTES;

/// Baseline cache capacities of §IV-A, in bytes (scale 1).
const L1D_BYTES: u64 = 32 * 1024;
const L2_BYTES: u64 = 256 * 1024;
const LLC_BYTES: u64 = 2 * 1024 * 1024;

/// Workload category from §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Core cache fitting: working set fits the L1/L2.
    CoreCacheFitting,
    /// LLC fitting: bigger than the L2, benefits from the LLC.
    LlcFitting,
    /// LLC thrashing: bigger than the LLC.
    LlcThrashing,
}

impl Category {
    /// The paper's abbreviation (CCF/LLCF/LLCT).
    pub fn abbrev(self) -> &'static str {
        match self {
            Category::CoreCacheFitting => "CCF",
            Category::LlcFitting => "LLCF",
            Category::LlcThrashing => "LLCT",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// One of the 15 representative SPEC CPU2006 benchmarks (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecApp {
    /// 473.astar (LLCF).
    Astar,
    /// 401.bzip2 (LLCF).
    Bzip2,
    /// 454.calculix (LLCF).
    Calculix,
    /// 447.dealII (CCF).
    DealII,
    /// 445.gobmk (LLCT).
    Gobmk,
    /// 464.h264ref (CCF).
    H264ref,
    /// 456.hmmer (LLCF).
    Hmmer,
    /// 462.libquantum (LLCT).
    Libquantum,
    /// 429.mcf (LLCT).
    Mcf,
    /// 400.perlbench (CCF).
    Perlbench,
    /// 453.povray (CCF).
    Povray,
    /// 458.sjeng (CCF).
    Sjeng,
    /// 482.sphinx3 (LLCT).
    Sphinx3,
    /// 481.wrf (LLCT).
    Wrf,
    /// 483.xalancbmk (LLCF).
    Xalancbmk,
}

impl SpecApp {
    /// All 15 benchmarks in Table I order.
    pub const ALL: [SpecApp; 15] = [
        SpecApp::Astar,
        SpecApp::Bzip2,
        SpecApp::Calculix,
        SpecApp::DealII,
        SpecApp::Gobmk,
        SpecApp::H264ref,
        SpecApp::Hmmer,
        SpecApp::Libquantum,
        SpecApp::Mcf,
        SpecApp::Perlbench,
        SpecApp::Povray,
        SpecApp::Sjeng,
        SpecApp::Sphinx3,
        SpecApp::Wrf,
        SpecApp::Xalancbmk,
    ];

    /// The paper's three-letter abbreviation (Table I column header).
    pub fn short_name(self) -> &'static str {
        match self {
            SpecApp::Astar => "ast",
            SpecApp::Bzip2 => "bzi",
            SpecApp::Calculix => "cal",
            SpecApp::DealII => "dea",
            SpecApp::Gobmk => "gob",
            SpecApp::H264ref => "h26",
            SpecApp::Hmmer => "hmm",
            SpecApp::Libquantum => "lib",
            SpecApp::Mcf => "mcf",
            SpecApp::Perlbench => "per",
            SpecApp::Povray => "pov",
            SpecApp::Sjeng => "sje",
            SpecApp::Sphinx3 => "sph",
            SpecApp::Wrf => "wrf",
            SpecApp::Xalancbmk => "xal",
        }
    }

    /// Looks a benchmark up by its three-letter abbreviation.
    pub fn from_short_name(name: &str) -> Option<SpecApp> {
        SpecApp::ALL
            .iter()
            .copied()
            .find(|a| a.short_name() == name)
    }

    /// The working-set category (§IV-B classification).
    pub fn category(self) -> Category {
        use Category::*;
        match self {
            SpecApp::DealII
            | SpecApp::H264ref
            | SpecApp::Perlbench
            | SpecApp::Povray
            | SpecApp::Sjeng => CoreCacheFitting,
            SpecApp::Astar
            | SpecApp::Bzip2
            | SpecApp::Calculix
            | SpecApp::Hmmer
            | SpecApp::Xalancbmk => LlcFitting,
            SpecApp::Gobmk
            | SpecApp::Libquantum
            | SpecApp::Mcf
            | SpecApp::Sphinx3
            | SpecApp::Wrf => LlcThrashing,
        }
    }

    /// Synthetic parameters for caches scaled down by `scale` (1 = the
    /// paper's full-size hierarchy, 8 = the bench default).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn params(self, scale: u64) -> WorkloadParams {
        assert!(scale > 0, "scale must be at least 1");
        let line = LINE_BYTES as u64;
        // Working-set helpers in lines, as fractions of the scaled caches.
        let l1d = |f: f64| ((f * (L1D_BYTES / scale) as f64) as u64 / line).max(1);
        let l2 = |f: f64| ((f * (L2_BYTES / scale) as f64) as u64 / line).max(1);
        let llc = |f: f64| ((f * (LLC_BYTES / scale) as f64) as u64 / line).max(1);
        let code = |kb: u64| (kb * 1024 / scale).max(line);
        use PatternKind::*;

        match self {
            // ---------------- CCF ----------------
            // dealII: everything lives in the L1 (L1 0.95 / L2 0.22 MPKI).
            SpecApp::DealII => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.30,
                write_ratio: 0.30,
                patterns: vec![(
                    1.0,
                    Loop {
                        lines: l1d(0.75),
                        stay: 8,
                    },
                )],
            },
            // perlbench: tiny hot set plus a whisper of L2 traffic.
            SpecApp::Perlbench => WorkloadParams {
                code_footprint_bytes: code(16),
                mem_ratio: 0.35,
                write_ratio: 0.30,
                patterns: vec![
                    (
                        0.998,
                        Loop {
                            lines: l1d(0.5),
                            stay: 8,
                        },
                    ),
                    (0.002, Random { lines: l2(0.5) }),
                ],
            },
            // povray: streams through ~2x the L1D (L1 15 MPKI) but fits the
            // L2 comfortably (L2 0.18 MPKI).
            SpecApp::Povray => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.35,
                write_ratio: 0.20,
                patterns: vec![
                    (
                        0.70,
                        Loop {
                            lines: l2(0.55),
                            stay: 16,
                        },
                    ),
                    (
                        0.30,
                        Loop {
                            lines: l1d(0.25),
                            stay: 8,
                        },
                    ),
                ],
            },
            // h264ref: L1-missing, mostly-L2-fitting reference frames
            // (L1 11.3 / L2 1.6 / LLC 0.16 MPKI).
            SpecApp::H264ref => WorkloadParams {
                code_footprint_bytes: code(16),
                mem_ratio: 0.35,
                write_ratio: 0.25,
                patterns: vec![
                    (
                        0.55,
                        Loop {
                            lines: l2(0.40),
                            stay: 24,
                        },
                    ),
                    (
                        0.42,
                        Loop {
                            lines: l1d(0.4),
                            stay: 8,
                        },
                    ),
                    (0.03, Random { lines: l2(0.7) }),
                ],
            },
            // sjeng: excellent L1 locality (L1 0.99 MPKI) with rare
            // transposition-table probes.
            SpecApp::Sjeng => WorkloadParams {
                code_footprint_bytes: code(24),
                mem_ratio: 0.30,
                write_ratio: 0.20,
                patterns: vec![
                    (
                        0.997,
                        Loop {
                            lines: l1d(0.6),
                            stay: 8,
                        },
                    ),
                    (0.003, Random { lines: l2(0.8) }),
                ],
            },
            // ---------------- LLCF ----------------
            // astar: pointer-heavy search over about half the LLC
            // (L1 29 / L2 17 / LLC 3.2 MPKI).
            SpecApp::Astar => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.35,
                write_ratio: 0.30,
                patterns: vec![
                    (0.08, Random { lines: llc(0.95) }),
                    (
                        0.92,
                        Loop {
                            lines: l1d(1.5),
                            stay: 20,
                        },
                    ),
                ],
            },
            // bzip2: block-sorting working set slightly over the LLC
            // (LLC 7.25 of L2 17.4 MPKI: partial LLC fit).
            SpecApp::Bzip2 => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.30,
                write_ratio: 0.35,
                patterns: vec![
                    (0.06, Random { lines: llc(1.6) }),
                    (
                        0.94,
                        Loop {
                            lines: l1d(0.6),
                            stay: 8,
                        },
                    ),
                ],
            },
            // calculix: dense solver passes that fit the LLC well
            // (LLC 1.4 of L2 14 MPKI).
            SpecApp::Calculix => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.35,
                write_ratio: 0.30,
                patterns: vec![
                    (
                        0.50,
                        Loop {
                            lines: llc(0.6),
                            stay: 12,
                        },
                    ),
                    (
                        0.50,
                        Loop {
                            lines: l1d(0.5),
                            stay: 8,
                        },
                    ),
                ],
            },
            // hmmer: modest tables, most L2 misses caught by the LLC
            // (L1 4.7 / L2 2.8 / LLC 1.2 MPKI).
            SpecApp::Hmmer => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.30,
                write_ratio: 0.25,
                patterns: vec![
                    (
                        0.12,
                        Loop {
                            lines: llc(0.4),
                            stay: 16,
                        },
                    ),
                    (
                        0.88,
                        Loop {
                            lines: l1d(0.9),
                            stay: 8,
                        },
                    ),
                ],
            },
            // xalancbmk: big code footprint and scattered DOM accesses
            // (L1 27.8 / L2 3.4 / LLC 2.3 MPKI).
            SpecApp::Xalancbmk => WorkloadParams {
                code_footprint_bytes: code(32),
                mem_ratio: 0.35,
                write_ratio: 0.30,
                patterns: vec![
                    (0.012, Random { lines: llc(0.4) }),
                    (
                        0.35,
                        Loop {
                            lines: l1d(2.0),
                            stay: 8,
                        },
                    ),
                    (
                        0.638,
                        Loop {
                            lines: l1d(0.25),
                            stay: 8,
                        },
                    ),
                ],
            },
            // ---------------- LLCT ----------------
            // gobmk: game-tree scattering over 4x the LLC with good local
            // play (L1 10.6 / L2 7.9 / LLC 7.7 MPKI).
            SpecApp::Gobmk => WorkloadParams {
                code_footprint_bytes: code(32),
                mem_ratio: 0.30,
                write_ratio: 0.25,
                patterns: vec![
                    (0.03, Random { lines: llc(4.0) }),
                    (
                        0.97,
                        Loop {
                            lines: l1d(0.75),
                            stay: 8,
                        },
                    ),
                ],
            },
            // libquantum: the archetypal streamer — identical 38.8 MPKI at
            // every level.
            SpecApp::Libquantum => WorkloadParams {
                code_footprint_bytes: code(4),
                mem_ratio: 0.35,
                write_ratio: 0.15,
                patterns: vec![(1.0, Stream { stay: 9 })],
            },
            // mcf: pointer chasing over 8x the LLC (MPKI ~20 everywhere).
            SpecApp::Mcf => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.40,
                write_ratio: 0.25,
                patterns: vec![
                    (0.05, Chase { lines: llc(8.0) }),
                    (
                        0.95,
                        Loop {
                            lines: l1d(0.5),
                            stay: 8,
                        },
                    ),
                ],
            },
            // sphinx3: acoustic-model streaming with a 2x-LLC loop
            // (L1 16.5 / L2 16.2 / LLC 14 MPKI).
            SpecApp::Sphinx3 => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.35,
                write_ratio: 0.15,
                patterns: vec![
                    (0.35, Stream { stay: 12 }),
                    (
                        0.22,
                        Loop {
                            lines: llc(2.0),
                            stay: 8,
                        },
                    ),
                    (
                        0.43,
                        Loop {
                            lines: l1d(0.9),
                            stay: 8,
                        },
                    ),
                ],
            },
            // wrf: weather-grid sweeps over 3x the LLC (MPKI ~15).
            SpecApp::Wrf => WorkloadParams {
                code_footprint_bytes: code(8),
                mem_ratio: 0.35,
                write_ratio: 0.20,
                patterns: vec![
                    (0.35, Stream { stay: 10 }),
                    (
                        0.25,
                        Loop {
                            lines: llc(3.0),
                            stay: 10,
                        },
                    ),
                    (
                        0.40,
                        Loop {
                            lines: l1d(0.5),
                            stay: 8,
                        },
                    ),
                ],
            },
        }
    }

    /// Builds the deterministic synthetic trace for this benchmark.
    ///
    /// * `scale` — cache down-scaling factor (1 = full size).
    /// * `instance` — address-space slot; use the core index.
    /// * `seed` — stream seed.
    pub fn trace(self, scale: u64, instance: u64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(&self.params(scale), instance, seed ^ (self as u64) << 32)
    }
}

impl fmt::Display for SpecApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSource;

    #[test]
    fn fifteen_apps_five_per_category() {
        assert_eq!(SpecApp::ALL.len(), 15);
        for cat in [
            Category::CoreCacheFitting,
            Category::LlcFitting,
            Category::LlcThrashing,
        ] {
            let n = SpecApp::ALL.iter().filter(|a| a.category() == cat).count();
            assert_eq!(n, 5, "{cat} must have 5 apps");
        }
    }

    #[test]
    fn short_names_are_unique_and_roundtrip() {
        let mut names = std::collections::HashSet::new();
        for app in SpecApp::ALL {
            assert!(names.insert(app.short_name()));
            assert_eq!(SpecApp::from_short_name(app.short_name()), Some(app));
        }
        assert_eq!(SpecApp::from_short_name("nope"), None);
    }

    #[test]
    fn categories_match_table_ii() {
        assert_eq!(SpecApp::DealII.category(), Category::CoreCacheFitting);
        assert_eq!(SpecApp::Bzip2.category(), Category::LlcFitting);
        assert_eq!(SpecApp::Wrf.category(), Category::LlcThrashing);
        assert_eq!(SpecApp::Libquantum.category(), Category::LlcThrashing);
    }

    #[test]
    fn params_validate_at_all_scales() {
        for app in SpecApp::ALL {
            for scale in [1, 2, 4, 8] {
                let mut t = app.trace(scale, 0, 1);
                for _ in 0..100 {
                    let _ = t.next_instruction();
                }
            }
        }
    }

    #[test]
    fn scaled_working_sets_shrink() {
        // The biggest pattern working set of mcf at scale 8 must be 1/8 of
        // scale 1.
        let max_ws = |scale: u64| {
            SpecApp::Mcf
                .params(scale)
                .patterns
                .iter()
                .map(|(_, k)| match *k {
                    PatternKind::Loop { lines, .. }
                    | PatternKind::Random { lines }
                    | PatternKind::Chase { lines } => lines,
                    PatternKind::Stream { .. } => 0,
                })
                .max()
                .unwrap()
        };
        assert_eq!(max_ws(1) / 8, max_ws(8));
    }

    #[test]
    fn traces_are_deterministic_per_app() {
        for app in [SpecApp::Mcf, SpecApp::Sjeng] {
            let mut a = app.trace(8, 0, 5);
            let mut b = app.trace(8, 0, 5);
            for _ in 0..200 {
                assert_eq!(a.next_instruction(), b.next_instruction());
            }
        }
    }

    #[test]
    fn display_uses_short_name() {
        assert_eq!(SpecApp::Libquantum.to_string(), "lib");
        assert_eq!(Category::LlcThrashing.to_string(), "LLCT");
    }
}
