//! Workload mixes: the 12 showcase mixes of Table II, the full 105-pair
//! sweep, and the random many-core mixes of Figure 11.

use crate::spec::SpecApp;
use std::fmt;
use tla_rng::SmallRng;

/// A multiprogrammed workload: one benchmark per core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// Display name (`MIX_00` … for Table II, `ast+lib` style otherwise).
    pub name: String,
    /// The benchmark run on each core, in core order.
    pub apps: Vec<SpecApp>,
}

impl Mix {
    /// Creates a mix with an auto-generated `a+b+…` name.
    pub fn new(apps: Vec<SpecApp>) -> Self {
        let name = apps
            .iter()
            .map(|a| a.short_name())
            .collect::<Vec<_>>()
            .join("+");
        Mix { name, apps }
    }

    /// Creates a mix with an explicit name.
    pub fn named(name: impl Into<String>, apps: Vec<SpecApp>) -> Self {
        Mix {
            name: name.into(),
            apps,
        }
    }

    /// Number of cores this mix occupies.
    pub fn cores(&self) -> usize {
        self.apps.len()
    }

    /// The category string the paper prints for the mix (e.g. "CCF, LLCT").
    pub fn category_label(&self) -> String {
        self.apps
            .iter()
            .map(|a| a.category().abbrev())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.category_label())
    }
}

/// The 12 showcase workload mixes of Table II.
pub fn table2_mixes() -> Vec<Mix> {
    use SpecApp::*;
    [
        ("MIX_00", [Bzip2, Wrf]),
        ("MIX_01", [DealII, Povray]),
        ("MIX_02", [Calculix, Gobmk]),
        ("MIX_03", [H264ref, Perlbench]),
        ("MIX_04", [Gobmk, Mcf]),
        ("MIX_05", [H264ref, Gobmk]),
        ("MIX_06", [Hmmer, Xalancbmk]),
        ("MIX_07", [DealII, Wrf]),
        ("MIX_08", [Bzip2, Sjeng]),
        ("MIX_09", [Povray, Mcf]),
        ("MIX_10", [Libquantum, Sjeng]),
        ("MIX_11", [Astar, Povray]),
    ]
    .into_iter()
    .map(|(name, apps)| Mix::named(name, apps.to_vec()))
    .collect()
}

/// All 105 unordered pairs of the 15 benchmarks (15 choose 2), the paper's
/// full 2-core workload set.
pub fn all_two_core_mixes() -> Vec<Mix> {
    let mut mixes = Vec::with_capacity(105);
    for i in 0..SpecApp::ALL.len() {
        for j in (i + 1)..SpecApp::ALL.len() {
            mixes.push(Mix::new(vec![SpecApp::ALL[i], SpecApp::ALL[j]]));
        }
    }
    mixes
}

/// `count` random `cores`-way mixes drawn with replacement from the 15
/// benchmarks, as in §V-G ("we created 100 4-core and 8-core workloads").
/// Deterministic in `seed`.
pub fn random_mixes(cores: usize, count: usize, seed: u64) -> Vec<Mix> {
    assert!(cores >= 1, "mixes need at least one core");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D17_C0DE);
    (0..count)
        .map(|i| {
            let apps: Vec<SpecApp> = (0..cores)
                .map(|_| SpecApp::ALL[rng.gen_range(0..SpecApp::ALL.len())])
                .collect();
            Mix::named(format!("RMIX_{cores}C_{i:02}"), apps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Category;

    #[test]
    fn table2_has_twelve_mixes_with_paper_contents() {
        let mixes = table2_mixes();
        assert_eq!(mixes.len(), 12);
        // Spot-check against Table II.
        assert_eq!(mixes[0].name, "MIX_00");
        assert_eq!(mixes[0].apps, vec![SpecApp::Bzip2, SpecApp::Wrf]);
        assert_eq!(mixes[0].category_label(), "LLCF, LLCT");
        assert_eq!(mixes[10].apps, vec![SpecApp::Libquantum, SpecApp::Sjeng]);
        assert_eq!(mixes[10].category_label(), "LLCT, CCF");
        assert_eq!(mixes[11].apps, vec![SpecApp::Astar, SpecApp::Povray]);
        for m in &mixes {
            assert_eq!(m.cores(), 2);
        }
    }

    #[test]
    fn all_pairs_is_105_unique() {
        let mixes = all_two_core_mixes();
        assert_eq!(mixes.len(), 105);
        let mut seen = std::collections::HashSet::new();
        for m in &mixes {
            let mut pair = [m.apps[0], m.apps[1]];
            pair.sort();
            assert!(seen.insert(pair), "duplicate pair {:?}", pair);
        }
    }

    #[test]
    fn some_pair_mixes_cross_categories() {
        let mixes = all_two_core_mixes();
        let cross = mixes.iter().any(|m| {
            m.apps[0].category() == Category::CoreCacheFitting
                && m.apps[1].category() == Category::LlcThrashing
        });
        assert!(cross);
    }

    #[test]
    fn random_mixes_are_deterministic_and_sized() {
        let a = random_mixes(4, 100, 7);
        let b = random_mixes(4, 100, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|m| m.cores() == 4));
        let c = random_mixes(8, 100, 7);
        assert!(c.iter().all(|m| m.cores() == 8));
        assert_ne!(random_mixes(4, 10, 1), random_mixes(4, 10, 2));
    }

    #[test]
    fn mix_display_and_names() {
        let m = Mix::new(vec![SpecApp::Astar, SpecApp::Libquantum]);
        assert_eq!(m.name, "ast+lib");
        assert!(m.to_string().contains("LLCF, LLCT"));
    }
}
