//! Recorded traces: capture any [`TraceSource`] to memory or disk and
//! replay it deterministically.
//!
//! CMP$im consumes Pin-captured trace files; this module provides the
//! equivalent capability so experiments can be re-run bit-identically,
//! shared, or driven from externally produced traces. The on-disk format
//! is a simple little-endian binary stream (see [`RecordedTrace::write_to`]).

use crate::trace::{Instruction, MemRef, TraceSource};
use std::io::{self, Read, Write};
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use tla_types::{AccessKind, LineAddr};

/// Magic bytes identifying a trace file ("TLAT" + version 1).
const MAGIC: [u8; 4] = *b"TLA\x01";

/// A finite instruction trace held in memory, replayable as a
/// [`TraceSource`] (it loops when exhausted, so runs longer than the
/// recording still work).
///
/// # Examples
///
/// ```
/// use tla_workloads::{RecordedTrace, SpecApp, TraceSource};
///
/// let mut live = SpecApp::Mcf.trace(8, 0, 1);
/// let recorded = RecordedTrace::record(&mut live, 1000);
/// assert_eq!(recorded.len(), 1000);
///
/// // Replay matches a fresh generator exactly.
/// let mut fresh = SpecApp::Mcf.trace(8, 0, 1);
/// let mut replay = recorded.clone();
/// for _ in 0..1000 {
///     assert_eq!(replay.next_instruction(), fresh.next_instruction());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    instructions: Vec<Instruction>,
    cursor: usize,
    laps: u64,
}

impl RecordedTrace {
    /// Captures `n` instructions from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (an empty trace cannot be replayed).
    pub fn record<S: TraceSource + ?Sized>(source: &mut S, n: usize) -> Self {
        assert!(n > 0, "cannot record an empty trace");
        let instructions = (0..n).map(|_| source.next_instruction()).collect();
        RecordedTrace {
            instructions,
            cursor: 0,
            laps: 0,
        }
    }

    /// Builds a trace directly from instructions.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is empty.
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        assert!(!instructions.is_empty(), "cannot replay an empty trace");
        RecordedTrace {
            instructions,
            cursor: 0,
            laps: 0,
        }
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the trace is empty (never true for constructed values; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// How many times replay has wrapped around to the beginning.
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// The recorded instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over one recording pass without touching the replay
    /// cursor — the second (and third, and n-th) pass an offline analysis
    /// like the Belady oracle makes over a trace that is simultaneously
    /// being replayed.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Resets the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
        self.laps = 0;
    }

    /// Serializes the trace. Format: magic, u64 count, then per
    /// instruction: u64 code line, u8 kind tag (0 = none, 1 = load,
    /// 2 = store), and for memory instructions a u64 data line. All
    /// little-endian.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&(self.instructions.len() as u64).to_le_bytes())?;
        for i in &self.instructions {
            w.write_all(&i.code_line.raw().to_le_bytes())?;
            match i.mem {
                None => w.write_all(&[0u8])?,
                Some(m) => {
                    let tag: u8 = if m.kind.is_write() { 2 } else { 1 };
                    w.write_all(&[tag])?;
                    w.write_all(&m.addr.raw().to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a trace written by [`RecordedTrace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a bad magic, tag or an
    /// empty trace, and propagates I/O errors from `r`.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a TLA trace file",
            ));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let n = u64::from_le_bytes(buf8) as usize;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace file contains no instructions",
            ));
        }
        let mut instructions = Vec::with_capacity(n);
        for _ in 0..n {
            r.read_exact(&mut buf8)?;
            let code_line = LineAddr::new(u64::from_le_bytes(buf8));
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let mem = match tag[0] {
                0 => None,
                1 | 2 => {
                    r.read_exact(&mut buf8)?;
                    Some(MemRef {
                        addr: LineAddr::new(u64::from_le_bytes(buf8)),
                        kind: if tag[0] == 2 {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        },
                    })
                }
                t => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("invalid instruction tag {t}"),
                    ))
                }
            };
            instructions.push(Instruction { code_line, mem });
        }
        Ok(Self::from_instructions(instructions))
    }
}

impl<'a> IntoIterator for &'a RecordedTrace {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl TraceSource for RecordedTrace {
    fn next_instruction(&mut self) -> Instruction {
        let i = self.instructions[self.cursor];
        self.cursor += 1;
        if self.cursor == self.instructions.len() {
            self.cursor = 0;
            self.laps += 1;
        }
        i
    }
}

impl Snapshot for RecordedTrace {
    // The instruction payload is the workload, not mutable state: a resume
    // reloads the same trace file and only the replay cursor travels. The
    // recorded length is written too so a cursor from a different trace is
    // rejected instead of replayed out of phase.
    fn write_state(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.instructions.len());
        w.write_usize(self.cursor);
        w.write_u64(self.laps);
    }

    fn read_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let len = r.read_usize()?;
        if len != self.instructions.len() {
            return Err(SnapshotError::Mismatch(format!(
                "recorded trace: snapshot was taken over {len} instructions, \
                 this trace has {}",
                self.instructions.len()
            )));
        }
        let cursor = r.read_usize()?;
        if cursor >= len {
            return Err(SnapshotError::Corrupt(format!(
                "replay cursor {cursor} out of range for {len} instructions"
            )));
        }
        self.cursor = cursor;
        self.laps = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecApp;

    #[test]
    fn record_and_replay_matches_generator() {
        let mut live = SpecApp::Sjeng.trace(8, 0, 3);
        let mut rec = RecordedTrace::record(&mut live, 500);
        let mut fresh = SpecApp::Sjeng.trace(8, 0, 3);
        for _ in 0..500 {
            assert_eq!(rec.next_instruction(), fresh.next_instruction());
        }
        assert_eq!(rec.laps(), 1);
    }

    #[test]
    fn replay_loops_and_rewinds() {
        let mut live = SpecApp::DealII.trace(8, 0, 1);
        let mut rec = RecordedTrace::record(&mut live, 10);
        let first: Vec<_> = (0..10).map(|_| rec.next_instruction()).collect();
        let second: Vec<_> = (0..10).map(|_| rec.next_instruction()).collect();
        assert_eq!(first, second);
        assert_eq!(rec.laps(), 2);
        rec.rewind();
        assert_eq!(rec.laps(), 0);
        assert_eq!(rec.next_instruction(), first[0]);
    }

    #[test]
    fn iter_does_not_disturb_replay() {
        let mut live = SpecApp::Mcf.trace(8, 0, 7);
        let mut rec = RecordedTrace::record(&mut live, 20);
        for _ in 0..5 {
            rec.next_instruction();
        }
        let pass: Vec<_> = rec.iter().copied().collect();
        assert_eq!(pass.as_slice(), rec.instructions());
        assert_eq!(rec.iter().count(), 20);
        // The replay cursor is where the 6th call expects it.
        assert_eq!(rec.next_instruction(), pass[5]);
        let via_ref: Vec<_> = (&rec).into_iter().copied().collect();
        assert_eq!(via_ref, pass);
    }

    #[test]
    fn binary_roundtrip() {
        let mut live = SpecApp::Mcf.trace(8, 1, 9);
        let rec = RecordedTrace::record(&mut live, 300);
        let mut bytes = Vec::new();
        rec.write_to(&mut bytes).unwrap();
        let back = RecordedTrace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn rejects_bad_magic_and_tags() {
        let err = RecordedTrace::read_from(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&42u64.to_le_bytes());
        bytes.push(9); // invalid tag
        let err = RecordedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_empty_trace_file() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = RecordedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_length_recording_panics() {
        let mut live = SpecApp::Wrf.trace(8, 0, 1);
        let _ = RecordedTrace::record(&mut live, 0);
    }

    #[test]
    fn rejects_wrong_version_byte() {
        // The magic embeds the version ("TLA" + 0x01); a future version
        // must not be parsed as the current format.
        let mut live = SpecApp::Mcf.trace(8, 0, 2);
        let rec = RecordedTrace::record(&mut live, 5);
        let mut bytes = Vec::new();
        rec.write_to(&mut bytes).unwrap();
        bytes[3] = 0x02;
        let err = RecordedTrace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("not a TLA trace file"), "{err}");
    }

    #[test]
    fn rejects_truncated_file() {
        let mut live = SpecApp::Mcf.trace(8, 0, 2);
        let rec = RecordedTrace::record(&mut live, 50);
        let mut bytes = Vec::new();
        rec.write_to(&mut bytes).unwrap();
        // Cut mid-header, mid-count, mid-instruction and one byte short.
        for cut in [2, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = RecordedTrace::read_from(&bytes[..cut]).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let mut live = SpecApp::Libquantum.trace(8, 2, 11);
        let rec = RecordedTrace::record(&mut live, 400);
        let mut first = Vec::new();
        rec.write_to(&mut first).unwrap();
        let back = RecordedTrace::read_from(first.as_slice()).unwrap();
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn snapshot_restores_cursor_and_laps() {
        let mut live = SpecApp::Sjeng.trace(8, 0, 4);
        let mut rec = RecordedTrace::record(&mut live, 30);
        for _ in 0..42 {
            rec.next_instruction();
        }
        let mut w = SnapshotWriter::new();
        rec.write_state(&mut w);
        let state = w.finish();

        let mut resumed = rec.clone();
        resumed.rewind();
        let mut r = SnapshotReader::new(&state).unwrap();
        resumed.read_state(&mut r).unwrap();
        assert_eq!(resumed.laps(), rec.laps());
        for _ in 0..60 {
            assert_eq!(resumed.next_instruction(), rec.next_instruction());
        }

        // A cursor from a different-length trace is rejected.
        let mut other = RecordedTrace::record(&mut SpecApp::Sjeng.trace(8, 0, 4), 10);
        let mut r = SnapshotReader::new(&state).unwrap();
        let err = other.read_state(&mut r).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err:?}");
    }
}
