//! Batched instruction generation.
//!
//! The batched execution engine consumes instructions from each core in
//! register-hot runs, so pulling them from the generator one call at a
//! time wastes the run structure: every `next_instruction` re-enters the
//! mixture-selection and PC-advance code cold. [`BatchedTrace`] refills a
//! small buffer in one tight burst instead and then hands instructions out
//! by index.
//!
//! Buffering generates *ahead* of the committed position — the underlying
//! generator's RNG has already advanced past instructions nobody has
//! consumed yet. That would break checkpoint byte-compatibility, so the
//! batcher keeps `base`, a clone of the generator taken at the last refill
//! (i.e. at the committed boundary). Serialization clones `base`, replays
//! exactly the consumed prefix of the buffer, and snapshots *that* state:
//! the bytes are identical to an unbatched generator that stopped at the
//! same committed instruction.

use crate::trace::{Instruction, TraceSource};
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// Default instructions generated per refill burst.
pub const DEFAULT_BATCH: usize = 64;

/// A buffering adapter around any [`TraceSource`]: generates instructions
/// in bursts, hands them out one by one, and serializes as if it had never
/// buffered at all (see the module docs for the replay argument).
#[derive(Debug, Clone)]
pub struct BatchedTrace<T> {
    /// The generator, advanced through the end of the current buffer.
    inner: T,
    /// Clone of the generator at the last refill — the committed boundary.
    base: T,
    buf: Vec<Instruction>,
    /// Instructions of `buf` already handed out (the committed prefix).
    pos: usize,
    batch: usize,
}

impl<T: TraceSource + Clone> BatchedTrace<T> {
    /// Wraps `inner` with the default batch size.
    pub fn new(inner: T) -> Self {
        Self::with_batch(inner, DEFAULT_BATCH)
    }

    /// Wraps `inner`, refilling `batch` instructions at a time.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(inner: T, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let base = inner.clone();
        BatchedTrace {
            inner,
            base,
            buf: Vec::with_capacity(batch),
            pos: 0,
            batch,
        }
    }

    #[cold]
    fn refill(&mut self) {
        self.base.clone_from(&self.inner);
        self.buf.clear();
        for _ in 0..self.batch {
            self.buf.push(self.inner.next_instruction());
        }
        self.pos = 0;
    }
}

impl<T: TraceSource + Clone> TraceSource for BatchedTrace<T> {
    #[inline]
    fn next_instruction(&mut self) -> Instruction {
        if self.pos == self.buf.len() {
            self.refill();
        }
        let instr = self.buf[self.pos];
        self.pos += 1;
        instr
    }
}

impl<T: TraceSource + Clone + Snapshot> Snapshot for BatchedTrace<T> {
    fn write_state(&self, w: &mut SnapshotWriter) {
        // Replay the committed prefix onto the refill-boundary clone; the
        // result is the exact generator state an unbatched run would hold
        // here, so the wire bytes carry no trace of the batching.
        let mut committed = self.base.clone();
        for _ in 0..self.pos {
            committed.next_instruction();
        }
        committed.write_state(w);
    }

    fn read_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.inner.read_state(r)?;
        self.base.clone_from(&self.inner);
        self.buf.clear();
        self.pos = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PatternKind, SyntheticTrace, WorkloadParams};

    fn params() -> WorkloadParams {
        WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 0.5,
            write_ratio: 0.3,
            patterns: vec![
                (0.6, PatternKind::Loop { lines: 64, stay: 4 }),
                (0.4, PatternKind::Chase { lines: 256 }),
            ],
        }
    }

    #[test]
    fn batched_stream_equals_unbatched_stream() {
        for batch in [1, 2, 63, 64, 65] {
            let mut plain = SyntheticTrace::new(&params(), 0, 7);
            let mut batched = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 7), batch);
            for n in 0..1000 {
                assert_eq!(
                    batched.next_instruction(),
                    plain.next_instruction(),
                    "batch={batch} diverges at instruction {n}"
                );
            }
        }
    }

    #[test]
    fn snapshot_hides_the_buffer() {
        // At every commit offset across several refill boundaries, the
        // batcher's bytes must equal an unbatched generator's bytes.
        let mut plain = SyntheticTrace::new(&params(), 1, 9);
        let mut batched = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 1, 9), 16);
        for n in 0..100 {
            let mut wp = SnapshotWriter::new();
            plain.write_state(&mut wp);
            let mut wb = SnapshotWriter::new();
            batched.write_state(&mut wb);
            assert_eq!(
                wp.finish(),
                wb.finish(),
                "snapshot bytes diverge after {n} commits"
            );
            assert_eq!(plain.next_instruction(), batched.next_instruction());
        }
    }

    #[test]
    fn snapshot_round_trips_and_resumes_exactly() {
        let mut live = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 3), 32);
        for _ in 0..500 {
            live.next_instruction();
        }
        let mut w = SnapshotWriter::new();
        live.write_state(&mut w);
        let bytes = w.finish();

        let mut resumed = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 3), 32);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        resumed.read_state(&mut r).unwrap();
        for n in 0..500 {
            assert_eq!(
                resumed.next_instruction(),
                live.next_instruction(),
                "resumed stream diverges at instruction {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let _ = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 1), 0);
    }
}
