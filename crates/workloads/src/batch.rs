//! Batched instruction generation.
//!
//! The batched execution engine consumes instructions from each core in
//! register-hot runs, so pulling them from the generator one call at a
//! time wastes the run structure: every `next_instruction` re-enters the
//! mixture-selection and PC-advance code cold. [`BatchedTrace`] refills a
//! small buffer in one tight burst instead and then hands instructions out
//! by index.
//!
//! Buffering generates *ahead* of the committed position — the underlying
//! generator's RNG has already advanced past instructions nobody has
//! consumed yet. That would break checkpoint byte-compatibility, so the
//! batcher keeps, for every in-flight chunk, a clone of the generator
//! taken at that chunk's start (a committed boundary). Serialization
//! clones the front chunk's base, replays exactly the consumed prefix of
//! that chunk, and snapshots *that* state: the bytes are identical to an
//! unbatched generator that stopped at the same committed instruction.
//!
//! The chunk chain exists for the parallel engine's epoch pre-generation
//! ([`BatchedTrace::prefill`]): a worker thread can stack up a bounded
//! number of chunks ahead of the committed position, the commit loop
//! drains them front-first, and the snapshot replay cost stays bounded by
//! one chunk regardless of how far generation ran ahead.

use crate::trace::{Instruction, TraceSource};
use std::collections::VecDeque;
use tla_snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// Default instructions generated per refill burst.
pub const DEFAULT_BATCH: usize = 64;

/// One generated-ahead burst: the instructions plus the generator state
/// at the burst's first instruction (the replay anchor for snapshots).
#[derive(Debug, Clone)]
struct Chunk<T> {
    base: T,
    buf: Vec<Instruction>,
}

/// A buffering adapter around any [`TraceSource`]: generates instructions
/// in bursts, hands them out one by one, and serializes as if it had never
/// buffered at all (see the module docs for the replay argument).
#[derive(Debug, Clone)]
pub struct BatchedTrace<T> {
    /// The generator, advanced through the end of the last chunk.
    inner: T,
    /// Generated-ahead chunks, oldest (partially consumed) first.
    chunks: VecDeque<Chunk<T>>,
    /// Instructions of the front chunk already handed out.
    pos: usize,
    batch: usize,
    /// Retired chunks recycled to keep the hot path allocation-free.
    spare: Vec<Chunk<T>>,
}

impl<T: TraceSource + Clone> BatchedTrace<T> {
    /// Wraps `inner` with the default batch size.
    pub fn new(inner: T) -> Self {
        Self::with_batch(inner, DEFAULT_BATCH)
    }

    /// Wraps `inner`, refilling `batch` instructions at a time.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(inner: T, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        BatchedTrace {
            inner,
            chunks: VecDeque::new(),
            pos: 0,
            batch,
            spare: Vec::new(),
        }
    }

    /// Generates one more chunk at the back of the chain.
    #[cold]
    fn generate_chunk(&mut self) {
        let mut chunk = self.spare.pop().unwrap_or_else(|| Chunk {
            base: self.inner.clone(),
            buf: Vec::with_capacity(self.batch),
        });
        chunk.base.clone_from(&self.inner);
        chunk.buf.clear();
        for _ in 0..self.batch {
            chunk.buf.push(self.inner.next_instruction());
        }
        self.chunks.push_back(chunk);
    }

    /// Unconsumed instructions currently buffered.
    pub fn buffered(&self) -> usize {
        self.chunks.iter().map(|c| c.buf.len()).sum::<usize>() - self.pos
    }

    /// Generates ahead until at least `n` unconsumed instructions are
    /// buffered. Generation is a pure function of the generator state —
    /// it never looks at simulated time — so prefilling any amount from
    /// any thread leaves the consumed stream (and the snapshot bytes,
    /// which replay only the committed prefix) bit-identical.
    pub fn prefill(&mut self, n: usize) {
        while self.buffered() < n {
            self.generate_chunk();
        }
    }
}

impl<T: TraceSource + Clone> TraceSource for BatchedTrace<T> {
    #[inline]
    fn next_instruction(&mut self) -> Instruction {
        loop {
            if let Some(front) = self.chunks.front() {
                if self.pos < front.buf.len() {
                    let instr = front.buf[self.pos];
                    self.pos += 1;
                    return instr;
                }
                let retired = self.chunks.pop_front().expect("front chunk exists");
                self.spare.push(retired);
                self.pos = 0;
            } else {
                self.generate_chunk();
            }
        }
    }
}

impl<T: TraceSource + Clone + Snapshot> Snapshot for BatchedTrace<T> {
    fn write_state(&self, w: &mut SnapshotWriter) {
        // Replay the committed prefix onto the front chunk's start-of-burst
        // clone; the result is the exact generator state an unbatched run
        // would hold here, so the wire bytes carry no trace of the batching
        // (or of any chunks generated ahead by the parallel engine).
        match self.chunks.front() {
            Some(front) => {
                let mut committed = front.base.clone();
                for _ in 0..self.pos {
                    committed.next_instruction();
                }
                committed.write_state(w);
            }
            None => self.inner.write_state(w),
        }
    }

    fn read_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.inner.read_state(r)?;
        self.spare.extend(self.chunks.drain(..));
        self.pos = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PatternKind, SyntheticTrace, WorkloadParams};

    fn params() -> WorkloadParams {
        WorkloadParams {
            code_footprint_bytes: 4096,
            mem_ratio: 0.5,
            write_ratio: 0.3,
            patterns: vec![
                (0.6, PatternKind::Loop { lines: 64, stay: 4 }),
                (0.4, PatternKind::Chase { lines: 256 }),
            ],
        }
    }

    #[test]
    fn batched_stream_equals_unbatched_stream() {
        for batch in [1, 2, 63, 64, 65] {
            let mut plain = SyntheticTrace::new(&params(), 0, 7);
            let mut batched = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 7), batch);
            for n in 0..1000 {
                assert_eq!(
                    batched.next_instruction(),
                    plain.next_instruction(),
                    "batch={batch} diverges at instruction {n}"
                );
            }
        }
    }

    #[test]
    fn prefilled_stream_equals_unbatched_stream() {
        // Generating far ahead (as the parallel engine's epoch workers do)
        // must not perturb the consumed stream, whatever the prefill
        // depth/consumption interleaving.
        let mut plain = SyntheticTrace::new(&params(), 0, 7);
        let mut batched = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 7), 16);
        for round in 0..20 {
            batched.prefill(37 + 13 * (round % 5));
            assert!(batched.buffered() >= 37);
            for n in 0..50 {
                assert_eq!(
                    batched.next_instruction(),
                    plain.next_instruction(),
                    "round {round} diverges at instruction {n}"
                );
            }
        }
    }

    #[test]
    fn snapshot_hides_the_buffer() {
        // At every commit offset across several refill boundaries, the
        // batcher's bytes must equal an unbatched generator's bytes.
        let mut plain = SyntheticTrace::new(&params(), 1, 9);
        let mut batched = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 1, 9), 16);
        for n in 0..100 {
            let mut wp = SnapshotWriter::new();
            plain.write_state(&mut wp);
            let mut wb = SnapshotWriter::new();
            batched.write_state(&mut wb);
            assert_eq!(
                wp.finish(),
                wb.finish(),
                "snapshot bytes diverge after {n} commits"
            );
            assert_eq!(plain.next_instruction(), batched.next_instruction());
        }
    }

    #[test]
    fn snapshot_hides_prefilled_chunks_too() {
        // Same bar with a deep prefilled chain: snapshot bytes track the
        // *committed* position only, and replay cost stays within one
        // chunk however far generation ran ahead.
        let mut plain = SyntheticTrace::new(&params(), 1, 9);
        let mut batched = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 1, 9), 16);
        batched.prefill(400);
        for n in 0..300 {
            let mut wp = SnapshotWriter::new();
            plain.write_state(&mut wp);
            let mut wb = SnapshotWriter::new();
            batched.write_state(&mut wb);
            assert_eq!(
                wp.finish(),
                wb.finish(),
                "snapshot bytes diverge after {n} commits"
            );
            assert_eq!(plain.next_instruction(), batched.next_instruction());
        }
    }

    #[test]
    fn snapshot_round_trips_and_resumes_exactly() {
        let mut live = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 3), 32);
        for _ in 0..500 {
            live.next_instruction();
        }
        let mut w = SnapshotWriter::new();
        live.write_state(&mut w);
        let bytes = w.finish();

        let mut resumed = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 3), 32);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        resumed.read_state(&mut r).unwrap();
        for n in 0..500 {
            assert_eq!(
                resumed.next_instruction(),
                live.next_instruction(),
                "resumed stream diverges at instruction {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let _ = BatchedTrace::with_batch(SyntheticTrace::new(&params(), 0, 1), 0);
    }
}
