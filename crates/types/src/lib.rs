//! Common value types shared by every crate in the TLA cache simulator.
//!
//! This crate defines the small, copyable vocabulary types the rest of the
//! workspace speaks: byte and line [`Addr`]esses, [`CoreId`]s, memory
//! [`AccessKind`]s, [`CacheLevel`]s and a handful of statistics helpers
//! (notably [`stats::geomean`], which the paper uses to aggregate the 105
//! workload mixes).
//!
//! # Examples
//!
//! ```
//! use tla_types::{Addr, LineAddr, LINE_BYTES};
//!
//! let a = Addr::new(0x1234);
//! let line = a.line();
//! assert_eq!(line.base().raw(), 0x1234 / LINE_BYTES as u64 * LINE_BYTES as u64);
//! assert_eq!(LineAddr::from(a), line);
//! ```

pub mod counters;
pub mod stats;

pub use counters::{GlobalStats, IoAgentStats, IoStats, PerCoreStats};

use std::fmt;

/// Cache line size in bytes. The paper uses 64 B lines at every level
/// (§IV-A); the whole simulator assumes this fixed geometry.
pub const LINE_BYTES: usize = 64;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();

/// A byte address in the simulated physical address space.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line this byte falls in.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset within the cache line.
    pub const fn line_offset(self) -> usize {
        (self.0 & (LINE_BYTES as u64 - 1)) as usize
    }

    /// The address `bytes` further on.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address: a byte address with the low [`LINE_SHIFT`] bits
/// dropped. All cache state is keyed by `LineAddr`.
///
/// `repr(transparent)`: dense `LineAddr` arrays are guaranteed to have the
/// layout of `u64` arrays, which the SIMD set-probe kernels rely on to load
/// tags directly from per-set address slices.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number (byte address divided
    /// by [`LINE_BYTES`]).
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The line `n` lines further on (`n` may be negative).
    #[must_use]
    pub const fn step(self, n: i64) -> Self {
        LineAddr(self.0.wrapping_add(n as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

/// Identifier of a core in the simulated CMP (0-based, at most 64 cores so
/// the LLC directory fits in a single `u64` bitmap).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(u8);

impl CoreId {
    /// Maximum number of cores supported by the directory bitmap.
    pub const MAX_CORES: usize = 64;

    /// Creates a core id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= MAX_CORES`.
    pub fn new(id: usize) -> Self {
        assert!(id < Self::MAX_CORES, "core id {id} out of range");
        CoreId(id as u8)
    }

    /// The 0-based index of the core.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// What a memory reference does.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Instruction fetch (looks in the L1 instruction cache first).
    IFetch,
    /// Data read.
    Load,
    /// Data write (write-allocate, write-back).
    Store,
    /// Hardware prefetch issued by the L2 stream prefetcher.
    Prefetch,
}

impl AccessKind {
    /// Whether the access dirties the line it touches.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Whether the access is a demand access (something the program asked
    /// for, as opposed to a hardware prefetch).
    pub const fn is_demand(self) -> bool {
        !matches!(self, AccessKind::Prefetch)
    }

    /// Whether the access targets the instruction side of the L1.
    pub const fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::IFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::IFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Prefetch => "prefetch",
        };
        f.write_str(s)
    }
}

/// A level of the three-level hierarchy the paper models (per-core L1I/L1D,
/// per-core unified L2, shared LLC).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CacheLevel {
    /// Private L1 instruction cache.
    L1I,
    /// Private L1 data cache.
    L1D,
    /// Private unified L2 (non-inclusive with respect to the L1s).
    L2,
    /// Shared last-level cache.
    Llc,
}

impl CacheLevel {
    /// All levels, smallest first.
    pub const ALL: [CacheLevel; 4] = [
        CacheLevel::L1I,
        CacheLevel::L1D,
        CacheLevel::L2,
        CacheLevel::Llc,
    ];
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheLevel::L1I => "L1I",
            CacheLevel::L1D => "L1D",
            CacheLevel::L2 => "L2",
            CacheLevel::Llc => "LLC",
        };
        f.write_str(s)
    }
}

/// Where a demand access was finally serviced from. Determines the
/// load-to-use latency the core model charges.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DataSource {
    /// Hit in the accessed L1 (instruction or data).
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the shared LLC.
    Llc,
    /// Missed the whole hierarchy and was serviced from main memory.
    Memory,
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataSource::L1 => "L1",
            DataSource::L2 => "L2",
            DataSource::Llc => "LLC",
            DataSource::Memory => "memory",
        };
        f.write_str(s)
    }
}

impl DataSource {
    /// True when the access missed every on-chip cache.
    pub const fn is_memory(self) -> bool {
        matches!(self, DataSource::Memory)
    }
}

/// A simulated clock value in core cycles.
pub type Cycle = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_roundtrip() {
        let a = Addr::new(0x12345);
        assert_eq!(a.line().base().raw(), 0x12340);
        assert_eq!(a.line_offset(), 5);
        assert_eq!(a.line().step(1).base().raw(), 0x12380);
    }

    #[test]
    fn line_step_negative() {
        let l = LineAddr::new(10);
        assert_eq!(l.step(-3).raw(), 7);
    }

    #[test]
    fn addr_offset_wraps() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.offset(1).raw(), 0);
    }

    #[test]
    fn core_id_in_range() {
        assert_eq!(CoreId::new(7).index(), 7);
        assert_eq!(CoreId::new(0).to_string(), "core0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_id_out_of_range() {
        let _ = CoreId::new(64);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::Load.is_demand());
        assert!(!AccessKind::Prefetch.is_demand());
        assert!(AccessKind::IFetch.is_ifetch());
    }

    #[test]
    fn data_source_ordering_matches_distance() {
        assert!(DataSource::L1 < DataSource::L2);
        assert!(DataSource::L2 < DataSource::Llc);
        assert!(DataSource::Llc < DataSource::Memory);
        assert!(DataSource::Memory.is_memory());
    }

    #[test]
    fn display_is_nonempty() {
        for lvl in CacheLevel::ALL {
            assert!(!lvl.to_string().is_empty());
        }
        assert_eq!(Addr::new(16).to_string(), "0x10");
    }
}

/// Randomized property checks, driven by a fixed-seed [`tla_rng::SmallRng`]
/// so every run explores the same cases deterministically.
#[cfg(test)]
mod proptests {
    use super::*;
    use tla_rng::SmallRng;

    const CASES: usize = 2000;

    /// Any byte address belongs to the line whose base is at or below
    /// it, less than one line away.
    #[test]
    fn addr_line_containment() {
        let mut rng = SmallRng::seed_from_u64(0x7A01);
        for _ in 0..CASES {
            let raw = rng.next_u64();
            let a = Addr::new(raw);
            let base = a.line().base();
            assert_eq!(raw - base.raw(), a.line_offset() as u64);
            assert!(a.line_offset() < LINE_BYTES);
        }
    }

    /// Line stepping is additive and invertible.
    #[test]
    fn line_step_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0x7A02);
        for _ in 0..CASES {
            let raw = rng.next_u64();
            let n = rng.gen_range(0..2000u64) as i64 - 1000;
            let l = LineAddr::new(raw);
            assert_eq!(l.step(n).step(-n), l);
            assert_eq!(l.step(n).raw(), raw.wrapping_add(n as u64));
        }
    }

    fn random_values(rng: &mut SmallRng) -> Vec<f64> {
        let len = rng.gen_range(1..50usize);
        (0..len).map(|_| 0.01 + rng.gen_f64() * 99.99).collect()
    }

    /// geomean lies between min and max for positive inputs.
    #[test]
    fn geomean_between_extremes() {
        let mut rng = SmallRng::seed_from_u64(0x7A03);
        for _ in 0..500 {
            let values = random_values(&mut rng);
            let g = stats::geomean(values.iter().copied()).unwrap();
            let min = values.iter().cloned().fold(f64::MAX, f64::min);
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            assert!(g >= min - 1e-9 && g <= max + 1e-9);
        }
    }

    /// hmean <= geomean <= arithmetic mean (AM-GM-HM inequality).
    #[test]
    fn am_gm_hm_inequality() {
        let mut rng = SmallRng::seed_from_u64(0x7A04);
        for _ in 0..500 {
            let values = random_values(&mut rng);
            let am = stats::mean(values.iter().copied()).unwrap();
            let gm = stats::geomean(values.iter().copied()).unwrap();
            let hm = stats::hmean(values.iter().copied()).unwrap();
            assert!(hm <= gm + 1e-9);
            assert!(gm <= am + 1e-9);
        }
    }
}
