//! Hierarchy statistics counters.
//!
//! Per-core counters cover everything the paper's metrics need (MPKI per
//! level, LLC miss reduction, inclusion-victim counts); global counters
//! cover the message-traffic claims (back-invalidates, ECI invalidations,
//! QBS queries, TLH volume). They live in `tla-types` (rather than
//! `tla-core`, which maintains them) so the telemetry layer can snapshot
//! and serialize them without depending on the hierarchy itself.

/// Demand-access counters attributed to one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerCoreStats {
    /// L1 instruction-cache demand accesses.
    pub l1i_accesses: u64,
    /// L1 instruction-cache demand misses.
    pub l1i_misses: u64,
    /// L1 data-cache demand accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache demand misses.
    pub l1d_misses: u64,
    /// L2 demand accesses.
    pub l2_accesses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// LLC demand accesses made on behalf of this core.
    pub llc_accesses: u64,
    /// LLC demand misses made on behalf of this core.
    pub llc_misses: u64,
    /// Demand requests serviced by main memory.
    pub memory_accesses: u64,
    /// Lines this core lost from an L1 to inclusion back-invalidation.
    pub inclusion_victims_l1: u64,
    /// Lines this core lost from its L2 to inclusion back-invalidation.
    pub inclusion_victims_l2: u64,
    /// Temporal locality hints this core sent to the LLC.
    pub tlh_hints: u64,
    /// L2 demand misses to lines this core had never touched (cold).
    pub misses_cold: u64,
    /// L2 demand misses to previously-seen lines that aged out of the
    /// core caches on their own (capacity/conflict).
    pub misses_capacity: u64,
    /// L2 demand misses to lines an inclusion back-invalidate (or ECI)
    /// forcibly removed from this core's caches — the paper's inclusion
    /// victims, observed at their point of cost.
    pub misses_inclusion_victim: u64,
}

impl PerCoreStats {
    /// Combined L1 demand accesses.
    pub fn l1_accesses(&self) -> u64 {
        self.l1i_accesses + self.l1d_accesses
    }

    /// Combined L1 demand misses.
    pub fn l1_misses(&self) -> u64 {
        self.l1i_misses + self.l1d_misses
    }

    /// Total inclusion victims suffered (L1 + L2).
    pub fn inclusion_victims(&self) -> u64 {
        self.inclusion_victims_l1 + self.inclusion_victims_l2
    }

    /// Per-field difference `self - earlier`, for freezing statistics at an
    /// instruction boundary.
    #[must_use]
    pub fn since(&self, earlier: &PerCoreStats) -> PerCoreStats {
        PerCoreStats {
            l1i_accesses: self.l1i_accesses - earlier.l1i_accesses,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            l1d_accesses: self.l1d_accesses - earlier.l1d_accesses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_accesses: self.llc_accesses - earlier.llc_accesses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            memory_accesses: self.memory_accesses - earlier.memory_accesses,
            inclusion_victims_l1: self.inclusion_victims_l1 - earlier.inclusion_victims_l1,
            inclusion_victims_l2: self.inclusion_victims_l2 - earlier.inclusion_victims_l2,
            tlh_hints: self.tlh_hints - earlier.tlh_hints,
            misses_cold: self.misses_cold - earlier.misses_cold,
            misses_capacity: self.misses_capacity - earlier.misses_capacity,
            misses_inclusion_victim: self.misses_inclusion_victim - earlier.misses_inclusion_victim,
        }
    }
}

/// Whole-hierarchy message and event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Lines evicted from the LLC.
    pub llc_evictions: u64,
    /// Dirty LLC evictions written back to memory.
    pub llc_writebacks: u64,
    /// Inclusion back-invalidate messages sent to core caches (one per
    /// core-and-line notified).
    pub back_invalidates: u64,
    /// Early-invalidate messages sent by ECI.
    pub eci_invalidates: u64,
    /// ECI'd lines later rescued by an LLC hit before eviction.
    pub eci_rescues: u64,
    /// QBS queries issued to the core caches.
    pub qbs_queries: u64,
    /// QBS candidates rejected (resident in a core cache and re-promoted).
    pub qbs_rejections: u64,
    /// LLC misses where QBS hit its query limit and evicted unconditionally.
    pub qbs_limit_hits: u64,
    /// Total temporal locality hints received by the LLC.
    pub tlh_hints: u64,
    /// Prefetch requests issued by the stream prefetchers.
    pub prefetches: u64,
    /// Victim-cache rescues (LLC misses satisfied from the victim cache).
    pub victim_cache_rescues: u64,
    /// Coherence snoop probes broadcast to other cores on LLC misses.
    /// Zero under inclusion — the inclusive LLC is a natural snoop filter
    /// (§I/§II); non-inclusive and exclusive hierarchies must check the
    /// other cores' caches on every LLC demand miss.
    pub snoop_probes: u64,
    /// Inclusion-victim misses caused by an ordinary LLC replacement
    /// decision (including a QBS-approved eviction).
    pub victim_misses_replacement: u64,
    /// Inclusion-victim misses caused by QBS hitting its query limit and
    /// evicting a line the core caches still held.
    pub victim_misses_qbs_limit: u64,
    /// Inclusion-victim misses caused by an ECI early invalidate.
    pub victim_misses_eci: u64,
    /// Inclusion-victim misses caused by a victim-cache displacement
    /// (line fell out of the victim cache while still core-resident).
    pub victim_misses_vc: u64,
}

impl GlobalStats {
    /// Per-field difference `self - earlier`.
    #[must_use]
    pub fn since(&self, earlier: &GlobalStats) -> GlobalStats {
        GlobalStats {
            llc_evictions: self.llc_evictions - earlier.llc_evictions,
            llc_writebacks: self.llc_writebacks - earlier.llc_writebacks,
            back_invalidates: self.back_invalidates - earlier.back_invalidates,
            eci_invalidates: self.eci_invalidates - earlier.eci_invalidates,
            eci_rescues: self.eci_rescues - earlier.eci_rescues,
            qbs_queries: self.qbs_queries - earlier.qbs_queries,
            qbs_rejections: self.qbs_rejections - earlier.qbs_rejections,
            qbs_limit_hits: self.qbs_limit_hits - earlier.qbs_limit_hits,
            tlh_hints: self.tlh_hints - earlier.tlh_hints,
            prefetches: self.prefetches - earlier.prefetches,
            victim_cache_rescues: self.victim_cache_rescues - earlier.victim_cache_rescues,
            snoop_probes: self.snoop_probes - earlier.snoop_probes,
            victim_misses_replacement: self.victim_misses_replacement
                - earlier.victim_misses_replacement,
            victim_misses_qbs_limit: self.victim_misses_qbs_limit - earlier.victim_misses_qbs_limit,
            victim_misses_eci: self.victim_misses_eci - earlier.victim_misses_eci,
            victim_misses_vc: self.victim_misses_vc - earlier.victim_misses_vc,
        }
    }

    /// Total inclusion-victim misses across all causes (should equal the
    /// sum of the per-core `misses_inclusion_victim` counters).
    pub fn victim_misses(&self) -> u64 {
        self.victim_misses_replacement
            + self.victim_misses_qbs_limit
            + self.victim_misses_eci
            + self.victim_misses_vc
    }
}

/// Hierarchy-wide counters for device (DDIO-style) LLC injection traffic.
///
/// Maintained by the hierarchy's I/O injection path and only present when
/// I/O agents are configured; all counters stay zero otherwise so reports
/// can gate the whole block on activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Device lines injected into the LLC (hit or fill).
    pub injections: u64,
    /// Injections that hit a line already LLC-resident.
    pub inject_hits: u64,
    /// Injections that allocated a new LLC line.
    pub inject_fills: u64,
    /// LLC evictions forced by injection fills.
    pub llc_evictions: u64,
    /// Back-invalidate messages those evictions sent to core caches.
    pub back_invalidates: u64,
    /// Dirty lines written back to memory on injection evictions.
    pub writebacks: u64,
    /// App demand misses attributed to an injection-caused kill — the
    /// `io_injection` victim class, the I/O share of
    /// `misses_inclusion_victim`.
    pub victim_misses_io: u64,
}

impl IoStats {
    /// Per-field difference `self - earlier`.
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            injections: self.injections - earlier.injections,
            inject_hits: self.inject_hits - earlier.inject_hits,
            inject_fills: self.inject_fills - earlier.inject_fills,
            llc_evictions: self.llc_evictions - earlier.llc_evictions,
            back_invalidates: self.back_invalidates - earlier.back_invalidates,
            writebacks: self.writebacks - earlier.writebacks,
            victim_misses_io: self.victim_misses_io - earlier.victim_misses_io,
        }
    }
}

/// Injection counters attributed to one I/O agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoAgentStats {
    /// Lines this agent injected (hit or fill).
    pub injections: u64,
    /// Injections that hit an LLC-resident line (ring-buffer reuse).
    pub hits: u64,
    /// Injections that allocated a new LLC line.
    pub fills: u64,
    /// LLC evictions this agent's fills forced.
    pub evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_aggregates() {
        let s = PerCoreStats {
            l1i_accesses: 10,
            l1i_misses: 1,
            l1d_accesses: 20,
            l1d_misses: 2,
            inclusion_victims_l1: 3,
            inclusion_victims_l2: 4,
            ..Default::default()
        };
        assert_eq!(s.l1_accesses(), 30);
        assert_eq!(s.l1_misses(), 3);
        assert_eq!(s.inclusion_victims(), 7);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = PerCoreStats {
            l1d_accesses: 100,
            llc_misses: 10,
            tlh_hints: 5,
            ..Default::default()
        };
        let b = PerCoreStats {
            l1d_accesses: 40,
            llc_misses: 4,
            tlh_hints: 5,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.l1d_accesses, 60);
        assert_eq!(d.llc_misses, 6);
        assert_eq!(d.tlh_hints, 0);

        let g = GlobalStats {
            qbs_queries: 9,
            ..Default::default()
        };
        let d = g.since(&GlobalStats::default());
        assert_eq!(d.qbs_queries, 9);
    }
}
