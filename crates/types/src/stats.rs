//! Small statistics helpers used when aggregating experiment results.
//!
//! The paper reports geometric-mean speedups over 105 workload mixes and
//! s-curves (per-mix results sorted by a reference series); the helpers here
//! implement those aggregations.

/// Geometric mean of a sequence of positive values.
///
/// Returns `None` for an empty sequence or if any value is not finite and
/// positive, since the geometric mean is undefined there.
///
/// # Examples
///
/// ```
/// let g = tla_types::stats::geomean([1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Arithmetic mean. Returns `None` for an empty sequence.
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Harmonic mean of positive values. Returns `None` for an empty sequence or
/// non-positive values.
pub fn hmean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut inv_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        inv_sum += 1.0 / v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(n as f64 / inv_sum)
    }
}

/// Formats a mean to three decimals, or `"n/a"` when the mean was undefined
/// ([`geomean`]/[`hmean`] return `None` on empty input or a
/// zero/negative/non-finite entry). Summaries flag the bad entry this way
/// instead of panicking on `.unwrap()` — a single frozen run with zero
/// throughput must not take the whole report down with it.
pub fn fmt_ratio(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.3}"),
        None => "n/a".into(),
    }
}

/// Formats a normalized mean as a signed percent gain (`1.023` → `"+2.3%"`),
/// or `"n/a"` when the mean was undefined (see [`fmt_ratio`]).
pub fn fmt_gain_pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{:+.1}%", (v - 1.0) * 100.0),
        None => "n/a".into(),
    }
}

/// Sorts `(label, value)` pairs ascending by value, producing the paper's
/// "s-curve" ordering.
pub fn s_curve<L>(mut points: Vec<(L, f64)>) -> Vec<(L, f64)> {
    points.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    points
}

/// Ratio `a / b` expressed as a percentage change: `(a / b - 1) * 100`.
///
/// Returns `0.0` when `b` is zero, which keeps report tables well-formed for
/// degenerate runs.
pub fn pct_change(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        (a / b - 1.0) * 100.0
    }
}

/// Misses per 1000 instructions.
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!(geomean(std::iter::empty()).is_none());
        assert!((geomean([2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geomean([1.0, -1.0]).is_none());
        assert!(geomean([1.0, 0.0]).is_none());
    }

    #[test]
    fn mean_basics() {
        assert!(mean(std::iter::empty()).is_none());
        assert_eq!(mean([1.0, 2.0, 3.0]).unwrap(), 2.0);
    }

    #[test]
    fn hmean_basics() {
        assert!(hmean(std::iter::empty()).is_none());
        assert!((hmean([1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((hmean([2.0, 6.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!(hmean([0.0]).is_none());
    }

    #[test]
    fn fmt_ratio_flags_undefined_means() {
        // Regression: a summary containing a zero ratio used to panic via
        // `.unwrap()` on the undefined geomean; now it renders as a flag.
        assert_eq!(fmt_ratio(geomean([1.0, 0.0])), "n/a");
        assert_eq!(fmt_ratio(geomean([2.0, 8.0])), "4.000");
        assert_eq!(fmt_gain_pct(hmean([0.5, -1.0])), "n/a");
        assert_eq!(fmt_gain_pct(Some(1.023)), "+2.3%");
        assert_eq!(fmt_ratio(None), "n/a");
    }

    #[test]
    fn s_curve_sorts_ascending() {
        let pts = s_curve(vec![("b", 2.0), ("a", 1.0), ("c", 0.5)]);
        let labels: Vec<_> = pts.iter().map(|p| p.0).collect();
        assert_eq!(labels, vec!["c", "a", "b"]);
    }

    #[test]
    fn pct_change_and_mpki() {
        assert!((pct_change(1.05, 1.0) - 5.0).abs() < 1e-9);
        assert_eq!(pct_change(1.0, 0.0), 0.0);
        assert!((mpki(5, 1000) - 5.0).abs() < 1e-12);
        assert_eq!(mpki(5, 0), 0.0);
    }
}
