//! Counter-merge and replay consistency for the sharded kv service.
//!
//! Two properties under real thread interleavings (1, 4 and 8 workers,
//! every policy):
//!
//! 1. **Counter merge is exact.** Every operation lands on exactly one
//!    shard, and per-shard counters are plain integers mutated under the
//!    shard lock — so the sum over shards must equal what the worker
//!    threads issued and observed, op for op. A lost update, a counter
//!    bumped outside the lock, or a double-counted eviction all break
//!    this equality.
//! 2. **Occupancy is interleaving-invariant** for the single-cache
//!    policies (lru/fifo/clock): the load generator never removes, so a
//!    set fills monotonically and final occupancy depends only on *which*
//!    keys were touched, not on the thread schedule. Replaying the same
//!    per-thread deterministic streams single-threaded must land on the
//!    same occupancy. (S3-FIFO is excluded: its small-to-main promotions
//!    depend on access order, so occupancy is legitimately
//!    schedule-dependent.)

use tla_kv::{run_load, run_thread, KvConfig, KvPolicy, LoadSpec, ShardStats, ShardedKv};
use tla_workloads::KvWorkload;

fn spec(threads: usize) -> LoadSpec {
    LoadSpec {
        workload: KvWorkload::MIX, // zipf with scan bursts: hits, misses and evictions
        keys: 16_384,
        ops_per_thread: 30_000,
        threads,
        put_permille: 100,
        seed: 42,
    }
}

fn kv(policy: KvPolicy) -> ShardedKv {
    ShardedKv::new(KvConfig::new(2_048, policy).with_seed(7)).unwrap()
}

#[test]
fn per_shard_counter_sums_match_thread_issued_totals() {
    for policy in KvPolicy::ALL {
        for threads in [1usize, 4, 8] {
            let cache = kv(policy);
            let result = run_load(&cache, &spec(threads));

            // The merge the service reports must literally be the shard sum.
            let mut shard_sum = ShardStats::default();
            for s in cache.per_shard_stats() {
                shard_sum.merge(&s);
            }
            let total = cache.stats();
            assert_eq!(
                total, shard_sum,
                "{policy}/{threads}t: stats() != shard sum"
            );

            // ...and the shard sum must match what the threads issued.
            let issued_gets: u64 = result.threads.iter().map(|t| t.gets).sum();
            let issued_puts: u64 = result.threads.iter().map(|t| t.puts).sum();
            let observed_hits: u64 = result.threads.iter().map(|t| t.hits).sum();
            let ctx = format!("{policy}/{threads}t");
            assert_eq!(total.gets, issued_gets, "{ctx}: gets");
            assert_eq!(total.puts, issued_puts, "{ctx}: puts");
            assert_eq!(total.hits, observed_hits, "{ctx}: hits");
            assert_eq!(total.gets, total.hits + total.misses, "{ctx}: hit+miss");
            assert_eq!(
                result.total_ops(),
                (threads as u64) * 30_000,
                "{ctx}: every op accounted for"
            );

            // Residency bookkeeping closes: what came in minus what went
            // out is what is there.
            assert_eq!(
                cache.occupancy() as u64,
                total.inserts - total.evictions - total.removes,
                "{ctx}: occupancy != inserts - evictions - removes"
            );
        }
    }
}

#[test]
fn serial_replay_reaches_the_same_occupancy() {
    for policy in [KvPolicy::Lru, KvPolicy::Fifo, KvPolicy::Clock] {
        for threads in [1usize, 4, 8] {
            let spec = spec(threads);

            let concurrent = kv(policy);
            run_load(&concurrent, &spec);

            let serial = kv(policy);
            for t in 0..threads {
                run_thread(&serial, &spec, t);
            }

            assert_eq!(
                concurrent.occupancy(),
                serial.occupancy(),
                "{policy}/{threads}t: concurrent occupancy diverged from serial replay"
            );
            // Insert/eviction *differences* must agree too (each stream
            // admits the same key set regardless of schedule).
            let c = concurrent.stats();
            let s = serial.stats();
            assert_eq!(
                c.inserts - c.evictions,
                s.inserts - s.evictions,
                "{policy}/{threads}t: resident delta diverged"
            );
        }
    }
}
