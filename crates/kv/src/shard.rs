//! One shard: a single-threaded cache engine over [`SetAssocCache`].
//!
//! A shard owns its storage outright and is only ever driven under its
//! stripe lock, so everything here is plain single-threaded code — the
//! same property that lets the simulator's allocation-free hot path run
//! unmodified. Keys are used directly as [`LineAddr`]s (the sharded
//! front-end already spread keys across shards by a hash of the *top*
//! bits, and the set index uses the key's low bits, so the two never
//! interact); values ride in the per-way directory word via
//! [`SetAssocCache::payload`] / [`Evicted::cores`].

use crate::{KvError, KvPolicy};
use tla_cache::{CacheConfig, CoreBitmap, Policy, SetAssocCache};
use tla_telemetry::{Window, WindowedSeries};
use tla_types::{GlobalStats, LineAddr, PerCoreStats};

/// Fraction of the associativity the S3-FIFO small (probationary) queue
/// takes: 1/8, matching the paper's ~10% guidance. With the default 8
/// ways that is 1 small way + 7 Clock-managed main ways per set, so the
/// composition holds exactly the same number of lines as the
/// single-cache policies.
const S3_SMALL_FRACTION: usize = 8;

/// Per-shard operation counters. Plain integers mutated under the shard
/// lock; [`ShardStats::merge`] sums them into global totals.
///
/// Invariants the concurrency test pins:
/// * `gets == hits + misses`
/// * `occupancy == inserts - evictions - removes` (removes counts only
///   calls that actually dropped a resident entry)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookup calls.
    pub gets: u64,
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Put calls (insert or update).
    pub puts: u64,
    /// New entries admitted (by put-on-absent or admit).
    pub inserts: u64,
    /// Resident entries dropped to make room (not ghost bookkeeping;
    /// an S3-FIFO small→main promotion is a move, not an eviction).
    pub evictions: u64,
    /// Remove calls that found and dropped a resident entry.
    pub removes: u64,
}

impl ShardStats {
    /// Accumulates `other` into `self` (the counter merge).
    pub fn merge(&mut self, other: &ShardStats) {
        self.gets += other.gets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.puts += other.puts;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.removes += other.removes;
    }

    /// Hit fraction of all gets (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Projects the shard counters into the telemetry layer's per-core
    /// counter shape so [`WindowedSeries`] can window them unmodified: a
    /// shard *is* a cache, so gets land in the LLC access slot and get
    /// misses in the LLC miss slot (windowed hit rate falls out as
    /// `1 - llc_misses / llc_accesses`). The remaining simulator-only
    /// slots stay zero.
    pub fn as_core_stats(&self) -> PerCoreStats {
        PerCoreStats {
            llc_accesses: self.gets,
            llc_misses: self.misses,
            ..PerCoreStats::default()
        }
    }
}

/// One lock stripe's worth of cache: a main area, and for S3-FIFO also a
/// small probationary queue plus a ghost (key-only) queue.
#[derive(Debug)]
pub struct Shard {
    /// The main data area: the whole cache for `lru`/`fifo`/`clock`,
    /// the Clock-managed larger area for `s3fifo`.
    main: SetAssocCache,
    /// S3-FIFO probationary queue (1/8 of the ways, FIFO order).
    small: Option<SetAssocCache>,
    /// S3-FIFO ghost queue: keys recently evicted from `small` without
    /// reuse. Holds no values — a hit here at admission time is the
    /// "came back" signal that routes a key into `main`.
    ghost: Option<SetAssocCache>,
    stats: ShardStats,
    /// Operations applied to this shard (every get/put/admit/remove):
    /// the deterministic time axis the windowed series closes on.
    ops: u64,
    /// Optional windowed hit-rate series (see [`crate::KvConfig::window`]).
    series: Option<WindowedSeries>,
}

impl Shard {
    /// Builds a shard with `sets` sets of `ways` ways under `policy`.
    /// `window`, when set, collects a hit-rate series windowed by this
    /// shard's own operation count.
    pub fn new(
        policy: KvPolicy,
        sets: usize,
        ways: usize,
        seed: u64,
        window: Option<u64>,
    ) -> Result<Shard, KvError> {
        let geom = |name: &str, sets: usize, ways: usize, p: Policy| {
            CacheConfig::with_sets(name, sets, ways, p)
                .map_err(|e| KvError::BadGeometry(e.to_string()))
        };
        let (main, small, ghost) = match policy {
            KvPolicy::Lru => (geom("kv-main", sets, ways, Policy::Lru)?, None, None),
            KvPolicy::Fifo => (geom("kv-main", sets, ways, Policy::Fifo)?, None, None),
            KvPolicy::Clock => (geom("kv-main", sets, ways, Policy::Clock)?, None, None),
            KvPolicy::S3Fifo => {
                if ways < 2 {
                    return Err(KvError::BadGeometry(format!(
                        "s3fifo needs at least 2 ways to split small/main, got {ways}"
                    )));
                }
                let small_ways = (ways / S3_SMALL_FRACTION).max(1);
                let main_ways = ways - small_ways;
                (
                    geom("kv-main", sets, main_ways, Policy::Clock)?,
                    Some(geom("kv-small", sets, small_ways, Policy::Fifo)?),
                    // The ghost remembers about as many keys as the main
                    // area holds lines; it stores no data.
                    Some(geom("kv-ghost", sets, main_ways, Policy::Fifo)?),
                )
            }
        };
        let mk = |cfg: CacheConfig, salt: u64| SetAssocCache::with_seed(cfg, seed ^ salt);
        Ok(Shard {
            main: mk(main, 0x5157_0000),
            small: small.map(|c| mk(c, 0x5157_0001)),
            ghost: ghost.map(|c| mk(c, 0x5157_0002)),
            stats: ShardStats::default(),
            ops: 0,
            series: window.map(WindowedSeries::new),
        })
    }

    /// Advances the shard's op clock and offers the counters to the
    /// series. Between boundaries this is one increment and one compare
    /// (see [`WindowedSeries::next_boundary`]), so untimed shards and
    /// mid-window ops pay nothing beyond the counter bump they already
    /// did.
    fn tick(&mut self) {
        self.ops += 1;
        if let Some(series) = &mut self.series {
            if self.ops >= series.next_boundary() {
                series.observe(
                    self.ops,
                    &[self.stats.as_core_stats()],
                    &GlobalStats::default(),
                );
            }
        }
    }

    /// The windowed hit-rate series, with the final partial window
    /// flushed; `None` unless the shard was built with a window.
    /// Idempotent — flushing twice with no ops in between adds nothing.
    pub fn series_windows(&mut self) -> Option<Vec<Window>> {
        let series = self.series.as_mut()?;
        series.finish(
            self.ops,
            &[self.stats.as_core_stats()],
            &GlobalStats::default(),
        );
        Some(series.windows())
    }

    /// Looks `key` up, promoting it per policy. Returns the value.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let out = self.get_inner(key);
        self.tick();
        out
    }

    fn get_inner(&mut self, key: u64) -> Option<u64> {
        self.stats.gets += 1;
        let line = LineAddr::new(key);
        if let Some(small) = &mut self.small {
            if small.touch(line) {
                // Reuse while on probation: mark it so the small queue's
                // FIFO eviction promotes it to main instead of ghosting.
                small.set_tag(line, true);
                self.stats.hits += 1;
                return small.payload(line);
            }
        }
        if self.main.touch(line) {
            self.stats.hits += 1;
            return self.main.payload(line);
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts or updates `key`. Updates touch replacement state like a
    /// reference (a put is an access).
    pub fn put(&mut self, key: u64, value: u64) {
        self.put_inner(key, value);
        self.tick();
    }

    fn put_inner(&mut self, key: u64, value: u64) {
        self.stats.puts += 1;
        let line = LineAddr::new(key);
        if let Some(small) = &mut self.small {
            if small.set_payload(line, value) {
                small.set_tag(line, true);
                return;
            }
        }
        if self.main.set_payload(line, value) {
            self.main.promote(line);
            return;
        }
        self.insert(line, value);
    }

    /// Admits `key` if absent (the fill half of a get-miss). Returns
    /// `false` if it was already resident.
    pub fn admit(&mut self, key: u64, value: u64) -> bool {
        let out = self.admit_inner(key, value);
        self.tick();
        out
    }

    fn admit_inner(&mut self, key: u64, value: u64) -> bool {
        let line = LineAddr::new(key);
        if self.main.probe(line) || self.small.as_ref().is_some_and(|s| s.probe(line)) {
            return false;
        }
        self.insert(line, value);
        true
    }

    /// Drops `key` if resident. Returns whether an entry was dropped.
    pub fn remove(&mut self, key: u64) -> bool {
        let out = self.remove_inner(key);
        self.tick();
        out
    }

    fn remove_inner(&mut self, key: u64) -> bool {
        let line = LineAddr::new(key);
        // Forget ghost history too: an explicit remove is a statement the
        // key is dead, not a signal it deserves fast-path readmission.
        if let Some(ghost) = &mut self.ghost {
            ghost.invalidate(line);
        }
        let dropped = self.main.invalidate(line).is_some()
            || self
                .small
                .as_mut()
                .is_some_and(|s| s.invalidate(line).is_some());
        if dropped {
            self.stats.removes += 1;
        }
        dropped
    }

    /// Resident entries (small + main; the ghost holds no data).
    pub fn occupancy(&self) -> usize {
        self.main.occupancy() + self.small.as_ref().map_or(0, SetAssocCache::occupancy)
    }

    /// This shard's counters.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Admission for a key known to be absent.
    fn insert(&mut self, line: LineAddr, value: u64) {
        self.stats.inserts += 1;
        if self.small.is_none() {
            self.fill_main(line, value);
            return;
        }
        // S3-FIFO admission: keys the ghost remembers earned the main
        // area; fresh keys start on probation in the small queue.
        let ghosted = self
            .ghost
            .as_mut()
            .is_some_and(|g| g.invalidate(line).is_some());
        if ghosted {
            self.fill_main(line, value);
        } else {
            self.fill_small(line, value);
        }
    }

    /// Fills into the Clock-managed main area, counting any displacement.
    fn fill_main(&mut self, line: LineAddr, value: u64) {
        if self
            .main
            .fill_with_cores(line, false, CoreBitmap::from_raw(value))
            .is_some()
        {
            self.stats.evictions += 1;
        }
    }

    /// Fills into the small queue; its FIFO victim either promotes to
    /// main (if it was re-referenced while on probation) or falls into
    /// the ghost queue as a key-only tombstone.
    fn fill_small(&mut self, line: LineAddr, value: u64) {
        let small = self.small.as_mut().expect("s3fifo shard has a small queue");
        let set = small.config().set_of(line);
        if small.invalid_way(set).is_none() {
            let (way, victim) = small.victim_way(set).expect("full set has a victim");
            let reused = small.take_tag(victim) == Some(true);
            let ev = small.evict_way(set, way).expect("victim way is valid");
            if reused {
                self.fill_main(ev.addr, ev.cores.to_raw());
            } else {
                self.stats.evictions += 1;
                let ghost = self.ghost.as_mut().expect("s3fifo shard has a ghost");
                debug_assert!(!ghost.probe(ev.addr), "small resident was also ghosted");
                ghost.fill(ev.addr, false);
            }
        }
        let small = self.small.as_mut().expect("s3fifo shard has a small queue");
        let way = small.invalid_way(set).expect("a way was just freed");
        small.fill_way(set, way, line, false, CoreBitmap::from_raw(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(policy: KvPolicy) -> Shard {
        Shard::new(policy, 8, 8, 1, None).unwrap()
    }

    #[test]
    fn get_put_roundtrip_all_policies() {
        for policy in KvPolicy::ALL {
            let mut s = shard(policy);
            assert_eq!(s.get(5), None, "{policy}");
            s.put(5, 500);
            assert_eq!(s.get(5), Some(500), "{policy}");
            s.put(5, 501); // in-place update
            assert_eq!(s.get(5), Some(501), "{policy}");
            assert!(!s.admit(5, 999), "admit must not clobber {policy}");
            assert_eq!(s.get(5), Some(501), "{policy}");
            assert!(s.remove(5), "{policy}");
            assert_eq!(s.get(5), None, "{policy}");
            assert!(!s.remove(5), "{policy}");
            let t = s.stats();
            assert_eq!(t.gets, t.hits + t.misses, "{policy}");
            assert_eq!(t.removes, 1, "{policy}");
        }
    }

    #[test]
    fn occupancy_tracks_insert_evict_remove() {
        for policy in KvPolicy::ALL {
            let mut s = shard(policy);
            for k in 0..200u64 {
                s.admit(k, k);
            }
            let t = s.stats();
            assert_eq!(
                s.occupancy() as u64,
                t.inserts - t.evictions - t.removes,
                "{policy}: occupancy must equal inserts - evictions - removes"
            );
            assert!(s.occupancy() <= 64, "{policy}: capacity is 64 lines");
        }
    }

    #[test]
    fn s3fifo_scan_does_not_flush_the_hot_set() {
        // Hot keys see steady reuse; a long one-shot scan then streams
        // through. S3-FIFO must keep most of the hot set resident where
        // plain FIFO loses it.
        let hit_rate_after_scan = |policy: KvPolicy| {
            let mut s = Shard::new(policy, 8, 8, 1, None).unwrap();
            let hot: Vec<u64> = (0..32).collect();
            for round in 0..6 {
                for &k in &hot {
                    if s.get(k).is_none() {
                        s.admit(k, k);
                    }
                }
                if round >= 2 {
                    // interleave scan pressure once the hot set is warm
                    for i in 0..64u64 {
                        let k = 1_000 + round * 64 + i;
                        if s.get(k).is_none() {
                            s.admit(k, k);
                        }
                    }
                }
            }
            let mut hits = 0;
            for &k in &hot {
                if s.get(k).is_some() {
                    hits += 1;
                }
            }
            hits
        };
        let s3 = hit_rate_after_scan(KvPolicy::S3Fifo);
        let fifo = hit_rate_after_scan(KvPolicy::Fifo);
        assert!(
            s3 > fifo,
            "s3fifo kept {s3}/32 hot keys, fifo kept {fifo}/32"
        );
        assert!(s3 >= 24, "s3fifo kept only {s3}/32 hot keys");
    }

    #[test]
    fn s3fifo_ghost_readmission_goes_to_main() {
        let mut s = Shard::new(KvPolicy::S3Fifo, 1, 8, 1, None).unwrap();
        // One set: small = 1 way, main = 7 ways. Fill the small way, then
        // displace it without reuse -> key 1 falls to the ghost.
        s.admit(1, 100);
        s.admit(2, 200); // evicts key 1 from small (never reused)
        assert_eq!(s.get(1), None, "key 1 was ghosted, data gone");
        // Re-admission after the ghost hit lands in main: key 1 now
        // survives any number of further small-queue displacements.
        s.admit(1, 101);
        for k in 10..30u64 {
            s.admit(k, k);
        }
        assert_eq!(s.get(1), Some(101), "ghost readmission must stick in main");
    }

    #[test]
    fn windowed_series_tracks_hit_rate_per_window() {
        let mut s = Shard::new(KvPolicy::Lru, 8, 8, 1, Some(10)).unwrap();
        // First 10 ops: cold gets, all misses.
        for k in 0..10u64 {
            assert_eq!(s.get(k), None);
        }
        // Next 10 ops: admit then re-get 5 keys, all 5 gets hit.
        for k in 0..5u64 {
            s.admit(k, k);
            assert_eq!(s.get(k), Some(k));
        }
        let windows = s.series_windows().expect("series was requested");
        assert_eq!(windows.len(), 2);
        let hit_rate = |w: &Window| {
            let gets = w.per_core[0].llc_accesses;
            let misses = w.per_core[0].llc_misses;
            (gets - misses) as f64 / gets as f64
        };
        assert_eq!(windows[0].instructions(), 10);
        assert_eq!(hit_rate(&windows[0]), 0.0);
        assert_eq!(hit_rate(&windows[1]), 1.0);
        // Flushing again with no ops in between adds nothing.
        assert_eq!(s.series_windows().unwrap().len(), 2);
        // Windowless shards report no series.
        assert_eq!(shard(KvPolicy::Lru).series_windows(), None);
    }

    #[test]
    fn payload_updates_do_not_duplicate_entries() {
        let mut s = shard(KvPolicy::Clock);
        s.put(7, 70);
        for v in 71..90u64 {
            s.put(7, v);
        }
        assert_eq!(s.occupancy(), 1);
        assert_eq!(s.get(7), Some(89));
    }
}
