//! JSON summary of a kv load run, in the house telemetry dialect.
//!
//! Shape mirrors the simulator's `RunReport`: a `schema_version`-tagged
//! object with a config echo, global totals, and a per-shard breakdown,
//! encoded with the same dependency-free [`JsonValue`] writer so
//! `kv-bench --json` output composes with the existing report tooling.

use crate::{KvConfig, LoadResult, LoadSpec, ShardStats, ShardedKv};
use tla_telemetry::json::JsonValue;

/// Schema tag of [`report_json`] output.
pub const KV_SCHEMA: &str = "tla-kv-report-v1";

/// Builds the full kv-bench report: config echo, merged totals, the
/// per-shard counter breakdown, and the load result's throughput.
pub fn report_json(kv: &ShardedKv, spec: &LoadSpec, result: &LoadResult) -> JsonValue {
    JsonValue::object([
        ("schema", JsonValue::from(KV_SCHEMA)),
        ("config", config_json(kv.config(), spec)),
        ("totals", totals_json(kv, result)),
        (
            "shards",
            JsonValue::array(kv.per_shard_stats().iter().map(stats_json)),
        ),
    ])
}

fn config_json(cfg: &KvConfig, spec: &LoadSpec) -> JsonValue {
    JsonValue::object([
        ("policy", JsonValue::from(cfg.policy.name())),
        ("capacity", JsonValue::from(cfg.capacity)),
        ("shards", JsonValue::from(cfg.shards)),
        ("sets_per_shard", JsonValue::from(cfg.sets_per_shard())),
        ("ways", JsonValue::from(cfg.ways)),
        ("workload", JsonValue::from(spec.workload.name())),
        ("keys", JsonValue::from(spec.keys)),
        ("threads", JsonValue::from(spec.threads)),
        ("ops_per_thread", JsonValue::from(spec.ops_per_thread)),
        ("put_permille", JsonValue::from(spec.put_permille)),
        ("seed", JsonValue::from(spec.seed)),
    ])
}

fn totals_json(kv: &ShardedKv, result: &LoadResult) -> JsonValue {
    let t = kv.stats();
    let JsonValue::Obj(mut pairs) = stats_json(&t) else {
        unreachable!("stats_json builds an object");
    };
    pairs.extend([
        ("occupancy".to_string(), JsonValue::from(kv.occupancy())),
        ("hit_rate".to_string(), JsonValue::from(t.hit_rate())),
        ("ops".to_string(), JsonValue::from(result.total_ops())),
        (
            "elapsed_secs".to_string(),
            JsonValue::from(result.elapsed.as_secs_f64()),
        ),
        (
            "ops_per_sec".to_string(),
            JsonValue::from(result.ops_per_sec()),
        ),
    ]);
    JsonValue::Obj(pairs)
}

fn stats_json(s: &ShardStats) -> JsonValue {
    JsonValue::object([
        ("gets", JsonValue::from(s.gets)),
        ("hits", JsonValue::from(s.hits)),
        ("misses", JsonValue::from(s.misses)),
        ("puts", JsonValue::from(s.puts)),
        ("inserts", JsonValue::from(s.inserts)),
        ("evictions", JsonValue::from(s.evictions)),
        ("removes", JsonValue::from(s.removes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_load, KvPolicy};

    #[test]
    fn report_is_parseable_and_consistent() {
        let kv = ShardedKv::new(KvConfig::new(1024, KvPolicy::S3Fifo)).unwrap();
        let spec = LoadSpec::new(4_096, 5_000, 2);
        let res = run_load(&kv, &spec);
        let text = report_json(&kv, &spec, &res).to_string();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some(KV_SCHEMA));
        let shards = v.get("shards").and_then(JsonValue::as_array).unwrap();
        assert_eq!(shards.len(), kv.config().shards);
        let field = |obj: &JsonValue, k: &str| obj.get(k).and_then(JsonValue::as_u64).unwrap();
        let totals = v.get("totals").unwrap();
        for key in ["gets", "hits", "misses", "puts", "inserts", "evictions"] {
            let sum: u64 = shards.iter().map(|s| field(s, key)).sum();
            assert_eq!(sum, field(totals, key), "shard {key} must sum to total");
        }
        assert_eq!(field(totals, "ops"), 10_000);
        assert!(totals.get("ops_per_sec").unwrap().as_f64().unwrap() > 0.0);
    }
}
