//! JSON summary of a kv load run, in the house telemetry dialect.
//!
//! Shape mirrors the simulator's `RunReport`: a `schema_version`-tagged
//! object with a config echo, global totals, and a per-shard breakdown,
//! encoded with the same dependency-free [`JsonValue`] writer so
//! `kv-bench --json` output composes with the existing report tooling.

use crate::{KvConfig, LoadResult, LoadSpec, ShardStats, ShardedKv};
use tla_telemetry::json::JsonValue;
use tla_telemetry::Window;

/// Schema tag of [`report_json`] output.
pub const KV_SCHEMA: &str = "tla-kv-report-v1";

/// Builds the full kv-bench report: config echo, merged totals, the
/// per-shard counter breakdown, and the load result's throughput. When
/// the config enables a window, a `series` key carries each shard's
/// windowed hit-rate time series; without one the key is absent, so
/// windowless reports are byte-identical to pre-series builds.
pub fn report_json(kv: &ShardedKv, spec: &LoadSpec, result: &LoadResult) -> JsonValue {
    let mut pairs = vec![
        ("schema".to_string(), JsonValue::from(KV_SCHEMA)),
        ("config".to_string(), config_json(kv.config(), spec)),
        ("totals".to_string(), totals_json(kv, result)),
        (
            "shards".to_string(),
            JsonValue::array(kv.per_shard_stats().iter().map(stats_json)),
        ),
    ];
    if let Some(series) = kv.per_shard_series() {
        pairs.push((
            "series".to_string(),
            JsonValue::array(
                series
                    .iter()
                    .map(|windows| JsonValue::array(windows.iter().map(window_json))),
            ),
        ));
    }
    JsonValue::Obj(pairs)
}

fn config_json(cfg: &KvConfig, spec: &LoadSpec) -> JsonValue {
    let mut pairs = vec![
        ("policy".to_string(), JsonValue::from(cfg.policy.name())),
        ("capacity".to_string(), JsonValue::from(cfg.capacity)),
        ("shards".to_string(), JsonValue::from(cfg.shards)),
        (
            "sets_per_shard".to_string(),
            JsonValue::from(cfg.sets_per_shard()),
        ),
        ("ways".to_string(), JsonValue::from(cfg.ways)),
        (
            "workload".to_string(),
            JsonValue::from(spec.workload.name()),
        ),
        ("keys".to_string(), JsonValue::from(spec.keys)),
        ("threads".to_string(), JsonValue::from(spec.threads)),
        (
            "ops_per_thread".to_string(),
            JsonValue::from(spec.ops_per_thread),
        ),
        (
            "put_permille".to_string(),
            JsonValue::from(spec.put_permille),
        ),
        ("seed".to_string(), JsonValue::from(spec.seed)),
    ];
    if let Some(w) = cfg.window {
        pairs.push(("window".to_string(), JsonValue::from(w)));
    }
    JsonValue::Obj(pairs)
}

/// One shard window: the op span it covers plus the get/hit counts and
/// hit rate inside it (the shard projects gets/misses into the LLC
/// access/miss slots — see `ShardStats::as_core_stats`).
fn window_json(w: &Window) -> JsonValue {
    let gets = w.per_core[0].llc_accesses;
    let misses = w.per_core[0].llc_misses;
    let hit_rate = if gets == 0 {
        0.0
    } else {
        (gets - misses) as f64 / gets as f64
    };
    JsonValue::object([
        ("ops_start", JsonValue::from(w.start_instr)),
        ("ops_end", JsonValue::from(w.end_instr)),
        ("gets", JsonValue::from(gets)),
        ("hits", JsonValue::from(gets - misses)),
        ("hit_rate", JsonValue::from(hit_rate)),
    ])
}

fn totals_json(kv: &ShardedKv, result: &LoadResult) -> JsonValue {
    let t = kv.stats();
    let JsonValue::Obj(mut pairs) = stats_json(&t) else {
        unreachable!("stats_json builds an object");
    };
    pairs.extend([
        ("occupancy".to_string(), JsonValue::from(kv.occupancy())),
        ("hit_rate".to_string(), JsonValue::from(t.hit_rate())),
        ("ops".to_string(), JsonValue::from(result.total_ops())),
        (
            "elapsed_secs".to_string(),
            JsonValue::from(result.elapsed.as_secs_f64()),
        ),
        (
            "ops_per_sec".to_string(),
            JsonValue::from(result.ops_per_sec()),
        ),
    ]);
    JsonValue::Obj(pairs)
}

fn stats_json(s: &ShardStats) -> JsonValue {
    JsonValue::object([
        ("gets", JsonValue::from(s.gets)),
        ("hits", JsonValue::from(s.hits)),
        ("misses", JsonValue::from(s.misses)),
        ("puts", JsonValue::from(s.puts)),
        ("inserts", JsonValue::from(s.inserts)),
        ("evictions", JsonValue::from(s.evictions)),
        ("removes", JsonValue::from(s.removes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_load, KvPolicy};

    #[test]
    fn report_is_parseable_and_consistent() {
        let kv = ShardedKv::new(KvConfig::new(1024, KvPolicy::S3Fifo)).unwrap();
        let spec = LoadSpec::new(4_096, 5_000, 2);
        let res = run_load(&kv, &spec);
        let text = report_json(&kv, &spec, &res).to_string();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some(KV_SCHEMA));
        let shards = v.get("shards").and_then(JsonValue::as_array).unwrap();
        assert_eq!(shards.len(), kv.config().shards);
        let field = |obj: &JsonValue, k: &str| obj.get(k).and_then(JsonValue::as_u64).unwrap();
        let totals = v.get("totals").unwrap();
        for key in ["gets", "hits", "misses", "puts", "inserts", "evictions"] {
            let sum: u64 = shards.iter().map(|s| field(s, key)).sum();
            assert_eq!(sum, field(totals, key), "shard {key} must sum to total");
        }
        assert_eq!(field(totals, "ops"), 10_000);
        assert!(totals.get("ops_per_sec").unwrap().as_f64().unwrap() > 0.0);
        // No window configured: the series key (and the config echo's
        // window key) must be absent, keeping the report identical to
        // pre-series builds.
        assert!(v.get("series").is_none());
        assert!(v.get("config").unwrap().get("window").is_none());
    }

    #[test]
    fn windowed_report_carries_per_shard_hit_rate_series() {
        let kv = ShardedKv::new(KvConfig::new(1024, KvPolicy::Clock).with_window(1_000)).unwrap();
        let spec = LoadSpec::new(4_096, 5_000, 2);
        let res = run_load(&kv, &spec);
        let text = report_json(&kv, &spec, &res).to_string();
        let v = JsonValue::parse(&text).unwrap();
        let field = |obj: &JsonValue, k: &str| obj.get(k).and_then(JsonValue::as_u64).unwrap();
        assert_eq!(
            field(v.get("config").unwrap(), "window"),
            1_000,
            "config echoes the window size"
        );
        let series = v.get("series").and_then(JsonValue::as_array).unwrap();
        assert_eq!(series.len(), kv.config().shards);
        // Each shard's windows tile its op count and sum back to its
        // counters.
        let shards = v.get("shards").and_then(JsonValue::as_array).unwrap();
        for (windows, shard) in series.iter().zip(shards) {
            let windows = windows.as_array().unwrap();
            assert!(!windows.is_empty(), "every shard saw load");
            let mut prev_end = 0;
            let mut gets = 0;
            let mut hits = 0;
            for w in windows {
                assert_eq!(field(w, "ops_start"), prev_end, "windows tile the op axis");
                prev_end = field(w, "ops_end");
                gets += field(w, "gets");
                hits += field(w, "hits");
                let rate = w.get("hit_rate").unwrap().as_f64().unwrap();
                assert!((0.0..=1.0).contains(&rate));
            }
            assert_eq!(gets, field(shard, "gets"));
            assert_eq!(hits, field(shard, "hits"));
        }
    }
}
