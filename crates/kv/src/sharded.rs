//! The lock-striped front-end: an array of independently locked shards.
//!
//! Shard selection uses the *top* `log2(shards)` bits of a splitmix64
//! hash of the key, while the set index inside a shard uses the key's
//! *low* bits directly (see [`CacheConfig::set_of`]). The two reads
//! consume disjoint bit ranges of independent values, so striping never
//! folds whole sets onto one shard the way low-bit shard selection
//! would.
//!
//! [`CacheConfig::set_of`]: tla_cache::CacheConfig::set_of

use crate::shard::{Shard, ShardStats};
use crate::{KvConfig, KvError};
use std::sync::Mutex;

/// Pads each shard's mutex onto its own cache line so neighbouring
/// shards' lock words never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// A concurrent sharded cache: `2^k` lock stripes over [`Shard`]s.
///
/// All operations take `&self`; each locks exactly one shard for the
/// duration of one single-threaded shard operation. See the crate docs
/// for the full architecture and the [`crate::KvConfig`] knobs.
pub struct ShardedKv {
    shards: Vec<CachePadded<Mutex<Shard>>>,
    /// `64 - log2(shards)`: shifting a hash right by this keeps the top
    /// bits that index the shard array.
    shard_shift: u32,
    config: KvConfig,
}

impl ShardedKv {
    /// Builds the shard array described by `config`.
    pub fn new(config: KvConfig) -> Result<ShardedKv, KvError> {
        if config.shards == 0 || !config.shards.is_power_of_two() {
            return Err(KvError::BadShards(config.shards));
        }
        let sets = config.sets_per_shard();
        let shards = (0..config.shards)
            .map(|i| {
                Shard::new(
                    config.policy,
                    sets,
                    config.ways,
                    config.seed ^ i as u64,
                    config.window,
                )
                .map(|s| CachePadded(Mutex::new(s)))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedKv {
            shards,
            shard_shift: 64 - config.shards.trailing_zeros(),
            config,
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// Total line capacity actually allocated (capacity rounded to the
    /// power-of-two set geometry).
    pub fn capacity(&self) -> usize {
        self.config.shards * self.config.sets_per_shard() * self.config.ways
    }

    /// The shard index for `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        if self.config.shards == 1 {
            return 0;
        }
        (splitmix64(key) >> self.shard_shift) as usize
    }

    /// Looks `key` up.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.shard(key).get(key)
    }

    /// Inserts or updates `key`.
    pub fn put(&self, key: u64, value: u64) {
        self.shard(key).put(key, value)
    }

    /// Admits `key` only if absent; returns whether it was admitted.
    pub fn admit(&self, key: u64, value: u64) -> bool {
        self.shard(key).admit(key, value)
    }

    /// Drops `key`; returns whether a resident entry was dropped.
    pub fn remove(&self, key: u64) -> bool {
        self.shard(key).remove(key)
    }

    /// Resident entries across all shards.
    pub fn occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.0.lock().expect("shard lock poisoned").occupancy())
            .sum()
    }

    /// Each shard's windowed hit-rate series (final partial windows
    /// flushed), in shard order; `None` unless the config asked for one
    /// via [`crate::KvConfig::with_window`]. Windows are clocked by each
    /// shard's own op count, so the series is well-defined even though
    /// threads interleave: every op lands in exactly one shard window.
    pub fn per_shard_series(&self) -> Option<Vec<Vec<tla_telemetry::Window>>> {
        self.config.window?;
        Some(
            self.shards
                .iter()
                .map(|s| {
                    s.0.lock()
                        .expect("shard lock poisoned")
                        .series_windows()
                        .expect("window is configured, every shard has a series")
                })
                .collect(),
        )
    }

    /// Each shard's counters, in shard order.
    pub fn per_shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| s.0.lock().expect("shard lock poisoned").stats())
            .collect()
    }

    /// Global counters: the exact sum of [`ShardedKv::per_shard_stats`].
    pub fn stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for s in self.per_shard_stats() {
            total.merge(&s);
        }
        total
    }

    fn shard(&self, key: u64) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[self.shard_of(key)]
            .0
            .lock()
            .expect("shard lock poisoned")
    }
}

/// Fast 64-bit mixer (splitmix64 finalizer): every input bit avalanches
/// into the top bits the shard index is cut from.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KvPolicy;

    #[test]
    fn rejects_non_power_of_two_shards() {
        for shards in [0, 3, 6, 12] {
            let cfg = KvConfig::new(4096, KvPolicy::Lru).with_shards(shards);
            let err = ShardedKv::new(cfg).err();
            assert_eq!(err, Some(KvError::BadShards(shards)));
        }
    }

    #[test]
    fn shard_selection_is_balanced_and_stable() {
        let kv = ShardedKv::new(KvConfig::new(4096, KvPolicy::Clock)).unwrap();
        let mut counts = vec![0u64; kv.config().shards];
        for key in 0..80_000u64 {
            let s = kv.shard_of(key);
            assert_eq!(s, kv.shard_of(key), "shard choice must be stable");
            counts[s] += 1;
        }
        let expect = 80_000 / counts.len() as u64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "shard {i} got {c} of ~{expect} keys"
            );
        }
    }

    #[test]
    fn single_shard_behaves_like_a_plain_cache() {
        let kv = ShardedKv::new(KvConfig::new(64, KvPolicy::Lru).with_shards(1)).unwrap();
        assert_eq!(kv.capacity(), 64);
        for k in 0..64u64 {
            kv.put(k, k * 2);
        }
        for k in 0..64u64 {
            assert_eq!(kv.get(k), Some(k * 2), "key {k} must fit in capacity");
        }
        assert_eq!(kv.occupancy(), 64);
        let t = kv.stats();
        assert_eq!(t.inserts, 64);
        assert_eq!(t.evictions, 0);
    }

    #[test]
    fn capacity_is_honored_across_shards() {
        for policy in KvPolicy::ALL {
            let kv = ShardedKv::new(KvConfig::new(4096, policy)).unwrap();
            assert_eq!(kv.capacity(), 4096);
            for k in 0..20_000u64 {
                kv.admit(k, k);
            }
            assert!(kv.occupancy() <= 4096, "{policy}");
            let t = kv.stats();
            assert_eq!(
                kv.occupancy() as u64,
                t.inserts - t.evictions - t.removes,
                "{policy}"
            );
        }
    }
}
