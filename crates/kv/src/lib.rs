//! `tla-kv` — a lock-striped, sharded concurrent key-value cache service
//! built on the simulator's SoA set-associative core.
//!
//! The replacement-policy zoo in `tla-cache` was born inside a
//! single-threaded hardware simulator; this crate is the "millions of
//! users" step: the same allocation-free [`SetAssocCache`] hot path
//! (SIMD set probes, packed way bitmaps, per-way policy words), run
//! concurrently behind a striped-lock shard array with a service-style
//! `get/put/admit/remove` API.
//!
//! # Architecture
//!
//! * [`ShardedKv`] owns `2^k` shards, each a `Mutex<`[`Shard`]`>` padded
//!   to its own cache line. A key picks its shard by the *top* bits of a
//!   splitmix64 hash, and its set within the shard by the key's low bits
//!   — two independent bit ranges, so shard striping never starves sets.
//! * A [`Shard`] is one or more `SetAssocCache`s. Keys are line
//!   addresses; the 64-bit value payload rides in the per-way directory
//!   word (unused outside the simulator's LLC — see
//!   [`SetAssocCache::payload`]), so the service adds **zero** bytes of
//!   per-line storage to the SoA layout.
//! * Per-shard [`ShardStats`] counters are plain `u64`s mutated under
//!   the shard lock and summed on demand — no atomics on the hot path.
//!   The merge is exact: every operation increments exactly one shard's
//!   counters, so the sum over shards equals the global totals (the
//!   concurrency test pins this under 1/4/8 threads).
//!
//! # Policies
//!
//! Service policies map onto hardware replacers ([`KvPolicy`]):
//!
//! | service name | construction                                        |
//! |--------------|-----------------------------------------------------|
//! | `lru`        | one cache, [`Policy::Lru`]                          |
//! | `fifo`       | one cache, [`Policy::Fifo`]                         |
//! | `clock`      | one cache, [`Policy::Clock`] (second-chance)        |
//! | `s3fifo`     | small FIFO + Clock main + ghost FIFO (scan-resistant admission) |
//!
//! # Example
//!
//! ```
//! use tla_kv::{KvConfig, KvPolicy, ShardedKv};
//!
//! let kv = ShardedKv::new(KvConfig::new(4096, KvPolicy::Clock).with_shards(4)).unwrap();
//! assert_eq!(kv.get(17), None);
//! kv.put(17, 1717);
//! assert_eq!(kv.get(17), Some(1717));
//! let t = kv.stats();
//! assert_eq!((t.gets, t.hits, t.misses, t.puts), (2, 1, 1, 1));
//! ```
//!
//! [`SetAssocCache`]: tla_cache::SetAssocCache
//! [`SetAssocCache::payload`]: tla_cache::SetAssocCache::payload
//! [`Policy::Lru`]: tla_cache::Policy::Lru
//! [`Policy::Fifo`]: tla_cache::Policy::Fifo
//! [`Policy::Clock`]: tla_cache::Policy::Clock

mod loadgen;
mod report;
mod shard;
mod sharded;

pub use loadgen::{run_load, run_thread, value_of, LoadResult, LoadSpec, ThreadLoad};
pub use report::report_json;
pub use shard::{Shard, ShardStats};
pub use sharded::ShardedKv;

use std::fmt;

/// A service-grade cache policy, named `PolicySpec`-style (the lowercase
/// string the CLI and bench matrix use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KvPolicy {
    /// Least-recently-used over the whole shard.
    Lru,
    /// Plain FIFO (the no-second-chance floor).
    Fifo,
    /// Second-chance clock: near-LRU hit ratio at FIFO update cost.
    #[default]
    Clock,
    /// S3-FIFO-style scan-resistant composition: a small probationary
    /// FIFO absorbs one-shot keys, a ghost queue of recently rejected
    /// keys routes re-requested ones into a Clock-managed main area.
    S3Fifo,
}

impl KvPolicy {
    /// Every policy, in display order.
    pub const ALL: [KvPolicy; 4] = [
        KvPolicy::Lru,
        KvPolicy::Fifo,
        KvPolicy::Clock,
        KvPolicy::S3Fifo,
    ];

    /// Parses the CLI spelling (`lru` / `fifo` / `clock` / `s3fifo`).
    pub fn parse(text: &str) -> Option<KvPolicy> {
        match text {
            "lru" => Some(KvPolicy::Lru),
            "fifo" => Some(KvPolicy::Fifo),
            "clock" => Some(KvPolicy::Clock),
            "s3fifo" => Some(KvPolicy::S3Fifo),
            _ => None,
        }
    }

    /// The spelling [`KvPolicy::parse`] accepts.
    pub fn name(&self) -> &'static str {
        match self {
            KvPolicy::Lru => "lru",
            KvPolicy::Fifo => "fifo",
            KvPolicy::Clock => "clock",
            KvPolicy::S3Fifo => "s3fifo",
        }
    }
}

impl fmt::Display for KvPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`ShardedKv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Total line capacity across all shards (rounded down to what the
    /// power-of-two set geometry can hold).
    pub capacity: usize,
    /// Number of shards; must be a power of two.
    pub shards: usize,
    /// Associativity within each shard.
    pub ways: usize,
    /// The replacement/admission policy.
    pub policy: KvPolicy,
    /// RNG seed (only consumed by randomized policies; kept for
    /// reproducible construction).
    pub seed: u64,
    /// When set, every shard collects a windowed hit-rate time series,
    /// closing a window every `window` operations *on that shard* (the
    /// shard's own op count is the time axis — wall clock would make the
    /// series racy). `None` (the default) keeps the hot path to plain
    /// counters.
    pub window: Option<u64>,
}

impl KvConfig {
    /// A config holding about `capacity` entries under `policy`, with the
    /// default geometry (8-way, shard count matching small machines).
    pub fn new(capacity: usize, policy: KvPolicy) -> KvConfig {
        KvConfig {
            capacity,
            shards: 8,
            ways: 8,
            policy,
            seed: 0,
            window: None,
        }
    }

    /// Overrides the shard count (power of two).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> KvConfig {
        self.shards = shards;
        self
    }

    /// Overrides the associativity.
    #[must_use]
    pub fn with_ways(mut self, ways: usize) -> KvConfig {
        self.ways = ways;
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> KvConfig {
        self.seed = seed;
        self
    }

    /// Turns on the per-shard windowed hit-rate series, closing a window
    /// every `window` shard operations (0 is clamped to 1 by the series).
    #[must_use]
    pub fn with_window(mut self, window: u64) -> KvConfig {
        self.window = Some(window);
        self
    }

    /// Sets per shard implied by the capacity: the largest power of two
    /// such that `shards * sets * ways <= capacity`, floored at 1.
    pub fn sets_per_shard(&self) -> usize {
        let per_shard = self.capacity / self.shards.max(1) / self.ways.max(1);
        if per_shard == 0 {
            1
        } else {
            // largest power of two <= per_shard
            1 << (usize::BITS - 1 - per_shard.leading_zeros())
        }
    }
}

/// Construction errors for [`ShardedKv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The shard count is zero or not a power of two.
    BadShards(usize),
    /// The underlying cache geometry was rejected.
    BadGeometry(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::BadShards(n) => write!(f, "shard count {n} is not a power of two"),
            KvError::BadGeometry(e) => write!(f, "bad cache geometry: {e}"),
        }
    }
}

impl std::error::Error for KvError {}
