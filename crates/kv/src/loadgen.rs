//! Multi-threaded load generator for [`ShardedKv`].
//!
//! Each worker thread drives a deterministic [`KeyStream`] (seeded from
//! the spec seed and its thread index) plus an equally deterministic
//! get/put coin, so a run's *issued* operation mix is a pure function of
//! the spec — which is what lets the concurrency test replay the same
//! per-thread streams single-threaded and demand identical counters.
//!
//! The per-op protocol mirrors a read-through cache service: a `put`
//! writes through, a `get` that misses fetches from the imaginary
//! backing store ([`value_of`]) and admits the result.

use crate::ShardedKv;
use std::time::{Duration, Instant};
use tla_rng::SmallRng;
use tla_workloads::{KeyStream, KvWorkload};

/// What to run: the knob set behind `tla-cli kv-bench`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Shape of each thread's key stream.
    pub workload: KvWorkload,
    /// Keyspace size.
    pub keys: u64,
    /// Operations issued by each thread.
    pub ops_per_thread: u64,
    /// Worker thread count.
    pub threads: usize,
    /// Puts per 1000 operations (the rest are gets).
    pub put_permille: u32,
    /// Base seed; thread `t` streams from `seed + t` derivations.
    pub seed: u64,
}

impl LoadSpec {
    /// A zipf read-mostly spec (5% puts), the service default.
    pub fn new(keys: u64, ops_per_thread: u64, threads: usize) -> LoadSpec {
        LoadSpec {
            workload: KvWorkload::ZIPF,
            keys,
            ops_per_thread,
            threads,
            put_permille: 50,
            seed: 1,
        }
    }
}

/// What one worker thread issued and observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadLoad {
    /// The thread index.
    pub thread: usize,
    /// Operations issued (`gets + puts`).
    pub ops: u64,
    /// Get operations issued.
    pub gets: u64,
    /// Put operations issued.
    pub puts: u64,
    /// Gets that hit (thread-observed; sums to the service's global hit
    /// counter when the cache started empty).
    pub hits: u64,
    /// Get misses that admitted the backing-store value.
    pub admits: u64,
}

/// The outcome of [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Per-thread tallies, in thread order.
    pub threads: Vec<ThreadLoad>,
    /// Wall-clock time of the threaded region.
    pub elapsed: Duration,
}

impl LoadResult {
    /// Total operations across threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().map(|t| t.ops).sum()
    }

    /// Aggregate throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_ops() as f64 / secs
        }
    }

    /// Thread-observed hit fraction of all gets.
    pub fn hit_rate(&self) -> f64 {
        let gets: u64 = self.threads.iter().map(|t| t.gets).sum();
        let hits: u64 = self.threads.iter().map(|t| t.hits).sum();
        if gets == 0 {
            0.0
        } else {
            hits as f64 / gets as f64
        }
    }
}

/// The deterministic "backing store": the value every writer and every
/// read-through admission stores for `key`. Makes any cached value
/// verifiable at any time.
pub fn value_of(key: u64) -> u64 {
    key.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5157_4B56 // "QWKV"
}

/// Runs thread `thread`'s share of `spec` against `kv` to completion.
///
/// Public so tests can replay the exact multi-threaded op streams
/// serially (`for t in 0..threads { run_thread(&kv, &spec, t) }`) and
/// compare outcomes.
pub fn run_thread(kv: &ShardedKv, spec: &LoadSpec, thread: usize) -> ThreadLoad {
    let mut keystream = KeyStream::new(spec.workload, spec.keys, spec.seed + thread as u64);
    // Decorrelate the op-type coin from the key stream (which derives its
    // own rng from the same seed) with a fixed salt.
    let mut coin = SmallRng::seed_from_u64((spec.seed + thread as u64) ^ 0xC017_5A17_C017_5A17);
    let mut out = ThreadLoad {
        thread,
        ..ThreadLoad::default()
    };
    for _ in 0..spec.ops_per_thread {
        let key = keystream.next_key();
        out.ops += 1;
        if coin.next_u64() % 1000 < u64::from(spec.put_permille) {
            out.puts += 1;
            kv.put(key, value_of(key));
        } else {
            out.gets += 1;
            match kv.get(key) {
                Some(v) => {
                    debug_assert_eq!(v, value_of(key), "cached value corrupt for key {key}");
                    out.hits += 1;
                }
                None => {
                    // Read-through: fetch and admit. Another thread may
                    // have raced the same key in; admit keeps one copy.
                    if kv.admit(key, value_of(key)) {
                        out.admits += 1;
                    }
                }
            }
        }
    }
    out
}

/// Runs `spec` against `kv` with `spec.threads` worker threads.
pub fn run_load(kv: &ShardedKv, spec: &LoadSpec) -> LoadResult {
    let start = Instant::now();
    let mut threads: Vec<ThreadLoad> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|t| scope.spawn(move || run_thread(kv, spec, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    threads.sort_by_key(|t| t.thread);
    LoadResult { threads, elapsed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvConfig, KvPolicy};

    #[test]
    fn issued_totals_match_service_counters() {
        let kv = ShardedKv::new(KvConfig::new(2048, KvPolicy::Clock)).unwrap();
        let spec = LoadSpec::new(8_192, 20_000, 4);
        let res = run_load(&kv, &spec);
        let t = kv.stats();
        assert_eq!(res.total_ops(), 80_000);
        assert_eq!(t.gets, res.threads.iter().map(|t| t.gets).sum::<u64>());
        assert_eq!(t.puts, res.threads.iter().map(|t| t.puts).sum::<u64>());
        assert_eq!(t.hits, res.threads.iter().map(|t| t.hits).sum::<u64>());
        assert_eq!(t.gets, t.hits + t.misses);
    }

    #[test]
    fn zipf_load_hits_once_warm() {
        let kv = ShardedKv::new(KvConfig::new(4096, KvPolicy::Clock)).unwrap();
        let spec = LoadSpec::new(16_384, 50_000, 2);
        let res = run_load(&kv, &spec);
        // Zipf(1.0) over 16k keys against a 4k cache: the hot set fits,
        // so the hit rate must be substantial.
        assert!(
            res.hit_rate() > 0.5,
            "zipf hit rate {:.3} suspiciously low",
            res.hit_rate()
        );
    }

    #[test]
    fn run_thread_is_deterministic_in_issued_mix() {
        let spec = LoadSpec::new(4_096, 5_000, 1);
        let kv1 = ShardedKv::new(KvConfig::new(1024, KvPolicy::Lru)).unwrap();
        let kv2 = ShardedKv::new(KvConfig::new(1024, KvPolicy::Lru)).unwrap();
        let a = run_thread(&kv1, &spec, 0);
        let b = run_thread(&kv2, &spec, 0);
        assert_eq!(a, b);
        assert!(a.puts > 0 && a.gets > a.puts, "5% put mix expected");
    }
}
