//! Footnote 4: the inclusion problem is independent of the LLC
//! replacement policy.
//!
//! The paper verified the problem occurs under LRU and under intelligent
//! policies (RRIP). This ablation runs the inclusive baseline and QBS
//! under NRU (the paper's default), LRU, SRRIP and DRRIP LLCs.
//!
//! Reproduction target: under every replacement policy the inclusive
//! baseline leaves a gap to non-inclusion that QBS closes.

use tla_bench::BenchEnv;
use tla_cache::Policy;
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Ablation — LLC replacement policy independence (footnote 4)");

    let mixes = env.showcase_mixes();
    let mut t = Table::new(&["LLC replacement", "QBS", "Non-Inclusive"]);
    for policy in [
        Policy::Nru,
        Policy::Lru,
        Policy::Srrip,
        Policy::Drrip,
        Policy::Dip,
    ] {
        tla_bench::bench_progress!("ablation_repl", "{policy}");
        let specs = [
            PolicySpec::baseline().with_llc_replacement(policy),
            PolicySpec::qbs().with_llc_replacement(policy),
            PolicySpec::non_inclusive().with_llc_replacement(policy),
        ];
        let suites = env.run_suite(&mixes, &specs, None);
        let qbs = stats::geomean(suites[1].normalized_throughput(&suites[0]));
        let ni = stats::geomean(suites[2].normalized_throughput(&suites[0]));
        t.add_row(vec![
            policy.to_string(),
            stats::fmt_gain_pct(qbs),
            stats::fmt_gain_pct(ni),
        ]);
    }
    println!(
        "\ninclusion victims under different LLC replacement policies\n(geomean gain vs the inclusive baseline with the same policy)\n{t}"
    );
    println!("expected shape: a positive QBS and non-inclusive gain under every policy —\nthe inclusion problem is not an artifact of NRU");
}
