//! Micro-benchmarks of the simulator's hot paths: raw cache access
//! throughput per replacement policy, hierarchy access under each TLA
//! policy (with and without a telemetry sink), and end-to-end simulation
//! rate. Timed with the in-repo [`tla_bench::time_it`] harness.
//!
//! `TLA_BENCH_MS=<n>` sets the per-benchmark measuring time
//! (default 200 ms).

use std::hint::black_box;
use tla_bench::{bench_progress, time_it, Measurement};
use tla_cache::{CacheConfig, Policy, SetAssocCache};
use tla_core::{CacheHierarchy, HierarchyConfig, TlaPolicy};
use tla_sim::{MixRun, SimConfig};
use tla_telemetry::NullSink;
use tla_types::{AccessKind, CoreId, LineAddr};
use tla_workloads::SpecApp;

fn target_millis() -> u64 {
    std::env::var("TLA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn bench_cache_access(ms: u64) -> Vec<Measurement> {
    [
        Policy::Lru,
        Policy::Nru,
        Policy::Srrip,
        Policy::Plru,
        Policy::Random,
    ]
    .iter()
    .map(|&policy| {
        let cfg = CacheConfig::new("bench", 256 * 1024, 16, policy).unwrap();
        let mut cache = SetAssocCache::new(cfg);
        let mut i = 0u64;
        let m = time_it(&format!("cache_access/touch_fill/{policy}"), ms, || {
            let line = LineAddr::new(i.wrapping_mul(0x9E37_79B9) % 8192);
            if !cache.touch(line) {
                cache.fill(line, false);
            }
            i += 1;
        });
        black_box(cache.occupancy());
        m
    })
    .collect()
}

fn bench_hierarchy_access(ms: u64, with_sink: bool) -> Vec<Measurement> {
    let suffix = if with_sink { "+sink" } else { "" };
    [
        ("baseline", TlaPolicy::baseline()),
        ("tlh_l1", TlaPolicy::tlh_l1()),
        ("eci", TlaPolicy::eci()),
        ("qbs", TlaPolicy::qbs()),
    ]
    .iter()
    .map(|&(label, tla)| {
        let cfg = HierarchyConfig::scaled(2, 8).tla(tla);
        let mut h = CacheHierarchy::new(&cfg);
        if with_sink {
            h.set_sink(NullSink);
        }
        let mut i = 0u64;
        let m = time_it(
            &format!("hierarchy_access/policy/{label}{suffix}"),
            ms,
            || {
                let core = CoreId::new((i % 2) as usize);
                let line = LineAddr::new(i.wrapping_mul(0x9E37_79B9) % 16384);
                h.access(core, line, AccessKind::Load);
                i += 1;
            },
        );
        black_box(h.global_stats().back_invalidates);
        m
    })
    .collect()
}

/// Per-scan cost of each probe kernel at representative widths: the LLC's
/// 16 ways, the old 64-way bitmap ceiling, and the wide victim-cache
/// sweeps the multi-word masks unlock. The needle mostly misses (as real
/// probes do); `black_box` on both inputs keeps the compiler from
/// specializing a kernel to the fixed array.
fn bench_probe_kernels(ms: u64) -> Vec<Measurement> {
    use tla_cache::probe::{probe_naive, probe_portable, ProbeFn};
    let mut out = Vec::new();
    for &ways in &[16usize, 64, 128, 256] {
        let addrs: Vec<LineAddr> = (0..ways as u64)
            .map(|i| LineAddr::new(i * 64 + 7))
            .collect();
        let mut kernels: Vec<(&str, ProbeFn)> =
            vec![("naive", probe_naive), ("scalar4", probe_portable)];
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            kernels.push(("avx2", tla_cache::probe::probe_avx2));
        }
        for (name, func) in kernels {
            let mut i = 0u64;
            let m = time_it(&format!("probe/{name}/ways{ways}"), ms, || {
                let needle = LineAddr::new(i.wrapping_mul(0x9E37_79B9) % (ways as u64 * 64));
                black_box(func(black_box(&addrs), needle));
                i += 1;
            });
            out.push(m);
        }
    }
    out
}

fn bench_end_to_end(ms: u64) -> Measurement {
    let cfg = SimConfig::scaled_down().instructions(25_000);
    time_it("end_to_end/mix_25k_instr_per_thread", ms, || {
        let r = MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum])
            .policy(TlaPolicy::qbs())
            .run();
        black_box(r.throughput());
    })
}

fn main() {
    let ms = target_millis();
    bench_progress!("micro_cache", "measuring {ms} ms per benchmark");
    let mut results = bench_cache_access(ms);
    results.extend(bench_probe_kernels(ms));
    results.extend(bench_hierarchy_access(ms, false));
    results.extend(bench_hierarchy_access(ms, true));
    results.push(bench_end_to_end(ms));
    for m in &results {
        println!("{}", m.line());
    }
}
