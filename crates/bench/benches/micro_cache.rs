//! Criterion micro-benchmarks of the simulator's hot paths: raw cache
//! access throughput per replacement policy, hierarchy access under each
//! TLA policy, and end-to-end simulation rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tla_cache::{CacheConfig, Policy, SetAssocCache};
use tla_core::{CacheHierarchy, HierarchyConfig, TlaPolicy};
use tla_sim::{MixRun, SimConfig};
use tla_types::{AccessKind, CoreId, LineAddr};
use tla_workloads::SpecApp;

fn bench_cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    g.throughput(Throughput::Elements(1));
    for policy in [Policy::Lru, Policy::Nru, Policy::Srrip, Policy::Plru, Policy::Random] {
        g.bench_with_input(
            BenchmarkId::new("touch_fill", policy.to_string()),
            &policy,
            |b, &policy| {
                let cfg = CacheConfig::new("bench", 256 * 1024, 16, policy).unwrap();
                let mut cache = SetAssocCache::new(cfg);
                let mut i = 0u64;
                b.iter(|| {
                    let line = LineAddr::new(i.wrapping_mul(0x9E37_79B9) % 8192);
                    if !cache.touch(line) {
                        cache.fill(line, false);
                    }
                    i += 1;
                });
            },
        );
    }
    g.finish();
}

fn bench_hierarchy_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy_access");
    g.throughput(Throughput::Elements(1));
    for (label, tla) in [
        ("baseline", TlaPolicy::baseline()),
        ("tlh_l1", TlaPolicy::tlh_l1()),
        ("eci", TlaPolicy::eci()),
        ("qbs", TlaPolicy::qbs()),
    ] {
        g.bench_function(BenchmarkId::new("policy", label), |b| {
            let cfg = HierarchyConfig::scaled(2, 8).tla(tla);
            let mut h = CacheHierarchy::new(&cfg);
            let mut i = 0u64;
            b.iter(|| {
                let core = CoreId::new((i % 2) as usize);
                let line = LineAddr::new(i.wrapping_mul(0x9E37_79B9) % 16384);
                h.access(core, line, AccessKind::Load);
                i += 1;
            });
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("mix_25k_instr_per_thread", |b| {
        let cfg = SimConfig::scaled_down().instructions(25_000);
        b.iter(|| {
            MixRun::new(&cfg, &[SpecApp::Sjeng, SpecApp::Libquantum])
                .policy(TlaPolicy::qbs())
                .run()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_hierarchy_access,
    bench_end_to_end
);
criterion_main!(benches);
