//! Table I: L1/L2/LLC MPKI of the 15 representative SPEC CPU2006
//! benchmarks run in isolation, without prefetching.
//!
//! Reproduction target: the category structure — CCF apps have near-zero
//! L2 MPKI, LLCF apps have substantial L2 MPKI but much lower LLC MPKI,
//! LLCT apps have LLC MPKI close to their L2 MPKI.

use tla_bench::BenchEnv;
use tla_sim::{mpki_table, Table};
use tla_workloads::Category;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Table I — isolated MPKI (prefetcher off)");

    let rows = mpki_table(&env.cfg);

    let mut t = Table::new(&["app", "category", "L1 MPKI", "L2 MPKI", "LLC MPKI"]);
    for r in &rows {
        t.add_row(vec![
            r.app.short_name().to_string(),
            r.app.category().to_string(),
            format!("{:.2}", r.l1_mpki),
            format!("{:.2}", r.l2_mpki),
            format!("{:.2}", r.llc_mpki),
        ]);
    }
    println!("\nTable I — MPKI of representative apps (no prefetching)\n{t}");

    // Category sanity summary, mirroring §IV-B's classification criteria.
    let mut ok = true;
    for r in &rows {
        let fine = match r.app.category() {
            Category::CoreCacheFitting => r.l2_mpki < 2.0,
            Category::LlcFitting => r.l2_mpki >= 2.0 && r.llc_mpki < 0.8 * r.l2_mpki,
            Category::LlcThrashing => r.llc_mpki >= 0.6 * r.l2_mpki && r.llc_mpki > 4.0,
        };
        if !fine {
            ok = false;
            println!(
                "note: {} ({}) off-profile: L2 {:.2}, LLC {:.2}",
                r.app.short_name(),
                r.app.category(),
                r.l2_mpki,
                r.llc_mpki
            );
        }
    }
    println!(
        "category check: {}",
        if ok {
            "all apps in profile"
        } else {
            "see notes above"
        }
    );
}
