//! Figure 7: performance of Query Based Selection.
//!
//! Per-mix bars for QBS applied at each cache level, the 105-mix s-curve
//! against non-inclusion, and the query-limit sensitivity sweep
//! (1/2/4/8 queries per miss).
//!
//! Reproduction target: QBS-IL1 > QBS-DL1 on average, QBS-L1 additive of
//! both, QBS-L1-L2 approaches (the paper: slightly exceeds) non-inclusive
//! performance, and one or two queries capture nearly all of the benefit.

use tla_bench::{bar_table, print_s_curve, BenchEnv};
use tla_sim::{MixRun, PolicySpec};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 7 — Query Based Selection");

    let showcase = env.showcase_mixes();
    let all = env.all_mixes();
    let mut mixes = showcase.clone();
    mixes.extend(all.iter().cloned());

    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs_il1(),
        PolicySpec::qbs_dl1(),
        PolicySpec::qbs_l1(),
        PolicySpec::qbs_l2(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
    ];
    tla_bench::bench_progress!(
        "fig7",
        "running {} specs x {} mixes",
        specs.len(),
        mixes.len()
    );
    let suites = env.run_suite(&mixes, &specs, None);

    let n = showcase.len();
    let series: Vec<(&str, Vec<f64>, Vec<f64>)> = suites[1..]
        .iter()
        .map(|s| {
            let (sc, al) = tla_bench::split_series(s, &suites[0], n);
            (s.spec.name.as_str(), sc, al)
        })
        .collect();
    println!(
        "\nFigure 7 — throughput normalized to the inclusive baseline\n{}",
        bar_table(&showcase, &series)
    );

    let ni = &series[5].2;
    let qbs = &series[4].2;
    print_s_curve(
        "Figure 7 s-curve (105 mixes)",
        &all,
        ni,
        &[("QBS", qbs), ("Non-Inclusive", ni)],
    );

    let gm = |v: &[f64]| stats::geomean(v.iter().copied()).unwrap_or(1.0);
    println!(
        "\ngeomean: QBS {:+.1}%, non-inclusive {:+.1}% (paper: +6.5% vs +6.1%)",
        (gm(qbs) - 1.0) * 100.0,
        (gm(ni) - 1.0) * 100.0
    );

    // Query-limit sensitivity (paper: 1/2/4/8 queries give 6.2/6.5/6.6/6.6%).
    println!("\nquery-limit sensitivity (geomean over 12 showcase mixes):");
    let base12 = &suites[0].runs[..n];
    for q in [1usize, 2, 4, 8] {
        let spec = PolicySpec::qbs_limited(q);
        let vals: Vec<f64> = showcase
            .iter()
            .zip(base12)
            .map(|(mix, b)| {
                MixRun::new(&env.cfg, &mix.apps)
                    .spec(&spec)
                    .run()
                    .throughput()
                    / b.throughput()
            })
            .collect();
        println!(
            "  {q} queries -> {}",
            stats::fmt_ratio(stats::geomean(vals))
        );
    }

    // Query traffic: like ECI, proportional to LLC misses.
    let queries: u64 = suites[5].runs[n..]
        .iter()
        .map(|r| r.global.qbs_queries)
        .sum();
    let rejections: u64 = suites[5].runs[n..]
        .iter()
        .map(|r| r.global.qbs_rejections)
        .sum();
    let evictions: u64 = suites[5].runs[n..]
        .iter()
        .map(|r| r.global.llc_evictions)
        .sum();
    println!(
        "\nQBS traffic: {:.2} queries per LLC eviction, {:.1}% of queried candidates rejected",
        queries as f64 / evictions.max(1) as f64,
        rejections as f64 / queries.max(1) as f64 * 100.0
    );
}
