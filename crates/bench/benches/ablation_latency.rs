//! §IV-A latency-independence claim: "The proposed policies do not rely on
//! the specific latencies used. We have verified that the proposed
//! policies perform well for different latencies including pure functional
//! cache simulation."
//!
//! This ablation re-runs the showcase mixes under QBS with halved and
//! doubled memory latency and under a pure functional model (all levels
//! cost one cycle, so throughput differences come from miss *counts*
//! alone).
//!
//! Reproduction target: QBS's gain is positive at every latency point and
//! grows with the memory penalty; even the functional model shows a gain
//! (from eliminated misses), confirming the mechanism is not a timing
//! artifact.

use tla_bench::BenchEnv;
use tla_cpu::{CoreModelConfig, Latencies};
use tla_sim::{run_mix_suite_warm_start_cached, PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Ablation — latency independence (§IV-A)");

    let mixes = env.showcase_mixes();
    // Latencies are part of the WarmCache key, so each latency point gets
    // its own cached warm images in the shared directory — re-running the
    // ablation over an unchanged config skips all warm-up work, like
    // every other figure bench.
    let cache = env.warm_cache();
    let points = [
        (
            "memory 75",
            Latencies {
                memory: 75,
                ..Default::default()
            },
        ),
        ("memory 150 (paper)", Latencies::default()),
        (
            "memory 300",
            Latencies {
                memory: 300,
                ..Default::default()
            },
        ),
        (
            "functional (all 1)",
            Latencies {
                l1: 1,
                l2: 1,
                llc: 1,
                memory: 1,
            },
        ),
    ];

    let mut t = Table::new(&["latency model", "QBS vs inclusive", "miss reduction"]);
    for (label, lat) in points {
        let cfg = env.cfg.clone().core_model(CoreModelConfig {
            latencies: lat,
            ..Default::default()
        });
        let suites = run_mix_suite_warm_start_cached(
            &cfg,
            &mixes,
            &[PolicySpec::baseline(), PolicySpec::qbs()],
            None,
            cache.as_ref(),
        )
        .expect("resuming a just-written warm checkpoint cannot fail");
        let g = stats::geomean(suites[1].normalized_throughput(&suites[0]));
        let red = stats::mean(suites[1].miss_reduction_pct(&suites[0])).unwrap_or(0.0);
        t.add_row(vec![
            label.to_string(),
            stats::fmt_gain_pct(g),
            format!("{red:+.1}%"),
        ]);
        tla_bench::bench_progress!("ablation_latency", "{label} done");
    }
    println!("\nQBS gain across latency models (12 showcase mixes)\n{t}");
    println!("expected shape: positive throughput gain everywhere, growing with the\nmemory penalty; miss reduction roughly constant (it is latency-free)");
}
