//! §V-E footnote 6: the "modified QBS" ablation.
//!
//! Modified QBS back-invalidates every rejected victim candidate from the
//! core caches (like ECI would) while still promoting it in the LLC. The
//! paper finds it performs like plain QBS, proving that QBS's benefit
//! comes from avoiding *memory latency*, not from avoiding the LLC hit
//! penalty on rescued lines.

use tla_bench::BenchEnv;
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Ablation — modified QBS (invalidate-on-query, §V-E fn.6)");

    let mixes = env.showcase_mixes();
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::qbs_invalidating(),
    ];
    let suites = env.run_suite(&mixes, &specs, None);

    let mut t = Table::new(&["mix", "QBS", "QBS-inval"]);
    let qbs = suites[1].normalized_throughput(&suites[0]);
    let qbsi = suites[2].normalized_throughput(&suites[0]);
    for (i, mix) in mixes.iter().enumerate() {
        t.add_row(vec![
            mix.name.clone(),
            format!("{:.3}", qbs[i]),
            format!("{:.3}", qbsi[i]),
        ]);
    }
    t.add_row(vec![
        "GEOMEAN".to_string(),
        stats::fmt_ratio(stats::geomean(qbs.iter().copied())),
        stats::fmt_ratio(stats::geomean(qbsi.iter().copied())),
    ]);
    println!("\nmodified QBS vs plain QBS (throughput vs inclusive)\n{t}");
    println!("expected shape: the two columns match closely — QBS's benefit is\navoiding memory misses, not avoiding the LLC hit penalty");
}
