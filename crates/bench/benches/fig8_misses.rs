//! Figure 8: cache performance (LLC miss reduction) relative to inclusion.
//!
//! Reproduction target: QBS reduces LLC misses about as much as a
//! non-inclusive hierarchy (the paper: 9.6% vs 9.3%), ECI somewhat less,
//! TLH-L2 less than TLH-L1, and only the exclusive hierarchy — the one
//! configuration with genuinely more capacity — pulls far ahead (18.2%).

use tla_bench::{print_s_curve, BenchEnv};
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 8 — LLC miss reduction relative to inclusion");

    let all = env.all_mixes();
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    tla_bench::bench_progress!(
        "fig8",
        "running {} specs x {} mixes",
        specs.len(),
        all.len()
    );
    let suites = env.run_suite(&all, &specs, None);

    let mut t = Table::new(&["policy", "avg LLC miss reduction", "paper"]);
    let paper = ["8.2%", "4.8%", "6.5%", "9.6%", "9.3%", "18.2%"];
    let mut qbs_red = Vec::new();
    let mut ni_red = Vec::new();
    for (i, suite) in suites[1..].iter().enumerate() {
        let red = suite.miss_reduction_pct(&suites[0]);
        if suite.spec.name == "QBS" {
            qbs_red = red.clone();
        }
        if suite.spec.name == "Non-Inclusive" {
            ni_red = red.clone();
        }
        t.add_row(vec![
            suite.spec.name.clone(),
            format!("{:+.1}%", stats::mean(red.iter().copied()).unwrap_or(0.0)),
            paper[i].to_string(),
        ]);
    }
    println!(
        "\nFigure 8 — average LLC miss reduction over {} mixes\n{t}",
        all.len()
    );

    print_s_curve(
        "Figure 8 s-curve: QBS LLC miss reduction % (105 mixes)",
        &all,
        &ni_red,
        &[("QBS", &qbs_red), ("Non-Inclusive", &ni_red)],
    );
    let max_qbs = qbs_red.iter().copied().fold(f64::MIN, f64::max);
    println!("\nmax QBS miss reduction: {max_qbs:+.1}% (paper: up to ~80%)");
}
