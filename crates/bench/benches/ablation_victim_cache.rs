//! §VI comparison: an inclusive LLC backed by a 32-entry victim cache
//! (the Fletcher et al. remedy) versus ECI and QBS.
//!
//! Reproduction target: the tiny victim cache barely helps (paper: +0.8%)
//! while ECI (+4.5%) and QBS (+6.5%) — which need no extra structures —
//! far outperform it. ECI is effectively an *in-LLC* victim cache.

use tla_bench::BenchEnv;
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Ablation — 32-entry victim cache vs ECI/QBS (§VI)");

    let all = env.all_mixes();
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::victim_cache_32(),
        PolicySpec::eci(),
        PolicySpec::qbs(),
    ];
    tla_bench::bench_progress!("ablation_vc", "{} specs x {} mixes", specs.len(), all.len());
    let suites = env.run_suite(&all, &specs, None);

    let mut t = Table::new(&["configuration", "vs inclusive (geomean)", "paper"]);
    let paper = ["+0.8%", "+4.5%", "+6.5%"];
    for (i, suite) in suites[1..].iter().enumerate() {
        let g = stats::geomean(suite.normalized_throughput(&suites[0]));
        t.add_row(vec![
            suite.spec.name.clone(),
            stats::fmt_gain_pct(g),
            paper[i].to_string(),
        ]);
    }
    println!(
        "\n§VI — victim cache vs TLA policies over {} mixes\n{t}",
        all.len()
    );

    let rescues: u64 = suites[1]
        .runs
        .iter()
        .map(|r| r.global.victim_cache_rescues)
        .sum();
    println!("victim-cache rescues across the sweep: {rescues}");
    println!("expected shape: VC-32 << ECI < QBS");
}
