//! Figure 5: performance of Temporal Locality Hints.
//!
//! Per-mix bars for TLH-IL1 / TLH-DL1 / TLH-L1 / TLH-L2 / TLH-L1-L2
//! against non-inclusion, the 105-mix s-curve, the hint-fraction
//! sensitivity study (1/2/10/20 % of L1 hits), and the TLH traffic blow-up
//! the paper uses to motivate ECI/QBS.
//!
//! Reproduction target: TLH benefits concentrate in CCF+LLCT/LLCF mixes;
//! homogeneous CCF or LLCT/LLCF-only mixes gain nothing; TLH-L1 bridges
//! most of the inclusive->non-inclusive gap, TLH-L2 roughly half.

use tla_bench::{bar_table, print_s_curve, BenchEnv};
use tla_sim::{MixRun, PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 5 — Temporal Locality Hints");

    let showcase = env.showcase_mixes();
    let all = env.all_mixes();
    let mut mixes = showcase.clone();
    mixes.extend(all.iter().cloned());

    // Table II header, as the paper prints alongside this figure.
    let mut t2 = Table::new(&["mix", "apps", "category"]);
    for m in &showcase {
        t2.add_row(vec![
            m.name.clone(),
            m.apps
                .iter()
                .map(|a| a.short_name())
                .collect::<Vec<_>>()
                .join(", "),
            m.category_label(),
        ]);
    }
    println!("\nTable II — workload mixes\n{t2}");

    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_il1(),
        PolicySpec::tlh_dl1(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l2(),
        PolicySpec::tlh_l1_l2(),
        PolicySpec::non_inclusive(),
    ];
    tla_bench::bench_progress!(
        "fig5",
        "running {} specs x {} mixes",
        specs.len(),
        mixes.len()
    );
    let suites = env.run_suite(&mixes, &specs, None);

    let n = showcase.len();
    let series: Vec<(&str, Vec<f64>, Vec<f64>)> = suites[1..]
        .iter()
        .map(|s| {
            let (sc, al) = tla_bench::split_series(s, &suites[0], n);
            (s.spec.name.as_str(), sc, al)
        })
        .collect();
    println!(
        "Figure 5 — throughput normalized to the inclusive baseline\n{}",
        bar_table(&showcase, &series)
    );

    // S-curve over the 105 mixes, sorted by non-inclusive performance.
    let ni = &series.last().expect("non-inclusive is last").2;
    let tlh_l1 = &series[2].2;
    let tlh_l2 = &series[3].2;
    print_s_curve(
        "Figure 5 s-curve (105 mixes)",
        &all,
        ni,
        &[
            ("TLH-L1", tlh_l1),
            ("TLH-L2", tlh_l2),
            ("Non-Inclusive", ni),
        ],
    );

    // Gap bridged: (policy - 1) / (non-inclusive - 1) on the geomean.
    let gm = |v: &[f64]| stats::geomean(v.iter().copied()).unwrap_or(1.0);
    let gap = gm(ni) - 1.0;
    if gap > 0.0 {
        println!("\ngap to non-inclusive bridged (geomean over 105):");
        for (label, _, al) in &series[..series.len() - 1] {
            println!("  {label:10} {:5.1}%", (gm(al) - 1.0) / gap * 100.0);
        }
    }

    // Hint-fraction sensitivity (over the showcase mixes).
    println!("\nTLH-L1 hint-fraction sensitivity (geomean over 12 mixes):");
    let base12 = &suites[0].runs[..n];
    for p in [0.01, 0.02, 0.10, 0.20, 1.0] {
        let spec = PolicySpec::tlh_l1_filtered(p);
        let vals: Vec<f64> = showcase
            .iter()
            .zip(base12)
            .map(|(mix, b)| {
                let r = MixRun::new(&env.cfg, &mix.apps).spec(&spec).run();
                r.throughput() / b.throughput()
            })
            .collect();
        println!(
            "  {:>4.0}% of hits  ->  {}",
            p * 100.0,
            stats::fmt_ratio(stats::geomean(vals))
        );
    }

    // TLH traffic: extra LLC requests per LLC demand access.
    let hints: u64 = suites[3].runs[n..].iter().map(|r| r.global.tlh_hints).sum();
    let hints_l2: u64 = suites[4].runs[n..].iter().map(|r| r.global.tlh_hints).sum();
    let llc_acc: u64 = suites[0].runs[n..]
        .iter()
        .flat_map(|r| r.threads.iter())
        .map(|t| t.stats.llc_accesses)
        .sum();
    println!(
        "\nLLC request amplification: TLH-L1 {:.0}x, TLH-L2 {:.1}x (paper: ~600x and ~8x)",
        1.0 + hints as f64 / llc_acc as f64,
        1.0 + hints_l2 as f64 / llc_acc as f64,
    );
}
