//! Figure 6: performance of Early Core Invalidation.
//!
//! Reproduction target: ECI improves the same CCF+LLCT/LLCF mixes TLH
//! does, bridges roughly half of the inclusive->non-inclusive gap, has a
//! bounded worst case, and its extra back-invalidate traffic is small
//! because it scales with LLC misses.

use tla_bench::{bar_table, print_s_curve, BenchEnv};
use tla_sim::PolicySpec;
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 6 — Early Core Invalidation");

    let showcase = env.showcase_mixes();
    let all = env.all_mixes();
    let mut mixes = showcase.clone();
    mixes.extend(all.iter().cloned());

    let specs = [
        PolicySpec::baseline(),
        PolicySpec::eci(),
        PolicySpec::non_inclusive(),
    ];
    tla_bench::bench_progress!(
        "fig6",
        "running {} specs x {} mixes",
        specs.len(),
        mixes.len()
    );
    let suites = env.run_suite(&mixes, &specs, None);

    let n = showcase.len();
    let (eci_sc, eci_all) = tla_bench::split_series(&suites[1], &suites[0], n);
    let (ni_sc, ni_all) = tla_bench::split_series(&suites[2], &suites[0], n);
    println!(
        "\nFigure 6 — throughput normalized to the inclusive baseline\n{}",
        bar_table(
            &showcase,
            &[
                ("ECI", eci_sc, eci_all.clone()),
                ("Non-Inclusive", ni_sc, ni_all.clone()),
            ]
        )
    );

    print_s_curve(
        "Figure 6 s-curve (105 mixes)",
        &all,
        &ni_all,
        &[("ECI", &eci_all), ("Non-Inclusive", &ni_all)],
    );

    let gm = |v: &[f64]| stats::geomean(v.iter().copied()).unwrap_or(1.0);
    let gap = gm(&ni_all) - 1.0;
    let worst = eci_all.iter().copied().fold(f64::MAX, f64::min);
    let best = eci_all.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "\nECI bridges {:.0}% of the gap (paper: ~55%); best {:+.1}%, worst {:+.1}% (paper: up to +30%, worst -1.6%)",
        if gap > 0.0 { (gm(&eci_all) - 1.0) / gap * 100.0 } else { 0.0 },
        (best - 1.0) * 100.0,
        (worst - 1.0) * 100.0
    );

    // Back-invalidate traffic blow-up (§V-B: less than 50% extra on
    // average, relative to a small base).
    let base_inv: u64 = suites[0].runs[n..]
        .iter()
        .map(|r| r.global.back_invalidates)
        .sum();
    let eci_inv: u64 = suites[1].runs[n..]
        .iter()
        .map(|r| r.global.back_invalidates + r.global.eci_invalidates)
        .sum();
    let rescues: u64 = suites[1].runs[n..]
        .iter()
        .map(|r| r.global.eci_rescues)
        .sum();
    println!(
        "back-invalidate traffic: baseline {base_inv}, ECI {eci_inv} ({:+.0}%), hot-line rescues {rescues}",
        (eci_inv as f64 / base_inv.max(1) as f64 - 1.0) * 100.0
    );
}
