//! Figure 9: summary of all TLA policies.
//!
//! (a) Every policy normalized to the *inclusive* baseline: QBS should
//!     land at non-inclusive performance.
//! (b) The same TLA policies applied on a *non-inclusive* base, normalized
//!     to plain non-inclusion: gains should collapse to ~0-1%, proving the
//!     benefit really is inclusion-victim avoidance; exclusive keeps a
//!     small capacity edge.

use tla_bench::BenchEnv;
use tla_core::TlaPolicy;
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 9 — summary of TLA policies");

    let all = env.all_mixes();

    // (a) on the inclusive base.
    let mut specs_a = vec![PolicySpec::baseline()];
    specs_a.extend(PolicySpec::figure9_set());
    tla_bench::bench_progress!("fig9a", "{} specs x {} mixes", specs_a.len(), all.len());
    let suites_a = env.run_suite(&all, &specs_a, None);

    let gm = |v: Vec<f64>| stats::geomean(v).unwrap_or(1.0);
    let mut t = Table::new(&["policy", "vs inclusive (geomean)"]);
    for suite in &suites_a[1..] {
        t.add_row(vec![
            suite.spec.name.clone(),
            format!("{:.3}", gm(suite.normalized_throughput(&suites_a[0]))),
        ]);
    }
    println!("\nFigure 9a — performance relative to the inclusive baseline\n{t}");

    // (b) on the non-inclusive base.
    let specs_b = vec![
        PolicySpec::non_inclusive(),
        PolicySpec::on_non_inclusive(TlaPolicy::tlh_l1()),
        PolicySpec::on_non_inclusive(TlaPolicy::tlh_l2()),
        PolicySpec::on_non_inclusive(TlaPolicy::eci()),
        PolicySpec::on_non_inclusive(TlaPolicy::qbs()),
        PolicySpec::exclusive(),
    ];
    tla_bench::bench_progress!("fig9b", "{} specs x {} mixes", specs_b.len(), all.len());
    let suites_b = env.run_suite(&all, &specs_b, None);

    let mut t = Table::new(&["policy", "vs non-inclusive (geomean)"]);
    for suite in &suites_b[1..] {
        t.add_row(vec![
            suite.spec.name.clone(),
            format!("{:.3}", gm(suite.normalized_throughput(&suites_b[0]))),
        ]);
    }
    println!("\nFigure 9b — performance relative to the non-inclusive baseline\n{t}");
    println!(
        "expected shape: TLA policies gain ~0-1% on a non-inclusive base \
         (paper: 0.4-1.2%); exclusive keeps a small capacity edge (paper: +2.5%)"
    );
}
