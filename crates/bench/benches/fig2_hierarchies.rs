//! Figure 2: non-inclusive and exclusive LLC performance relative to an
//! inclusive LLC across core-cache:LLC size ratios.
//!
//! Reproduction target: at large LLCs (1:8 L2:LLC and beyond) all three
//! hierarchies perform alike; as the LLC shrinks toward 1:2 the
//! non-inclusive and exclusive advantage grows, with exclusive on top.

use tla_bench::{fmt_norm, BenchEnv};
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

/// Full-scale LLC capacities swept (the paper's 1, 2, 4 and 8 MB points;
/// 2-core L2:LLC ratios 1:2, 1:4, 1:8, 1:16).
const LLC_SIZES_MB: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 2 — hierarchy comparison across cache ratios");

    let mixes = if env.full {
        env.all_mixes()
    } else {
        env.showcase_mixes()
    };
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];

    let mut t = Table::new(&[
        "L2:LLC ratio",
        "LLC (full-scale)",
        "Non-Inclusive",
        "Exclusive",
        "max Non-Incl",
    ]);
    for (i, mb) in LLC_SIZES_MB.iter().enumerate() {
        tla_bench::bench_progress!("fig2", "LLC {mb} MB ({}/{})", i + 1, LLC_SIZES_MB.len());
        let suites = env.run_suite(&mixes, &specs, Some(mb * 1024 * 1024));
        let ni = suites[1].normalized_throughput(&suites[0]);
        let ex = suites[2].normalized_throughput(&suites[0]);
        let ratio = 512.0 / (*mb as f64 * 1024.0); // 2 cores x 256 KB L2
        t.add_row(vec![
            format!("1:{:.0}", 1.0 / ratio),
            format!("{mb} MB"),
            fmt_norm(stats::geomean(ni.iter().copied()).unwrap_or(0.0)),
            fmt_norm(stats::geomean(ex.iter().copied()).unwrap_or(0.0)),
            fmt_norm(ni.iter().copied().fold(f64::MIN, f64::max)),
        ]);
    }
    println!(
        "\nFigure 2 — geomean throughput vs inclusive baseline ({} mixes)\n{t}",
        mixes.len()
    );
    println!(
        "expected shape: gains shrink monotonically as the LLC grows; exclusive >= non-inclusive"
    );
}
