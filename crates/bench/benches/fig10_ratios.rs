//! Figure 10: scalability of the TLA mechanisms to different core-cache:
//! LLC ratios (1 MB, 2 MB, 4 MB and 8 MB LLCs; L2:LLC ratios 1:2 to 1:16).
//!
//! Reproduction target: the smaller the LLC, the bigger the inclusion
//! problem and the bigger every remedy's gain; QBS tracks non-inclusive
//! performance at every ratio; TLH-L1 falls behind at 1:2 (hot lines
//! serviced by the L2 suffer inclusion victims that L1 hints cannot see)
//! while TLH-L1-L2 recovers it.

use tla_bench::{fmt_norm, BenchEnv};
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

const LLC_SIZES_MB: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 10 — scalability across cache ratios");

    let mixes = if env.full {
        env.all_mixes()
    } else {
        env.showcase_mixes()
    };
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::tlh_l1(),
        PolicySpec::tlh_l1_l2(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];

    let mut t = Table::new(&[
        "L2:LLC",
        "TLH-L1",
        "TLH-L1-L2",
        "QBS",
        "Non-Inclusive",
        "Exclusive",
    ]);
    for (i, mb) in LLC_SIZES_MB.iter().enumerate() {
        tla_bench::bench_progress!("fig10", "LLC {mb} MB ({}/{})", i + 1, LLC_SIZES_MB.len());
        let suites = env.run_suite(&mixes, &specs, Some(mb * 1024 * 1024));
        let mut row = vec![format!("1:{}", 2 * mb)];
        for suite in &suites[1..] {
            let g = stats::geomean(suite.normalized_throughput(&suites[0])).unwrap_or(0.0);
            row.push(fmt_norm(g));
        }
        t.add_row(row);
    }
    println!(
        "\nFigure 10 — geomean throughput vs inclusive, per LLC size ({} mixes)\n{t}",
        mixes.len()
    );
    println!("expected shape: every column's gain shrinks as the ratio grows toward 1:16;\nQBS ~ non-inclusive at every ratio; TLH-L1-L2 >= TLH-L1 with the gap widest at 1:2");
}
