//! Figure 11: scalability of QBS to larger CMPs (2, 4 and 8 cores sharing
//! the LLC).
//!
//! The paper creates 100 random 4-core and 8-core workloads; more cores
//! sharing one LLC means more contention, more inclusion victims and
//! bigger QBS gains.
//!
//! Reproduction target: QBS's geomean gain grows with core count and
//! stays at non-inclusive performance.

use tla_bench::BenchEnv;
use tla_sim::{PolicySpec, Table};
use tla_types::stats;
use tla_workloads::random_mixes;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figure 11 — scalability with core count");

    // The 2-core population is the 105-pair sweep; 4- and 8-core
    // populations are random draws as in §V-G.
    let count = if env.full { 100 } else { 30 };
    let populations = vec![
        ("2 cores", env.all_mixes()),
        ("4 cores", random_mixes(4, count, env.cfg.seed_value())),
        ("8 cores", random_mixes(8, count, env.cfg.seed_value())),
    ];
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
    ];

    let mut t = Table::new(&["CMP", "mixes", "QBS", "Non-Inclusive", "max QBS"]);
    for (label, mixes) in &populations {
        tla_bench::bench_progress!("fig11", "{label}: {} mixes", mixes.len());
        // §V-G keeps the 1:4 hierarchy as cores scale: the LLC grows with
        // the core count (2 MB per 2 cores at full scale).
        let cores = mixes[0].cores();
        let llc = cores / 2 * 2 * 1024 * 1024;
        let suites = env.run_suite(mixes, &specs, Some(llc));
        let qbs = suites[1].normalized_throughput(&suites[0]);
        let ni = suites[2].normalized_throughput(&suites[0]);
        t.add_row(vec![
            label.to_string(),
            mixes.len().to_string(),
            format!("{:.3}", stats::geomean(qbs.iter().copied()).unwrap_or(0.0)),
            format!("{:.3}", stats::geomean(ni.iter().copied()).unwrap_or(0.0)),
            format!("{:.3}", qbs.iter().copied().fold(f64::MIN, f64::max)),
        ]);
    }
    println!("\nFigure 11 — QBS vs core count (throughput vs inclusive)\n{t}");
    println!("expected shape: QBS's gain grows with core count (more LLC contention)\nand tracks non-inclusive at every width");
}
