//! The other side of the trade-off: coherence traffic.
//!
//! §I/§II motivate inclusion by its natural snoop-filter property — an LLC
//! miss guarantees the line is in no core cache, so no snoops are needed.
//! Non-inclusive and exclusive hierarchies give that up: every LLC miss
//! must probe the other cores (or pay for a dedicated snoop-filter
//! structure, the hardware cost the paper's §VI discusses).
//!
//! Reproduction target: QBS achieves non-inclusive-class throughput with
//! *zero* snoop broadcasts, while non-inclusive/exclusive pay one probe
//! per other core per LLC miss.

use tla_bench::BenchEnv;
use tla_sim::{PolicySpec, Table};
use tla_types::stats;

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Ablation — snoop-filter benefit of inclusion");

    let mixes = env.showcase_mixes();
    let specs = [
        PolicySpec::baseline(),
        PolicySpec::qbs(),
        PolicySpec::non_inclusive(),
        PolicySpec::exclusive(),
    ];
    let suites = env.run_suite(&mixes, &specs, None);

    let mut t = Table::new(&[
        "configuration",
        "throughput vs inclusive",
        "snoop probes / 1k instr",
    ]);
    for suite in &suites {
        let g = stats::geomean(suite.normalized_throughput(&suites[0]));
        let probes: u64 = suite.runs.iter().map(|r| r.global.snoop_probes).sum();
        let instr: u64 = suite
            .runs
            .iter()
            .flat_map(|r| r.threads.iter())
            .map(|tr| tr.instructions)
            .sum();
        t.add_row(vec![
            suite.spec.name.clone(),
            stats::fmt_ratio(g),
            format!("{:.2}", probes as f64 * 1000.0 / instr as f64),
        ]);
    }
    println!("\ncoherence cost vs performance (12 showcase mixes)\n{t}");
    println!("expected shape: QBS reaches non-inclusive-class throughput at zero\nsnoop cost; non-inclusive/exclusive broadcast on every LLC miss");
    println!("(probe counts cover whole runs including post-freeze tails, so they\nare indicative rates, not exact per-quota counts)");
}
