//! Shared harness utilities for the figure/table benches.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation. Because the substrate is a simulator rather than the
//! authors' testbed, the *shape* of each result (who wins, by roughly what
//! factor, where crossovers fall) is the reproduction target, not the
//! absolute numbers.
//!
//! Environment knobs (all optional):
//!
//! * `TLA_FULL=1` — full fidelity: scale-1 caches, every sweep over all
//!   105 mixes, longer windows. Hours of runtime.
//! * `TLA_MEASURE=<n>` — measured instructions per thread
//!   (default 300 000).
//! * `TLA_WARMUP=<n>` — warm-up instructions per thread
//!   (default 800 000).
//! * `TLA_SCALE=<1|2|4|8>` — cache scale divisor (default 8).
//! * `TLA_QUIET=1` — silence [`bench_progress!`] lines on stderr.
//! * `TLA_JOBS=<n>` — worker threads for the suite fan-out (default: all
//!   cores). Results are bit-identical for any value; only wall-clock
//!   changes. Resolved inside [`SimConfig::effective_jobs`], so every
//!   `run_mix_suite`/`mpki_table` call a bench makes obeys it.
//! * `TLA_WARM_CACHE=<dir>` — directory for persistent warm images shared
//!   by [`BenchEnv::run_suite`] callers (default
//!   `target/tla-warm-cache`; `0`/`off` disables caching). A figure
//!   re-run over the same configuration skips every warm-up it has
//!   already done.

use tla_sim::{
    run_mix_suite_warm_start_cached, PolicySpec, SimConfig, SuiteResult, Table, WarmCache,
};
use tla_types::stats;
use tla_workloads::{all_two_core_mixes, table2_mixes, Mix};

/// Harness configuration resolved from the environment.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// The simulation configuration every run starts from.
    pub cfg: SimConfig,
    /// Whether `TLA_FULL` was requested.
    pub full: bool,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchEnv {
    /// Reads the environment and builds the base configuration.
    pub fn from_env() -> Self {
        let full = std::env::var("TLA_FULL").is_ok_and(|v| v == "1");
        let scale = env_u64("TLA_SCALE", if full { 1 } else { 8 });
        let measure = env_u64("TLA_MEASURE", if full { 2_000_000 } else { 300_000 });
        let warmup = env_u64("TLA_WARMUP", if full { 4_000_000 } else { 800_000 });
        let cfg = SimConfig::paper()
            .with_scale(scale)
            .instructions(measure)
            .warmup(warmup);
        BenchEnv { cfg, full }
    }

    /// The warm-image cache the figure benches share, resolved from
    /// `TLA_WARM_CACHE` (default `target/tla-warm-cache` in the
    /// workspace; `0`, `off` or an empty value disables caching). An
    /// unopenable directory degrades to no caching rather than failing
    /// the bench.
    pub fn warm_cache(&self) -> Option<WarmCache> {
        let dir = match std::env::var("TLA_WARM_CACHE") {
            Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => return None,
            Ok(v) => std::path::PathBuf::from(v),
            Err(_) => {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tla-warm-cache")
            }
        };
        match WarmCache::open(&dir) {
            Ok(cache) => Some(cache),
            Err(e) => {
                bench_progress!(
                    "tla-bench",
                    "warm cache {} unavailable ({e}) — warming uncached",
                    dir.display()
                );
                None
            }
        }
    }

    /// The suite runner every figure bench goes through: warm each mix
    /// once under the inclusive baseline (pulling the image from the
    /// [`BenchEnv::warm_cache`] directory when it is already there), then
    /// fan the `(spec, mix)` measurement grid out. Re-running a figure
    /// over an unchanged configuration skips all warm-up work.
    pub fn run_suite(
        &self,
        mixes: &[Mix],
        specs: &[PolicySpec],
        llc_capacity_full_scale: Option<usize>,
    ) -> Vec<SuiteResult> {
        let cache = self.warm_cache();
        run_mix_suite_warm_start_cached(
            &self.cfg,
            mixes,
            specs,
            llc_capacity_full_scale,
            cache.as_ref(),
        )
        .expect("resuming a just-written warm checkpoint cannot fail")
    }

    /// The 12 showcase mixes of Table II.
    pub fn showcase_mixes(&self) -> Vec<Mix> {
        table2_mixes()
    }

    /// The mix population for s-curves and `All(105)` averages: all 105
    /// pairs (always — the s-curve is the point of those figures).
    pub fn all_mixes(&self) -> Vec<Mix> {
        all_two_core_mixes()
    }

    /// Prints the standard bench banner.
    pub fn banner(&self, what: &str) {
        bench_progress!("tla-bench", "{what}");
        bench_progress!(
            "tla-bench",
            "scale=1/{}  measure={}  warmup={}  full={}  jobs={}",
            self.cfg.scale(),
            self.cfg.instruction_quota(),
            self.cfg.warmup_quota(),
            self.full,
            self.cfg.effective_jobs()
        );
    }
}

/// Whether `TLA_QUIET` asks the benches to keep stderr clean (set and not
/// `0`).
pub fn quiet() -> bool {
    std::env::var("TLA_QUIET").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Prints one `[tag] message` progress line to stderr unless `TLA_QUIET`
/// is set. Drop-in replacement for the benches' ad-hoc `eprintln!` calls
/// so scripted runs can silence them uniformly.
///
/// ```
/// tla_bench::bench_progress!("fig5", "running {} mixes", 105);
/// ```
#[macro_export]
macro_rules! bench_progress {
    ($tag:expr, $($arg:tt)*) => {
        if !$crate::quiet() {
            eprintln!("[{}] {}", $tag, format_args!($($arg)*));
        }
    };
}

impl Default for BenchEnv {
    fn default() -> Self {
        Self::from_env()
    }
}

/// One timed micro-benchmark result from [`time_it`].
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations actually executed during the measured phase.
    pub iters: u64,
    /// Wall-clock nanoseconds spent in the measured phase.
    pub nanos: u128,
    /// Iterations per measured batch.
    pub batch: u64,
    /// Nanoseconds of the fastest measured batch. The minimum over batches
    /// is the standard noise-robust cost estimator: preemption and
    /// frequency dips only ever add time, so the fastest batch is the one
    /// closest to the true cost.
    pub best_batch_nanos: u128,
}

impl Measurement {
    /// Mean cost of one iteration in nanoseconds.
    pub fn nanos_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.nanos as f64 / self.iters as f64
        }
    }

    /// Cost of one iteration in the fastest batch, in nanoseconds — the
    /// noise-robust counterpart of [`Measurement::nanos_per_iter`].
    pub fn best_nanos_per_iter(&self) -> f64 {
        if self.batch == 0 {
            0.0
        } else {
            self.best_batch_nanos as f64 / self.batch as f64
        }
    }

    /// Iterations per second (millions).
    pub fn m_iters_per_sec(&self) -> f64 {
        let ns = self.nanos_per_iter();
        if ns == 0.0 {
            0.0
        } else {
            1e3 / ns
        }
    }

    /// One `name  ns/iter  Miter/s` report line.
    pub fn line(&self) -> String {
        format!(
            "{:<40} {:>12.1} ns/iter {:>10.2} Miter/s",
            self.name,
            self.nanos_per_iter(),
            self.m_iters_per_sec()
        )
    }
}

/// Times `op` for roughly `target_millis` of wall clock and returns a
/// [`Measurement`] — the offline stand-in for criterion.
///
/// The batch size is first calibrated (doubling until one batch costs a
/// measurable slice of the target) so `Instant` overhead stays far below
/// the work being timed; the calibration doubles as warm-up.
pub fn time_it(name: &str, target_millis: u64, mut op: impl FnMut()) -> Measurement {
    let target = std::time::Duration::from_millis(target_millis.max(1));
    let mut batch: u64 = 1;
    loop {
        let t0 = std::time::Instant::now();
        for _ in 0..batch {
            op();
        }
        if t0.elapsed() * 20 >= target || batch >= 1 << 30 {
            break;
        }
        batch *= 2;
    }
    let mut iters = 0u64;
    let mut nanos = 0u128;
    let mut best_batch_nanos = u128::MAX;
    let start = std::time::Instant::now();
    while start.elapsed() < target {
        let t0 = std::time::Instant::now();
        for _ in 0..batch {
            op();
        }
        let batch_nanos = t0.elapsed().as_nanos();
        nanos += batch_nanos;
        iters += batch;
        best_batch_nanos = best_batch_nanos.min(batch_nanos);
    }
    if best_batch_nanos == u128::MAX {
        best_batch_nanos = 0;
    }
    Measurement {
        name: name.to_string(),
        iters,
        nanos,
        batch,
        best_batch_nanos,
    }
}

/// Formats a normalized-throughput value the way the paper's bar charts
/// read (1.00 = baseline).
pub fn fmt_norm(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Builds the per-mix bar table the figures print: one row per showcase
/// mix plus the `All(n)` geomean row over `all` results.
///
/// `series` pairs a label with (per-showcase-mix values, all-mix values).
pub fn bar_table(showcase: &[Mix], series: &[(&str, Vec<f64>, Vec<f64>)]) -> Table {
    let mut headers = vec!["mix"];
    for (label, _, _) in series {
        headers.push(label);
    }
    let mut t = Table::new(&headers);
    for (i, mix) in showcase.iter().enumerate() {
        let mut row = vec![format!("{} ({})", mix.name, mix.category_label())];
        for (_, vals, _) in series {
            row.push(fmt_norm(vals[i]));
        }
        t.add_row(row);
    }
    let mut row = vec![format!("All({})", series[0].2.len())];
    for (_, _, all) in series {
        row.push(fmt_norm(stats::geomean(all.iter().copied()).unwrap_or(0.0)));
    }
    t.add_row(row);
    t
}

/// Prints an s-curve (sorted per-mix series) as deciles, the textual
/// equivalent of the paper's s-curve plots. Series must share the mix
/// population; each is sorted by the *reference* series' values (the
/// paper sorts by non-inclusive performance).
pub fn print_s_curve(title: &str, mixes: &[Mix], reference: &[f64], series: &[(&str, &[f64])]) {
    println!("\n{title} (sorted by reference — deciles)");
    let mut idx: Vec<usize> = (0..mixes.len()).collect();
    idx.sort_by(|&a, &b| reference[a].partial_cmp(&reference[b]).unwrap());
    let mut headers = vec!["percentile"];
    for (label, _) in series {
        headers.push(label);
    }
    let mut t = Table::new(&headers);
    for pct in [0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let k = ((pct as f64 / 100.0) * (mixes.len() - 1) as f64).round() as usize;
        let mut row = vec![format!("p{pct:<3} ({})", mixes[idx[k]].name)];
        for (_, vals) in series {
            row.push(fmt_norm(vals[idx[k]]));
        }
        t.add_row(row);
    }
    print!("{t}");
}

/// Extracts the normalized-throughput series of `suite` against
/// `baseline`, split into (showcase values, all values) given that the
/// suite ran over showcase ++ all concatenated. Convenience for benches
/// that run one suite over both populations at once.
pub fn split_series(
    suite: &SuiteResult,
    baseline: &SuiteResult,
    n_showcase: usize,
) -> (Vec<f64>, Vec<f64>) {
    let all = suite.normalized_throughput(baseline);
    (all[..n_showcase].to_vec(), all[n_showcase..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set env vars (tests share the process env); just check
        // the default path produces a valid config.
        let env = BenchEnv::from_env();
        assert!(env.cfg.instruction_quota() > 0);
        assert_eq!(env.showcase_mixes().len(), 12);
        assert_eq!(env.all_mixes().len(), 105);
    }

    #[test]
    fn bar_table_shapes() {
        let mixes = table2_mixes();
        let series = vec![("QBS", vec![1.0; 12], vec![1.05; 105])];
        let t = bar_table(&mixes, &series);
        assert_eq!(t.len(), 13); // 12 mixes + All row
        let s = t.to_string();
        assert!(s.contains("All(105)"));
        assert!(s.contains("1.050"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_norm(1.2345), "1.234");
        assert_eq!(fmt_pct(3.21), "+3.2%");
    }

    #[test]
    fn time_it_counts_iterations() {
        let mut n = 0u64;
        let m = time_it("noop", 5, || n += 1);
        // Calibration/warm-up runs `op` too, so n counts at least iters.
        assert!(n >= m.iters);
        assert!(m.iters > 0);
        assert!(m.nanos_per_iter() >= 0.0);
        assert!(m.line().contains("noop"));
    }

    /// Serializes the tests that mutate `TLA_WARM_CACHE` (the process env
    /// is shared across test threads).
    static WARM_CACHE_ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn warm_cache_env_controls_caching() {
        let _guard = WARM_CACHE_ENV.lock().unwrap();
        // Tests share the process env; restore whatever was there.
        let saved = std::env::var("TLA_WARM_CACHE").ok();
        let env = BenchEnv::from_env();
        for off in ["0", "off", "OFF", ""] {
            std::env::set_var("TLA_WARM_CACHE", off);
            assert!(env.warm_cache().is_none(), "'{off}' must disable caching");
        }
        let dir = std::env::temp_dir().join(format!("tla-bench-warmcache-{}", std::process::id()));
        std::env::set_var("TLA_WARM_CACHE", &dir);
        let cache = env.warm_cache().expect("explicit directory opens");
        assert_eq!(cache.entries().unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
        match saved {
            Some(v) => std::env::set_var("TLA_WARM_CACHE", v),
            None => std::env::remove_var("TLA_WARM_CACHE"),
        }
    }

    #[test]
    fn run_suite_matches_uncached_warm_start() {
        let _guard = WARM_CACHE_ENV.lock().unwrap();
        let saved = std::env::var("TLA_WARM_CACHE").ok();
        let dir = std::env::temp_dir().join(format!("tla-bench-suite-{}", std::process::id()));
        std::env::set_var("TLA_WARM_CACHE", &dir);
        let mut env = BenchEnv::from_env();
        env.cfg = env.cfg.with_scale(8).warmup(10_000).instructions(5_000);
        let mixes = &table2_mixes()[..1];
        let specs = [PolicySpec::baseline(), PolicySpec::qbs()];
        let first = env.run_suite(mixes, &specs, None);
        // Second invocation resumes the stored warm image, bit-identically.
        let second = env.run_suite(mixes, &specs, None);
        assert_eq!(first.len(), 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.spec.name, b.spec.name);
            for (ra, rb) in a.runs.iter().zip(&b.runs) {
                assert_eq!(ra.global, rb.global);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        match saved {
            Some(v) => std::env::set_var("TLA_WARM_CACHE", v),
            None => std::env::remove_var("TLA_WARM_CACHE"),
        }
    }

    #[test]
    fn quiet_reads_env() {
        // Tests share the process env; restore whatever was there.
        let saved = std::env::var("TLA_QUIET").ok();
        std::env::remove_var("TLA_QUIET");
        assert!(!quiet());
        std::env::set_var("TLA_QUIET", "0");
        assert!(!quiet());
        std::env::set_var("TLA_QUIET", "1");
        assert!(quiet());
        match saved {
            Some(v) => std::env::set_var("TLA_QUIET", v),
            None => std::env::remove_var("TLA_QUIET"),
        }
    }
}
